//! End-to-end serving-layer tests over real loopback sockets: a client
//! sees its own writes, named snapshots are immutable under concurrent
//! writers, diffs match a sequential oracle, and cross-shard batches —
//! including ones with failing `Cas` guards — are observed atomically
//! over the wire.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use path_copying::prelude::{BatchOp, BatchResult, DiffEntry};
use pathcopy_server::{backend, Client, ServerConfig, ServerHandle};

fn sharded_server() -> ServerHandle {
    pathcopy_server::spawn(
        backend::by_name("sharded_map_8").expect("registered backend"),
        ServerConfig::with_workers(4),
    )
    .expect("bind ephemeral loopback port")
}

#[test]
fn client_sees_its_own_writes() {
    let server = sharded_server();
    let mut c = Client::connect(server.addr()).unwrap();
    for k in 0..100 {
        assert_eq!(c.insert(k, k * 2).unwrap(), None);
    }
    for k in 0..100 {
        assert_eq!(c.get(k).unwrap(), Some(k * 2));
    }
    assert_eq!(c.insert(7, 700).unwrap(), Some(14));
    assert_eq!(c.remove(7).unwrap(), Some(700));
    assert_eq!(c.get(7).unwrap(), None);
    assert!(c.cas(8, Some(16), Some(160)).unwrap());
    assert_eq!(c.get(8).unwrap(), Some(160));
    let (entries, complete) = c.range(None, 0..10, 0).unwrap();
    assert!(complete);
    assert_eq!(entries.iter().filter(|(k, _)| *k == 7).count(), 0);
    server.shutdown();
}

#[test]
fn named_snapshot_is_immutable_under_concurrent_writers() {
    let server = sharded_server();
    let addr = server.addr();
    let mut auditor = Client::connect(addr).unwrap();
    for k in 0..512 {
        auditor.insert(k, k).unwrap();
    }
    let snap = auditor.snapshot().unwrap();
    let (baseline, complete) = auditor.range(Some(snap), .., 0).unwrap();
    assert!(complete);
    assert_eq!(baseline.len(), 512);

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let done_ref = &done;
        s.spawn(move || {
            // A rival connection mutating every key the snapshot covers.
            let mut writer = Client::connect(addr).unwrap();
            for round in 1..=4i64 {
                for k in 0..512 {
                    writer.insert(k, k + round * 1000).unwrap();
                }
            }
            for k in (0..512).step_by(2) {
                writer.remove(k).unwrap();
            }
            done_ref.store(true, Ordering::Release);
        });

        // While the writer churns, the pinned version must never move.
        let mut reads = 0u32;
        while !done.load(Ordering::Acquire) || reads < 3 {
            let (now, complete) = auditor.range(Some(snap), .., 0).unwrap();
            assert!(complete);
            assert_eq!(now, baseline, "pinned snapshot changed under writers");
            reads += 1;
        }
    });

    // After the writer finishes, a snapshot-to-now diff must match the
    // sequential oracle exactly.
    let old_state: BTreeMap<i64, i64> = baseline.iter().copied().collect();
    let new_state: BTreeMap<i64, i64> = {
        let (entries, complete) = auditor.range(None, .., 0).unwrap();
        assert!(complete);
        entries.into_iter().collect()
    };
    let mut expected = Vec::new();
    for (&k, &v) in &old_state {
        match new_state.get(&k) {
            None => expected.push(DiffEntry::Removed(k, v)),
            Some(&nv) if nv != v => expected.push(DiffEntry::Changed(k, v, nv)),
            Some(_) => {}
        }
    }
    for (&k, &v) in &new_state {
        if !old_state.contains_key(&k) {
            expected.push(DiffEntry::Added(k, v));
        }
    }
    expected.sort_by_key(|e| *e.key());
    let diff = auditor.diff(snap, None).unwrap();
    assert_eq!(diff, expected, "wire diff must match the oracle");

    assert!(auditor.release(snap).unwrap());
    server.shutdown();
}

#[test]
fn cross_shard_batches_are_all_or_nothing_over_the_wire() {
    let server = sharded_server();
    let addr = server.addr();

    // 64 account pairs: (2k, 2k+1) always sum to zero. Pairs certainly
    // span shards (128 keys over 8 shards), so the writer's batches take
    // the cross-shard freeze/install path.
    const PAIRS: i64 = 64;
    let mut setup = Client::connect(addr).unwrap();
    let init: Vec<BatchOp<i64, i64>> = (0..PAIRS * 2).map(|k| BatchOp::Insert(k, 0)).collect();
    setup.batch(&init).unwrap();

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let done_ref = &done;
        s.spawn(move || {
            let mut writer = Client::connect(addr).unwrap();
            for round in 1..=300i64 {
                let pair = (round % PAIRS) * 2;
                let r = writer
                    .batch(&[
                        BatchOp::Insert(pair, round),
                        BatchOp::Insert(pair + 1, -round),
                    ])
                    .unwrap();
                assert!(matches!(r[0], BatchResult::Inserted(_)));
            }
            done_ref.store(true, Ordering::Release);
        });

        let mut auditor = Client::connect(addr).unwrap();
        let mut audits = 0u32;
        while !done.load(Ordering::Acquire) || audits < 3 {
            // A fresh coherent snapshot scanned over the wire: every
            // pair must sum to zero — a torn batch would break this.
            let (entries, complete) = auditor.range(None, .., 0).unwrap();
            assert!(complete);
            assert_eq!(entries.len(), (PAIRS * 2) as usize);
            for pair in entries.chunks(2) {
                let [(ka, va), (kb, vb)] = pair else {
                    panic!("odd chunk")
                };
                assert_eq!(*kb, ka + 1, "pair keys adjacent");
                assert_eq!(
                    va + vb,
                    0,
                    "torn batch observed over the wire: {ka}->{va}, {kb}->{vb}"
                );
            }
            // The read-only multi-key path must agree, too.
            let probe = (audits as i64 % PAIRS) * 2;
            let r = auditor
                .batch(&[BatchOp::Get(probe), BatchOp::Get(probe + 1)])
                .unwrap();
            let (BatchResult::Got(Some(a)), BatchResult::Got(Some(b))) = (&r[0], &r[1]) else {
                panic!("both accounts must exist: {r:?}")
            };
            assert_eq!(a + b, 0, "read-only batch saw a torn pair");
            audits += 1;
        }
    });
    server.shutdown();
}

#[test]
fn failing_cas_guard_in_a_batch_is_observed_atomically() {
    let server = sharded_server();
    let addr = server.addr();
    let mut c = Client::connect(addr).unwrap();
    c.insert(1, 10).unwrap();

    // A cross-shard batch whose Cas guard fails: the Cas reports false
    // and writes nothing, while the rest of the batch still commits as
    // one atomic flip (transact semantics: a failed Cas does not abort).
    let keys: Vec<i64> = (100..132).collect();
    let mut batch = vec![BatchOp::Cas {
        key: 1,
        expected: Some(999), // wrong guard
        new: Some(11),
    }];
    batch.extend(keys.iter().map(|&k| BatchOp::Insert(k, k)));
    let r = c.batch(&batch).unwrap();
    assert_eq!(r[0], BatchResult::Cas(false));
    assert_eq!(c.get(1).unwrap(), Some(10), "failed guard wrote nothing");

    // Concurrent auditors must see the insert side all-or-nothing: after
    // the batch response, every key is visible in one coherent cut.
    let (entries, complete) = c.range(None, 100..132, 0).unwrap();
    assert!(complete);
    assert_eq!(entries.len(), keys.len(), "batch landed in full");

    // And under concurrency: guarded toggles whose guard alternates
    // between matching and failing, audited for atomicity.
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let done_ref = &done;
        s.spawn(move || {
            let mut writer = Client::connect(addr).unwrap();
            let mut guard_val = 10;
            for round in 0..200i64 {
                let wrong_guard = round % 2 == 1;
                let expected = if wrong_guard {
                    Some(-1)
                } else {
                    Some(guard_val)
                };
                let next = guard_val + 1;
                let r = writer
                    .batch(&[
                        BatchOp::Cas {
                            key: 1,
                            expected,
                            new: Some(next),
                        },
                        BatchOp::Insert(200, next),
                        BatchOp::Insert(201, -next),
                    ])
                    .unwrap();
                match r[0] {
                    BatchResult::Cas(true) => {
                        assert!(!wrong_guard, "wrong guard must not apply");
                        guard_val = next;
                    }
                    BatchResult::Cas(false) => assert!(wrong_guard, "right guard must apply"),
                    ref other => panic!("not a Cas result: {other:?}"),
                }
            }
            done_ref.store(true, Ordering::Release);
        });

        let mut auditor = Client::connect(addr).unwrap();
        let mut audits = 0u32;
        while !done.load(Ordering::Acquire) || audits < 3 {
            let r = auditor
                .batch(&[BatchOp::Get(200), BatchOp::Get(201)])
                .unwrap();
            if let (BatchResult::Got(Some(a)), BatchResult::Got(Some(b))) = (&r[0], &r[1]) {
                assert_eq!(a + b, 0, "torn guarded batch: {a} vs {b}");
            }
            audits += 1;
        }
    });
    server.shutdown();
}

#[test]
fn guarded_wire_batch_failed_guard_leaves_zero_partial_writes() {
    let server = sharded_server();
    let addr = server.addr();
    let mut c = Client::connect(addr).unwrap();
    c.insert(0, 0).unwrap(); // the guarded counter

    // Deterministic: a cross-shard guarded batch with a stale guard in
    // the middle aborts with no trace of the 32 rider inserts.
    let mut batch: Vec<BatchOp<i64, i64>> = (500..532).map(|k| BatchOp::Insert(k, k)).collect();
    batch.insert(
        16,
        BatchOp::Cas {
            key: 0,
            expected: Some(42), // stale
            new: Some(43),
        },
    );
    let failed = c.batch_guarded(&batch).unwrap().unwrap_err();
    assert_eq!(failed, vec![16]);
    let (leaked, complete) = c.range(None, 500..532, 0).unwrap();
    assert!(complete);
    assert!(leaked.is_empty(), "aborted batch leaked: {leaked:?}");
    assert_eq!(c.get(0).unwrap(), Some(0));

    // Concurrent: two writers race guarded increments, each commit
    // depositing a unique "rider" key; the guard makes exactly one
    // winner per counter value, so on ANY coherent cut the riders
    // present must be exactly {1001..=1000+counter} — a single leaked
    // write from an aborted batch, or a torn commit, breaks it.
    let writers_done = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        let writers_done = &writers_done;
        for _ in 0..2 {
            s.spawn(move || {
                let mut writer = Client::connect(addr).unwrap();
                for _ in 0..150 {
                    let seen = writer.get(0).unwrap().unwrap();
                    let next = seen + 1;
                    match writer
                        .batch_guarded(&[
                            BatchOp::Cas {
                                key: 0,
                                expected: Some(seen),
                                new: Some(next),
                            },
                            BatchOp::Insert(1000 + next, next),
                        ])
                        .unwrap()
                    {
                        Ok(results) => assert_eq!(results[0], BatchResult::Cas(true)),
                        Err(failed) => assert_eq!(failed, vec![0]),
                    }
                }
                writers_done.fetch_add(1, Ordering::Release);
            });
        }
        s.spawn(move || {
            let mut auditor = Client::connect(addr).unwrap();
            let mut audits = 0u32;
            while writers_done.load(Ordering::Acquire) < 2 || audits < 3 {
                let (entries, complete) = auditor.range(None, .., 0).unwrap();
                assert!(complete);
                let counter = entries
                    .iter()
                    .find(|(k, _)| *k == 0)
                    .map(|(_, v)| *v)
                    .expect("counter exists");
                let riders: Vec<i64> = entries
                    .iter()
                    .filter(|(k, _)| (1000..2000).contains(k))
                    .map(|(k, _)| *k - 1000)
                    .collect();
                assert_eq!(
                    riders,
                    (1..=counter).collect::<Vec<i64>>(),
                    "riders must be exactly one per committed guard (counter={counter})"
                );
                audits += 1;
            }
        });
    });
    server.shutdown();
}

#[test]
fn every_registered_backend_serves_the_same_contract() {
    for entry in backend::backends() {
        let server = pathcopy_server::spawn((entry.make)(), ServerConfig::with_workers(2))
            .expect("bind ephemeral loopback port");
        let mut c = Client::connect(server.addr()).unwrap();
        let name = entry.name;
        for k in 0..64 {
            c.insert(k, -k).unwrap();
        }
        let snap = c.snapshot().unwrap();
        c.remove(0).unwrap();
        let (entries, _) = c.range(Some(snap), .., 0).unwrap();
        assert_eq!(entries.len(), 64, "[{name}] snapshot immutable");
        let diff = c.diff(snap, None).unwrap();
        assert_eq!(
            diff,
            vec![DiffEntry::Removed(0, 0)],
            "[{name}] pruned diff is exactly the change"
        );
        let stats = c.stats().unwrap();
        assert_eq!(stats.len, 63, "[{name}]");
        assert_eq!(stats.snapshots, 1, "[{name}]");
        server.shutdown();
    }
}
