//! Linearizability of cross-shard batch transactions.
//!
//! The contract under test: a `transact` batch is ONE atomic operation,
//! however many shards it spans. No concurrent reader, per-key writer,
//! or `snapshot_all()` may ever observe a partially applied batch; and
//! single-shard batches must commit through the plain lock-free CAS
//! loop (observable via the UC stats counters), never the freeze hook.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Mutex;

use proptest::prelude::*;

use path_copying::prelude::{BatchOp, BatchResult, ShardedTreapMap, ShardedTreapSet};

/// The acceptance invariant, full strength: a writer commits "transfer"
/// batches that keep an invariant (all keys equal) while readers take
/// `snapshot_all()` cuts and per-key reads. A torn batch shows up as two
/// keys with different values in one cut.
#[test]
fn snapshot_all_never_observes_a_torn_batch() {
    // 12 keys over 16 shards: the batch spans many shards with
    // overwhelming probability.
    const KEYS: u64 = 12;
    const ROUNDS: u64 = 3_000;

    let m: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(16);
    m.transact(&(0..KEYS).map(|k| BatchOp::Insert(k, 0)).collect::<Vec<_>>());

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let m_ref = &m;
        let done_ref = &done;
        s.spawn(move || {
            for r in 1..=ROUNDS {
                let batch: Vec<_> = (0..KEYS).map(|k| BatchOp::Insert(k, r)).collect();
                m_ref.transact(&batch);
            }
            done_ref.store(true, Relaxed);
        });

        // Reader 1: coherent cuts must always see all keys at the same
        // round.
        s.spawn(move || {
            let mut cuts = 0u64;
            while !done_ref.load(Relaxed) {
                let snap = m_ref.snapshot_all();
                let values: Vec<u64> = (0..KEYS).map(|k| *snap.get(&k).unwrap()).collect();
                assert!(
                    values.windows(2).all(|w| w[0] == w[1]),
                    "torn batch in snapshot_all: {values:?}"
                );
                cuts += 1;
            }
            assert!(cuts > 0, "reader never completed a cut");
        });

        // Reader 2: per-key reads in key order. Batches write all keys to
        // the same round, so a later-read key may only be *ahead* of an
        // earlier-read one (time moved forward), never behind it.
        s.spawn(move || {
            while !done_ref.load(Relaxed) {
                let mut last = 0u64;
                for k in 0..KEYS {
                    let v = m_ref.get(&k).unwrap();
                    assert!(
                        v >= last,
                        "torn batch seen by per-key reads: key {k} at round {v} \
                         after an earlier key at round {last}"
                    );
                    last = v;
                }
            }
        });
    });

    let snap = m.snapshot_all();
    for k in 0..KEYS {
        assert_eq!(*snap.get(&k).unwrap(), ROUNDS);
    }
}

/// Single-shard batches must take the lock-free CAS-on-root path: no
/// frozen installs, exactly one CAS-loop op per batch. Multi-shard
/// batches must go through the freeze hook.
#[test]
fn single_shard_batches_stay_on_the_cas_path() {
    // A 1-shard map makes every batch single-shard by construction.
    let single: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(1);
    for b in 0..10u64 {
        single.transact(&[
            BatchOp::Insert(b, b),
            BatchOp::Get(b),
            BatchOp::Remove(b + 100),
        ]);
    }
    let stats = single.stats_snapshot();
    assert_eq!(
        stats.frozen_installs, 0,
        "single-shard batch used the freeze hook"
    );
    assert_eq!(stats.ops, 10, "each single-shard batch is one CAS-loop op");

    // The same batches on a 16-shard map span shards and must freeze.
    let sharded: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(16);
    let batch: Vec<_> = (0..32).map(|k| BatchOp::Insert(k, k)).collect();
    sharded.transact(&batch);
    assert!(
        sharded.stats_snapshot().frozen_installs >= 2,
        "multi-shard batch must install through the freeze hook"
    );
}

/// Atomic visibility for the set facade: each batch inserts or removes a
/// whole block; any observer counting a partial block caught a torn
/// batch.
#[test]
fn set_batches_are_all_or_nothing_under_concurrent_snapshots() {
    const BLOCK: i64 = 32;
    const ROUNDS: usize = 400;

    let s: ShardedTreapSet<i64> = ShardedTreapSet::with_shards(16);
    let block: Vec<i64> = (0..BLOCK).collect();

    let done = AtomicBool::new(false);
    std::thread::scope(|sc| {
        let s_ref = &s;
        let done_ref = &done;
        let block = &block;
        sc.spawn(move || {
            for _ in 0..ROUNDS {
                assert!(s_ref.insert_batch(block).into_iter().all(|b| b));
                assert!(s_ref.remove_batch(block).into_iter().all(|b| b));
            }
            done_ref.store(true, Relaxed);
        });
        sc.spawn(move || {
            while !done_ref.load(Relaxed) {
                let n = s_ref.snapshot_all().len() as i64;
                assert!(
                    n == 0 || n == BLOCK,
                    "snapshot saw a torn set batch: {n} of {BLOCK} keys"
                );
                // The consistent multi-key read must agree with itself too.
                let present = s_ref.contains_batch(block);
                let count = present.iter().filter(|&&p| p).count() as i64;
                assert!(
                    count == 0 || count == BLOCK,
                    "contains_batch saw a torn set batch: {count} of {BLOCK}"
                );
            }
        });
    });
    assert!(s.is_empty());
}

/// An operation against the sequential oracle.
#[derive(Debug, Clone)]
enum TxOp {
    Insert(u8, u16),
    Remove(u8),
    Get(u8),
    Cas(u8, Option<u16>, Option<u16>),
}

fn tx_batches() -> impl Strategy<Value = Vec<Vec<TxOp>>> {
    let op = prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| TxOp::Insert(k % 48, v)),
        any::<u8>().prop_map(|k| TxOp::Remove(k % 48)),
        any::<u8>().prop_map(|k| TxOp::Get(k % 48)),
        (any::<u8>(), any::<(bool, u16)>(), any::<(bool, u16)>()).prop_map(|(k, e, n)| {
            TxOp::Cas(k % 48, e.0.then_some(e.1 % 4), n.0.then_some(n.1))
        }),
    ];
    prop::collection::vec(prop::collection::vec(op, 1..12), 1..24)
}

fn to_batch(ops: &[TxOp]) -> Vec<BatchOp<u8, u16>> {
    ops.iter()
        .map(|op| match *op {
            TxOp::Insert(k, v) => BatchOp::Insert(k, v),
            TxOp::Remove(k) => BatchOp::Remove(k),
            TxOp::Get(k) => BatchOp::Get(k),
            TxOp::Cas(k, expected, new) => BatchOp::Cas {
                key: k,
                expected,
                new,
            },
        })
        .collect()
}

/// Applies one batch to the locked `BTreeMap` oracle, returning expected
/// results.
fn oracle_apply(model: &mut BTreeMap<u8, u16>, ops: &[TxOp]) -> Vec<BatchResult<u16>> {
    ops.iter()
        .map(|op| match *op {
            TxOp::Insert(k, v) => BatchResult::Inserted(model.insert(k, v)),
            TxOp::Remove(k) => BatchResult::Removed(model.remove(&k)),
            TxOp::Get(k) => BatchResult::Got(model.get(&k).copied()),
            TxOp::Cas(k, ref expected, ref new) => {
                if model.get(&k) == expected.as_ref() {
                    match new {
                        Some(v) => {
                            model.insert(k, *v);
                        }
                        None => {
                            model.remove(&k);
                        }
                    }
                    BatchResult::Cas(true)
                } else {
                    BatchResult::Cas(false)
                }
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequentially, `transact` must agree op-for-op with a `BTreeMap`
    /// oracle, including in-batch ordering and Cas semantics, across
    /// shard counts (1 shard = pure CAS path, 16 = mostly freeze path).
    #[test]
    fn transact_matches_btreemap_oracle(batches in tx_batches(), shards in prop_oneof![Just(1usize), Just(4), Just(16)]) {
        let m: ShardedTreapMap<u8, u16> = ShardedTreapMap::with_shards(shards);
        let mut model = BTreeMap::new();
        for ops in &batches {
            let got = m.transact(&to_batch(ops));
            let want = oracle_apply(&mut model, ops);
            prop_assert_eq!(got, want);
        }
        // Final contents agree exactly.
        let snap = m.snapshot_all();
        prop_assert_eq!(snap.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(snap.get(k), Some(v));
        }
    }

    /// Concurrently, batches interleaved with per-key ops and
    /// `snapshot_all` must produce a history where (a) every batch is
    /// atomic against every snapshot and (b) the committed final state
    /// replays against the locked oracle in commit order.
    #[test]
    fn concurrent_batches_linearize_against_locked_oracle(seed in any::<u64>()) {
        // Disjoint key ranges per thread so the sequential outcome is
        // deterministic and directly checkable; atomicity is checked by
        // the snapshot thread via a per-thread "all keys equal" invariant.
        const THREADS: u64 = 3;
        const KEYS_PER_THREAD: u64 = 8;
        const ROUNDS: u64 = 150;

        let m: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(8);
        let oracle: Mutex<BTreeMap<u64, u64>> = Mutex::new(BTreeMap::new());
        let done = AtomicBool::new(false);

        std::thread::scope(|s| {
            let writers: Vec<_> = (0..THREADS)
                .map(|t| {
                    let m = &m;
                    let oracle = &oracle;
                    s.spawn(move || {
                        let base = t * 1000;
                        let mut x = seed ^ (t + 1).wrapping_mul(0x9e3779b97f4a7c15);
                        for r in 1..=ROUNDS {
                            x = path_copying::pathcopy_trees::hash::splitmix64(x);
                            if x % 4 == 0 {
                                // Per-key op on the thread's scratch key
                                // (outside the batch block, so the
                                // all-keys-equal invariant is untouched).
                                m.insert(base + 999, r);
                                oracle.lock().unwrap().insert(base + 999, r);
                            } else {
                                let batch: Vec<_> = (0..KEYS_PER_THREAD)
                                    .map(|k| BatchOp::Insert(base + k, r))
                                    .collect();
                                m.transact(&batch);
                                let mut o = oracle.lock().unwrap();
                                for k in 0..KEYS_PER_THREAD {
                                    o.insert(base + k, r);
                                }
                            }
                        }
                    })
                })
                .collect();
            let m = &m;
            let done_ref = &done;
            let checker = s.spawn(move || {
                let mut cuts = 0u64;
                // Check-then-test ordering guarantees at least one cut
                // even when the writers outrun the checker's first
                // schedule slot on a loaded single-core machine — the
                // final iteration runs against the quiesced map.
                loop {
                    let finished = done_ref.load(Relaxed);
                    let snap = m.snapshot_all();
                    for t in 0..THREADS {
                        let base = t * 1000;
                        let vals: Vec<Option<u64>> = (0..KEYS_PER_THREAD)
                            .map(|k| snap.get(&(base + k)).copied())
                            .collect();
                        assert!(
                            vals.windows(2).all(|w| w[0] == w[1]),
                            "torn batch for thread {t}: {vals:?}"
                        );
                    }
                    cuts += 1;
                    if finished {
                        break;
                    }
                }
                cuts
            });
            for w in writers {
                w.join().expect("writer panicked");
            }
            done.store(true, Relaxed);
            let cuts = checker.join().expect("checker panicked");
            assert!(cuts > 0, "checker never completed a cut");
        });

        // Quiescent: the map must equal the oracle (writers' key ranges
        // are disjoint, so last-writer-per-range is deterministic).
        let snap = m.snapshot_all();
        let model = oracle.into_inner().unwrap();
        prop_assert_eq!(snap.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(snap.get(k), Some(v), "key {}", k);
        }
    }
}
