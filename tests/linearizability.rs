//! Linearizability checking for the universal construction.
//!
//! The UC's linearization order is the order of successful root CASes.
//! We make that order observable by embedding a sequence number in the
//! versioned state; every thread logs `(seq, op, result)` for its
//! committed updates, and the checker replays the merged log in `seq`
//! order against `BTreeSet`, requiring every logged result to match.
//! This is a *complete* check for update operations: any lost update,
//! duplicated apply, or out-of-order commit fails the replay.

use std::sync::Mutex;

use path_copying::pathcopy_concurrent::registry::{self, SetBackendDriver};
use path_copying::pathcopy_trees::TreapSet;
use path_copying::prelude::{
    ConcurrentSet, PathCopyUc, SetSnapshot, ShardedTreapMap, Snapshottable, Update,
};

/// Versioned state: the set plus a commit sequence number.
struct Versioned {
    set: TreapSet<i64>,
    seq: u64,
}

#[derive(Debug, Clone, Copy)]
enum LoggedOp {
    Insert(i64),
    Remove(i64),
}

fn run_logged_workload(
    threads: i64,
    ops_per_thread: i64,
) -> (Vec<(u64, LoggedOp, bool)>, Vec<i64>) {
    let uc = PathCopyUc::new(Versioned {
        set: TreapSet::empty(),
        seq: 0,
    });
    let log: Mutex<Vec<(u64, LoggedOp, bool)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for t in 0..threads {
            let uc = &uc;
            let log = &log;
            scope.spawn(move || {
                let mut local = Vec::with_capacity(ops_per_thread as usize);
                let mut x = 0x9e3779b97f4a7c15u64.wrapping_mul(t as u64 + 1);
                for _ in 0..ops_per_thread {
                    x = path_copying::pathcopy_trees::hash::splitmix64(x);
                    let key = (x % 128) as i64;
                    let op = if x & (1 << 40) == 0 {
                        LoggedOp::Insert(key)
                    } else {
                        LoggedOp::Remove(key)
                    };
                    let (seq, changed) = uc.update(|state| {
                        let outcome = match op {
                            LoggedOp::Insert(k) => state.set.insert(k),
                            LoggedOp::Remove(k) => state.set.remove(&k),
                        };
                        match outcome {
                            Some(next) => {
                                let seq = state.seq + 1;
                                Update::Replace(Versioned { set: next, seq }, (seq, true))
                            }
                            // No-ops don't commit a version; they
                            // linearize at their (atomic) read. We log
                            // them with the seq they observed.
                            None => Update::Keep((state.seq, false)),
                        }
                    });
                    local.push((seq, op, changed));
                }
                log.lock().unwrap().extend(local);
            });
        }
    });

    let final_contents: Vec<i64> = uc.read(|s| s.set.iter().copied().collect());
    (log.into_inner().unwrap(), final_contents)
}

#[test]
fn committed_updates_replay_in_cas_order() {
    let (log, final_contents) = run_logged_workload(4, 3_000);

    // Replay committed updates in seq order against the reference model.
    let mut committed: Vec<(u64, LoggedOp)> = log
        .iter()
        .filter(|(_, _, changed)| *changed)
        .map(|(seq, op, _)| (*seq, *op))
        .collect();
    committed.sort_by_key(|(seq, _)| *seq);

    // Sequence numbers must be exactly 1..=n: every CAS commit is unique
    // and none is lost.
    for (i, (seq, _)) in committed.iter().enumerate() {
        assert_eq!(*seq, i as u64 + 1, "commit sequence has gaps or duplicates");
    }

    let mut reference = std::collections::BTreeSet::new();
    for (seq, op) in &committed {
        let changed = match op {
            LoggedOp::Insert(k) => reference.insert(*k),
            LoggedOp::Remove(k) => reference.remove(k),
        };
        assert!(
            changed,
            "op {op:?} at seq {seq} was logged as changing the set but the replay disagrees"
        );
    }

    // The final structure must equal the replayed model exactly.
    let expect: Vec<i64> = reference.into_iter().collect();
    assert_eq!(final_contents, expect, "final state diverges from replay");
}

#[test]
fn noop_results_are_consistent_with_observed_versions() {
    let (log, _) = run_logged_workload(4, 2_000);

    // Rebuild the set contents at every committed seq, then check each
    // no-op against the version it reported observing.
    let mut committed: Vec<(u64, LoggedOp)> = log
        .iter()
        .filter(|(_, _, changed)| *changed)
        .map(|(seq, op, _)| (*seq, *op))
        .collect();
    committed.sort_by_key(|(seq, _)| *seq);

    let mut at_version: Vec<std::collections::BTreeSet<i64>> =
        Vec::with_capacity(committed.len() + 1);
    at_version.push(std::collections::BTreeSet::new());
    for (_, op) in &committed {
        let mut next = at_version.last().unwrap().clone();
        match op {
            LoggedOp::Insert(k) => {
                next.insert(*k);
            }
            LoggedOp::Remove(k) => {
                next.remove(k);
            }
        }
        at_version.push(next);
    }

    for (seq, op, changed) in &log {
        if *changed {
            continue;
        }
        let state = &at_version[*seq as usize];
        match op {
            LoggedOp::Insert(k) => assert!(
                state.contains(k),
                "no-op insert({k}) at version {seq}, but the key was absent there"
            ),
            LoggedOp::Remove(k) => assert!(
                !state.contains(k),
                "no-op remove({k}) at version {seq}, but the key was present there"
            ),
        }
    }
}

#[test]
fn disjoint_batch_runs_have_exact_counts() {
    // The Batch workload invariant end-to-end: disjoint keys, every op
    // must succeed, final set must be exactly the inserted-but-not-removed
    // keys.
    let uc = PathCopyUc::new(Versioned {
        set: TreapSet::empty(),
        seq: 0,
    });
    const THREADS: i64 = 4;
    const PER: i64 = 800;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let uc = &uc;
            scope.spawn(move || {
                let base = t * PER;
                for i in 0..PER {
                    let k = base + i;
                    let (_, changed) = uc.update(|state| match state.set.insert(k) {
                        Some(next) => {
                            let seq = state.seq + 1;
                            Update::Replace(Versioned { set: next, seq }, (seq, true))
                        }
                        None => Update::Keep((state.seq, false)),
                    });
                    assert!(changed, "disjoint insert({k}) must always succeed");
                }
                // Remove the odd half.
                for i in (1..PER).step_by(2) {
                    let k = base + i;
                    let (_, changed) = uc.update(|state| match state.set.remove(&k) {
                        Some(next) => {
                            let seq = state.seq + 1;
                            Update::Replace(Versioned { set: next, seq }, (seq, true))
                        }
                        None => Update::Keep((state.seq, false)),
                    });
                    assert!(changed, "disjoint remove({k}) must always succeed");
                }
            });
        }
    });
    let snapshot = uc.snapshot();
    assert_eq!(snapshot.set.len() as i64, THREADS * PER / 2);
    assert_eq!(snapshot.seq, (THREADS * PER + THREADS * PER / 2) as u64);
    snapshot.set.check_invariants();
    assert!(snapshot.set.iter().all(|k| k % 2 == 0));
}

#[test]
fn sharded_snapshot_all_is_a_consistent_cut() {
    // Coherence check for the sharded map's validated double scan. One
    // writer increments a chain of counter keys in a fixed order; the
    // keys are spread across the 16 shards by hashing. At any single
    // instant the counts along the chain are non-increasing, and head
    // and tail differ by at most one (the writer is mid-sweep). Any
    // snapshot assembled from per-shard reads at *different* times
    // violates this quickly; `snapshot_all` must never.
    const CHAIN: [u32; 6] = [0, 1, 2, 3, 4, 5];
    const SWEEPS: i64 = 30_000;

    let m: ShardedTreapMap<u32, i64> = ShardedTreapMap::with_shards(16);
    for k in CHAIN {
        m.insert(k, 0);
    }

    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let m_ref = &m;
        let done_ref = &done;
        scope.spawn(move || {
            for _ in 0..SWEEPS {
                for k in CHAIN {
                    m_ref.compute(&k, |v| Some(v.copied().unwrap_or(0) + 1));
                }
            }
            done_ref.store(true, std::sync::atomic::Ordering::Relaxed);
        });

        let mut cuts = 0u64;
        while !done.load(std::sync::atomic::Ordering::Relaxed) {
            let snap = m.snapshot_all();
            let counts: Vec<i64> = CHAIN.iter().map(|k| *snap.get(k).unwrap()).collect();
            for w in counts.windows(2) {
                assert!(
                    w[0] >= w[1],
                    "incoherent cut: later chain key ahead of earlier one: {counts:?}"
                );
            }
            assert!(
                counts[0] - counts[CHAIN.len() - 1] <= 1,
                "incoherent cut: chain spread exceeds one sweep: {counts:?}"
            );
            cuts += 1;
        }
        assert!(cuts > 0, "reader never completed a snapshot");
    });

    // After the writer finishes, every counter saw every sweep.
    let final_snap = m.snapshot_all();
    for k in CHAIN {
        assert_eq!(*final_snap.get(&k).unwrap(), SWEEPS);
    }
}

/// Backend-generic linearizability smoke test, one body for every
/// registry backend: disjoint-key inserts from many threads must each
/// succeed exactly once, and the final snapshot must hold exactly the
/// inserted keys in order. Lost updates, duplicated applies, or torn
/// snapshots all fail this on any backend.
#[test]
fn every_backend_linearizes_disjoint_inserts() {
    struct DisjointInserts;

    impl SetBackendDriver for DisjointInserts {
        fn drive<S>(&mut self, name: &str, make: fn() -> S)
        where
            S: ConcurrentSet<i64> + Snapshottable,
            S::Snapshot: SetSnapshot<i64>,
        {
            const THREADS: i64 = 4;
            const PER: i64 = 250;
            let set = make();
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let set = &set;
                    scope.spawn(move || {
                        for i in 0..PER {
                            let k = t * PER + i;
                            assert!(set.insert(k), "[{name}] disjoint insert({k}) must succeed");
                        }
                        // Remove then re-insert the first half: still
                        // disjoint per thread, must always change the set.
                        for i in 0..PER / 2 {
                            let k = t * PER + i;
                            assert!(set.remove(&k), "[{name}] remove({k}) must succeed");
                            assert!(set.insert(k), "[{name}] re-insert({k}) must succeed");
                        }
                    });
                }
            });
            let snap = Snapshottable::snapshot(&set);
            assert_eq!(
                SetSnapshot::len(&snap),
                (THREADS * PER) as usize,
                "[{name}]"
            );
            assert!(
                snap.iter().copied().eq(0..THREADS * PER),
                "[{name}] snapshot must hold exactly the inserted keys, in order"
            );
        }
    }

    registry::for_each_set_backend(&mut DisjointInserts);
}

#[test]
fn sharded_per_key_updates_linearize_within_their_shard() {
    // Per-key linearizability smoke test across shards: disjoint keys
    // from many threads must all land exactly once, and per-shard
    // wait-free snapshots must agree with the coherent global cut.
    let m: ShardedTreapMap<i64, i64> = ShardedTreapMap::with_shards(8);
    const THREADS: i64 = 8;
    const PER: i64 = 1_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let m = &m;
            scope.spawn(move || {
                for i in 0..PER {
                    let k = t * PER + i;
                    assert_eq!(m.insert(k, -k), None, "duplicate insert of disjoint key");
                }
            });
        }
    });

    let snap = m.snapshot_all();
    assert_eq!(snap.len(), (THREADS * PER) as usize);
    // The union of per-shard snapshots equals the coherent cut now that
    // writers are quiescent.
    let mut union = 0usize;
    for s in 0..m.shard_count() {
        union += m.snapshot_shard(s).len();
    }
    assert_eq!(union, snap.len());
    assert!(snap
        .to_sorted_vec()
        .iter()
        .map(|(k, _)| *k)
        .eq(0..THREADS * PER));
}
