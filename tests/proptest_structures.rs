//! Property-based tests: every persistent structure must behave exactly
//! like its std reference model under arbitrary operation sequences, must
//! keep old versions intact (persistence), and must respect its
//! structural invariants and the path-copying sharing bound.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use proptest::prelude::*;

use path_copying::pathcopy_trees::{
    avl::AvlMap, list::PStack, pvec::PVec, queue::PQueue, rbtree::RbMap, sharing, ExternalBstSet,
    TreapMap,
};
use path_copying::prelude::ShardedTreapMap;

/// An operation on a keyed map/set.
#[derive(Debug, Clone)]
enum MapOp {
    Insert(i16, i16),
    Remove(i16),
    Query(i16),
}

fn map_ops() -> impl Strategy<Value = Vec<MapOp>> {
    prop::collection::vec(
        prop_oneof![
            (any::<i16>(), any::<i16>()).prop_map(|(k, v)| MapOp::Insert(k % 64, v)),
            any::<i16>().prop_map(|k| MapOp::Remove(k % 64)),
            any::<i16>().prop_map(|k| MapOp::Query(k % 64)),
        ],
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn treap_matches_btreemap(ops in map_ops()) {
        let mut reference = BTreeMap::new();
        let mut m: TreapMap<i16, i16> = TreapMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let (nm, old) = m.insert(k, v);
                    prop_assert_eq!(old, reference.insert(k, v));
                    m = nm;
                }
                MapOp::Remove(k) => match (m.remove(&k), reference.remove(&k)) {
                    (None, None) => {}
                    (Some((nm, got)), Some(want)) => {
                        prop_assert_eq!(got, want);
                        m = nm;
                    }
                    other => prop_assert!(false, "remove mismatch: {:?}", other.1),
                },
                MapOp::Query(k) => {
                    prop_assert_eq!(m.get(&k), reference.get(&k));
                }
            }
        }
        m.check_invariants();
        prop_assert!(m.iter().map(|(k, v)| (*k, *v)).eq(reference.into_iter()));
    }

    #[test]
    fn avl_matches_btreemap(ops in map_ops()) {
        let mut reference = BTreeMap::new();
        let mut m: AvlMap<i16, i16> = AvlMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let (nm, old) = m.insert(k, v);
                    prop_assert_eq!(old, reference.insert(k, v));
                    m = nm;
                }
                MapOp::Remove(k) => match (m.remove(&k), reference.remove(&k)) {
                    (None, None) => {}
                    (Some((nm, got)), Some(want)) => {
                        prop_assert_eq!(got, want);
                        m = nm;
                    }
                    other => prop_assert!(false, "remove mismatch: {:?}", other.1),
                },
                MapOp::Query(k) => {
                    prop_assert_eq!(m.get(&k), reference.get(&k));
                }
            }
        }
        m.check_invariants();
        prop_assert!(m.iter().map(|(k, v)| (*k, *v)).eq(reference.into_iter()));
    }

    #[test]
    fn rbtree_matches_btreemap(ops in map_ops()) {
        let mut reference = BTreeMap::new();
        let mut m: RbMap<i16, i16> = RbMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let (nm, old) = m.insert(k, v);
                    prop_assert_eq!(old, reference.insert(k, v));
                    m = nm;
                }
                MapOp::Remove(k) => match (m.remove(&k), reference.remove(&k)) {
                    (None, None) => {}
                    (Some((nm, got)), Some(want)) => {
                        prop_assert_eq!(got, want);
                        m = nm;
                    }
                    other => prop_assert!(false, "remove mismatch: {:?}", other.1),
                },
                MapOp::Query(k) => {
                    prop_assert_eq!(m.get(&k), reference.get(&k));
                }
            }
        }
        m.check_invariants();
        prop_assert!(m.iter().map(|(k, v)| (*k, *v)).eq(reference.into_iter()));
    }

    #[test]
    fn external_bst_matches_btreeset(ops in map_ops()) {
        let mut reference = BTreeSet::new();
        let mut s: ExternalBstSet<i16> = ExternalBstSet::new();
        for op in ops {
            match op {
                MapOp::Insert(k, _) => match s.insert(k) {
                    Some(next) => {
                        prop_assert!(reference.insert(k));
                        s = next;
                    }
                    None => prop_assert!(!reference.insert(k)),
                },
                MapOp::Remove(k) => match s.remove(&k) {
                    Some(next) => {
                        prop_assert!(reference.remove(&k));
                        s = next;
                    }
                    None => prop_assert!(!reference.remove(&k)),
                },
                MapOp::Query(k) => prop_assert_eq!(s.contains(&k), reference.contains(&k)),
            }
        }
        s.check_invariants();
        prop_assert!(s.iter().copied().eq(reference.into_iter()));
    }

    #[test]
    fn persistence_snapshot_is_immutable(ops in map_ops(), cut in 0usize..120) {
        // Apply `ops`, snapshotting after `cut` operations; the snapshot
        // must be bit-for-bit identical afterwards.
        let mut m: TreapMap<i16, i16> = TreapMap::new();
        let mut snapshot = None;
        let mut snapshot_contents = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            if i == cut {
                snapshot_contents = m.iter().map(|(k, v)| (*k, *v)).collect();
                snapshot = Some(m.clone());
            }
            match op {
                MapOp::Insert(k, v) => m = m.insert(*k, *v).0,
                MapOp::Remove(k) => {
                    if let Some((nm, _)) = m.remove(k) {
                        m = nm;
                    }
                }
                MapOp::Query(_) => {}
            }
        }
        if let Some(snap) = snapshot {
            prop_assert!(snap.iter().map(|(k, v)| (*k, *v)).eq(snapshot_contents.into_iter()));
        }
    }

    #[test]
    fn sharing_bound_holds_per_update(keys in prop::collection::btree_set(any::<i16>(), 16..200), new_key in any::<i16>()) {
        // One insert must allocate O(path), never O(n).
        let m: TreapMap<i32, ()> = keys.iter().map(|&k| (k as i32, ())).collect();
        let height = m.height();
        let (m2, _) = m.insert(i32::from(new_key), ());
        let stats = sharing::sharing_stats(&m, &m2);
        prop_assert!(
            stats.fresh <= 2 * height + 2,
            "fresh {} > bound {} (n = {})",
            stats.fresh,
            2 * height + 2,
            m.len()
        );
    }

    #[test]
    fn pvec_matches_vec(ops in prop::collection::vec(any::<(u8, u16)>(), 0..150)) {
        let mut reference: Vec<u16> = Vec::new();
        let mut v: PVec<u16> = PVec::new();
        for (sel, val) in ops {
            match sel % 3 {
                0 => {
                    reference.push(val);
                    v = v.push(val);
                }
                1 if !reference.is_empty() => {
                    let i = val as usize % reference.len();
                    reference[i] = val;
                    v = v.set(i, val).unwrap();
                }
                _ => {
                    let expected = reference.pop();
                    match v.pop() {
                        Some((nv, got)) => {
                            prop_assert_eq!(Some(got), expected);
                            v = nv;
                        }
                        None => prop_assert_eq!(expected, None),
                    }
                }
            }
            prop_assert_eq!(v.len(), reference.len());
        }
        prop_assert!(v.iter().copied().eq(reference.into_iter()));
    }

    #[test]
    fn pqueue_matches_vecdeque(ops in prop::collection::vec(any::<(bool, u16)>(), 0..150)) {
        let mut reference: VecDeque<u16> = VecDeque::new();
        let mut q: PQueue<u16> = PQueue::new();
        for (push, val) in ops {
            if push {
                reference.push_back(val);
                q = q.push_back(val);
            } else {
                let expected = reference.pop_front();
                match q.pop_front() {
                    Some((nq, got)) => {
                        prop_assert_eq!(Some(got), expected);
                        q = nq;
                    }
                    None => prop_assert_eq!(expected, None),
                }
            }
        }
        prop_assert_eq!(q.to_vec(), Vec::from(reference));
    }

    #[test]
    fn pstack_matches_vec(ops in prop::collection::vec(any::<(bool, u16)>(), 0..150)) {
        let mut reference: Vec<u16> = Vec::new();
        let mut s: PStack<u16> = PStack::new();
        for (push, val) in ops {
            if push {
                reference.push(val);
                s = s.push(val);
            } else {
                let expected = reference.pop();
                match s.pop() {
                    Some((ns, got)) => {
                        prop_assert_eq!(Some(got), expected);
                        s = ns;
                    }
                    None => prop_assert_eq!(expected, None),
                }
            }
        }
        let got: Vec<u16> = s.iter().copied().collect();
        let want: Vec<u16> = reference.into_iter().rev().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn treap_rank_select_consistent(keys in prop::collection::btree_set(any::<i16>(), 0..100)) {
        let m: TreapMap<i16, ()> = keys.iter().map(|&k| (k, ())).collect();
        for (rank, &k) in keys.iter().enumerate() {
            prop_assert_eq!(m.select(rank).map(|(key, _)| *key), Some(k));
            prop_assert_eq!(m.rank(&k), rank);
        }
        prop_assert_eq!(m.select(keys.len()), None);
    }

    #[test]
    fn sharded_treap_map_matches_btreemap(ops in map_ops(), shards_log2 in 0u32..6) {
        // The sharded front-end must behave exactly like one big map, for
        // every shard count (1 shard = the paper's single-root UC).
        let mut reference = BTreeMap::new();
        let m: ShardedTreapMap<i16, i16> = ShardedTreapMap::with_shards(1 << shards_log2);
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(m.insert(k, v), reference.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(m.remove(&k), reference.remove(&k));
                }
                MapOp::Query(k) => {
                    prop_assert_eq!(m.get(&k), reference.get(&k).copied());
                    prop_assert_eq!(m.contains_key(&k), reference.contains_key(&k));
                }
            }
            prop_assert_eq!(m.len(), reference.len());
        }
        let snap = m.snapshot_all();
        prop_assert_eq!(snap.len(), reference.len());
        prop_assert!(snap.to_sorted_vec().into_iter().eq(reference.into_iter()));
    }

    #[test]
    fn sharded_snapshot_is_immutable(ops in map_ops(), cut in 0usize..120) {
        // snapshot_all() taken mid-stream must be bit-for-bit identical
        // after arbitrary further updates (persistence across shards).
        let m: ShardedTreapMap<i16, i16> = ShardedTreapMap::with_shards(8);
        let mut snapshot = None;
        let mut snapshot_contents = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            if i == cut {
                let snap = m.snapshot_all();
                snapshot_contents = snap.to_sorted_vec();
                snapshot = Some(snap);
            }
            match op {
                MapOp::Insert(k, v) => {
                    m.insert(*k, *v);
                }
                MapOp::Remove(k) => {
                    m.remove(k);
                }
                MapOp::Query(_) => {}
            }
        }
        if let Some(snap) = snapshot {
            prop_assert_eq!(snap.to_sorted_vec(), snapshot_contents);
        }
    }

    #[test]
    fn treap_split_join_roundtrip(keys in prop::collection::btree_set(any::<i16>(), 0..100), pivot in any::<i16>()) {
        let m: TreapMap<i16, i16> = keys.iter().map(|&k| (k, k)).collect();
        let (l, mid, r) = m.split(&pivot);
        l.check_invariants();
        r.check_invariants();
        prop_assert_eq!(mid.is_some(), keys.contains(&pivot));
        prop_assert!(l.keys().all(|k| *k < pivot));
        prop_assert!(r.keys().all(|k| *k > pivot));
        let joined = l.join(&r);
        joined.check_invariants();
        let mut expect = keys.clone();
        expect.remove(&pivot);
        prop_assert!(joined.keys().copied().eq(expect.into_iter()));
    }
}
