//! Backend-generic oracle tests for the unified trait family.
//!
//! One proptest body, `N` backends: the registry
//! ([`pathcopy_concurrent::registry`]) instantiates the generic driver
//! for every map and set backend, and each must match the `std` oracle
//! (`BTreeMap`/`BTreeSet`) on point ops, snapshot `iter()`, lazy
//! `range(..)`, and snapshot-to-snapshot `diff()`. Also asserts the
//! structural guarantees behind `diff`: the walk short-circuits on
//! shared subtrees (node-visit counter), and the sharded `len()` is a
//! weak estimate while the snapshot count is exact.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use path_copying::pathcopy_concurrent::registry::{
    for_each_map_backend, for_each_set_backend, MapBackendDriver, SetBackendDriver,
};
use path_copying::prelude::*;

/// `(insert?, key, value)` triples over a small key space so removes and
/// overwrites actually hit.
fn ops_strategy() -> impl Strategy<Value = Vec<(bool, i64, i64)>> {
    prop::collection::vec((any::<bool>(), 0i64..64, -100i64..100), 0..80)
}

/// The reference diff: same contract as `MapSnapshot::diff`.
fn btree_diff(old: &BTreeMap<i64, i64>, new: &BTreeMap<i64, i64>) -> Vec<DiffEntry<i64, i64>> {
    let keys: BTreeSet<i64> = old.keys().chain(new.keys()).copied().collect();
    let mut out = Vec::new();
    for k in keys {
        match (old.get(&k), new.get(&k)) {
            (Some(a), None) => out.push(DiffEntry::Removed(k, *a)),
            (None, Some(b)) => out.push(DiffEntry::Added(k, *b)),
            (Some(a), Some(b)) if a != b => out.push(DiffEntry::Changed(k, *a, *b)),
            _ => {}
        }
    }
    out
}

struct MapOracle {
    ops: Vec<(bool, i64, i64)>,
    cut: usize,
    lo: i64,
    hi: i64,
}

impl MapBackendDriver for MapOracle {
    fn drive<M>(&mut self, name: &str, make: fn() -> M)
    where
        M: ConcurrentMap<i64, i64> + Snapshottable,
        M::Snapshot: MapSnapshot<i64, i64>,
    {
        let m = make();
        let mut reference = BTreeMap::new();
        let mut at_cut = None;
        for (i, &(ins, k, v)) in self.ops.iter().enumerate() {
            if i == self.cut {
                at_cut = Some((Snapshottable::snapshot(&m), reference.clone()));
            }
            if ins {
                assert_eq!(
                    m.insert(k, v),
                    reference.insert(k, v),
                    "[{name}] insert({k})"
                );
            } else {
                assert_eq!(m.remove(&k), reference.remove(&k), "[{name}] remove({k})");
            }
        }
        assert_eq!(m.len(), reference.len(), "[{name}] len at quiescence");

        let snap = Snapshottable::snapshot(&m);
        assert_eq!(
            MapSnapshot::len(&snap),
            reference.len(),
            "[{name}] snap len"
        );

        // Lazy full iteration matches the oracle, in order.
        let got: Vec<(i64, i64)> = snap.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(i64, i64)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want, "[{name}] snapshot iter");

        // Lazy range iteration matches the oracle over an arbitrary window.
        let (lo, hi) = (self.lo.min(self.hi), self.lo.max(self.hi));
        let got: Vec<(i64, i64)> = snap.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(i64, i64)> = reference.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want, "[{name}] snapshot range({lo}..={hi})");
        let got: Vec<i64> = snap.range(lo..hi).map(|(k, _)| *k).collect();
        let want: Vec<i64> = reference.range(lo..hi).map(|(k, _)| *k).collect();
        assert_eq!(got, want, "[{name}] snapshot half-open range");

        // Point reads on the snapshot.
        for k in [lo, hi, 0, 63] {
            assert_eq!(snap.get(&k), reference.get(&k), "[{name}] snap get({k})");
            assert_eq!(
                snap.contains_key(&k),
                reference.contains_key(&k),
                "[{name}] snap contains({k})"
            );
        }

        // Diff between the mid-stream snapshot and the final one.
        if let Some((before, before_ref)) = at_cut {
            assert_eq!(
                before.diff(&snap),
                btree_diff(&before_ref, &reference),
                "[{name}] snapshot diff"
            );
        }
        // A snapshot diffed against itself is empty.
        assert!(snap.diff(&snap).is_empty(), "[{name}] self diff");
    }
}

struct SetOracle {
    ops: Vec<(bool, i64, i64)>,
    cut: usize,
    lo: i64,
    hi: i64,
}

impl SetBackendDriver for SetOracle {
    fn drive<S>(&mut self, name: &str, make: fn() -> S)
    where
        S: ConcurrentSet<i64> + Snapshottable,
        S::Snapshot: SetSnapshot<i64>,
    {
        let s = make();
        let mut reference = BTreeSet::new();
        let mut at_cut = None;
        for (i, &(ins, k, _)) in self.ops.iter().enumerate() {
            if i == self.cut {
                at_cut = Some((Snapshottable::snapshot(&s), reference.clone()));
            }
            if ins {
                assert_eq!(s.insert(k), reference.insert(k), "[{name}] insert({k})");
            } else {
                assert_eq!(s.remove(&k), reference.remove(&k), "[{name}] remove({k})");
            }
        }
        assert_eq!(s.len(), reference.len(), "[{name}] len at quiescence");

        let snap = Snapshottable::snapshot(&s);
        assert_eq!(
            SetSnapshot::len(&snap),
            reference.len(),
            "[{name}] snap len"
        );
        assert!(
            snap.iter().copied().eq(reference.iter().copied()),
            "[{name}] snap iter"
        );

        let (lo, hi) = (self.lo.min(self.hi), self.lo.max(self.hi));
        let got: Vec<i64> = snap.range(lo..=hi).copied().collect();
        let want: Vec<i64> = reference.range(lo..=hi).copied().collect();
        assert_eq!(got, want, "[{name}] snap range({lo}..={hi})");

        if let Some((before, before_ref)) = at_cut {
            let want: Vec<SetDiffEntry<i64>> = {
                let keys: BTreeSet<i64> = before_ref.union(&reference).copied().collect();
                keys.into_iter()
                    .filter_map(
                        |k| match (before_ref.contains(&k), reference.contains(&k)) {
                            (true, false) => Some(SetDiffEntry::Removed(k)),
                            (false, true) => Some(SetDiffEntry::Added(k)),
                            _ => None,
                        },
                    )
                    .collect()
            };
            assert_eq!(before.diff(&snap), want, "[{name}] snapshot diff");
        }
        assert!(snap.diff(&snap).is_empty(), "[{name}] self diff");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_map_backend_matches_btreemap(
        ops in ops_strategy(),
        cut in 0usize..80,
        lo in 0i64..64,
        hi in 0i64..64,
    ) {
        for_each_map_backend(&mut MapOracle { ops, cut, lo, hi });
    }

    #[test]
    fn every_set_backend_matches_btreeset(
        ops in ops_strategy(),
        cut in 0usize..80,
        lo in 0i64..64,
        hi in 0i64..64,
    ) {
        for_each_set_backend(&mut SetOracle { ops, cut, lo, hi });
    }
}

/// Std-trait parity: the concurrent structures drop into generic code
/// like `std` collections — `FromIterator`, `Extend`, `Debug`, `Default`,
/// and `IntoIterator` on their snapshots (both owned and by-ref forms).
#[test]
fn std_trait_parity_for_concurrent_structures() {
    // FromIterator + Debug + Default.
    let m: TreapMap<i64, i64> = (0..5).map(|k| (k, k * 10)).collect();
    assert_eq!(format!("{m:?}"), "{0: 0, 1: 10, 2: 20, 3: 30, 4: 40}");
    assert!(TreapMap::<i64, i64>::default().is_empty());

    let sm: ShardedTreapMap<i64, i64> = (0..5).map(|k| (k, k)).collect();
    assert_eq!(format!("{sm:?}"), "{0: 0, 1: 1, 2: 2, 3: 3, 4: 4}");

    let ss: ShardedTreapSet<i64> = (0..4).collect();
    assert_eq!(format!("{ss:?}"), "{0, 1, 2, 3}");
    assert!(ShardedTreapSet::<i64>::default().is_empty());

    let ts: TreapSet<i64> = (0..4).collect();
    assert_eq!(format!("{ts:?}"), "{0, 1, 2, 3}");

    // Extend.
    let mut m2 = m;
    m2.extend([(9, 90), (0, -1)]);
    assert_eq!(m2.get(&9), Some(90));
    assert_eq!(m2.get(&0), Some(-1));
    let mut ss2 = ss;
    ss2.extend([9, 10]);
    assert_eq!(ss2.len(), 6);

    // IntoIterator on snapshots: by-ref borrows lazily, owned clones out.
    let snap = m2.snapshot();
    let by_ref: Vec<(i64, i64)> = (&snap).into_iter().map(|(k, v)| (*k, *v)).collect();
    let owned: Vec<(i64, i64)> = snap.clone().into_iter().collect();
    assert_eq!(by_ref, owned);
    assert!(owned.iter().map(|(k, _)| *k).eq([0, 1, 2, 3, 4, 9]));

    let sm_snap = sm.snapshot_all();
    let by_ref: Vec<(i64, i64)> = (&sm_snap).into_iter().map(|(k, v)| (*k, *v)).collect();
    let owned: Vec<(i64, i64)> = sm_snap.into_iter().collect();
    assert_eq!(
        by_ref, owned,
        "sharded snapshot iteration is merged in order"
    );
    assert!(owned.iter().map(|(k, _)| *k).eq(0..5));

    let ss_snap = ss2.snapshot_all();
    let by_ref: Vec<i64> = (&ss_snap).into_iter().copied().collect();
    let owned: Vec<i64> = ss_snap.into_iter().collect();
    assert_eq!(by_ref, owned);
    assert_eq!(owned, vec![0, 1, 2, 3, 9, 10]);

    // `for` loops work directly (the whole point of IntoIterator).
    let mut n = 0;
    for (_k, _v) in &m2.snapshot() {
        n += 1;
    }
    assert_eq!(n, 6);
}

/// The headline structural property: diffing two nearby versions of a
/// large map must *not* walk the whole tree — shared subtrees are pruned
/// by pointer equality, so the visit count stays near the boundary
/// paths. Asserted through the node-visit counter.
#[test]
fn diff_short_circuits_on_shared_subtrees() {
    const N: i64 = 20_000;
    const CHANGES: usize = 6;
    let v1: PersistentTreapMap<i64, i64> = (0..N).map(|k| (k, k)).collect();

    let (v2, _) = v1.insert(N + 1, -1); // added
    let (v2, _) = v2.insert(N / 2, -2); // changed
    let (v2, _) = v2.remove(&7).unwrap(); // removed
    let (v2, _) = v2.remove(&(N - 3)).unwrap(); // removed
    let (v2, _) = v2.insert(N + 9, -3); // added
    let (v2, _) = v2.insert(1, -4); // changed

    let (diff, visited) = v1.diff_counted(&v2);
    assert_eq!(
        diff,
        vec![
            DiffEntry::Changed(1, 1, -4),
            DiffEntry::Removed(7, 7),
            DiffEntry::Changed(N / 2, N / 2, -2),
            DiffEntry::Removed(N - 3, N - 3),
            DiffEntry::Added(N + 1, -1),
            DiffEntry::Added(N + 9, -3),
        ]
    );

    // Each change exposes at most a couple of root-to-key paths in each
    // version; everything else must be skipped. The bound is generous
    // (8 nodes of slack per path) yet far below the 20k tree size.
    let height = v1.height();
    let bound = 2 * (CHANGES + 1) * (height + 8);
    assert!(
        visited <= bound,
        "diff visited {visited} nodes, expected <= {bound} (height {height}, n {N})"
    );
    assert!(
        visited < (N as usize) / 8,
        "diff visited {visited} nodes of a {N}-node tree: not sublinear"
    );

    // Identical versions short-circuit at the root: zero visits.
    let (empty_diff, zero) = v2.diff_counted(&v2.clone());
    assert!(empty_diff.is_empty());
    assert_eq!(zero, 0);

    // Same property on the external BST (the paper's model tree). The
    // EBST has no rebalancing, so insert in hash-shuffled order — as the
    // paper's workloads do — to get the balanced-with-high-probability
    // shape (ascending order would build a depth-N spine).
    let e1: ExternalBstSet<i64> = {
        let mut keys: Vec<i64> = (0..N).collect();
        keys.sort_by_key(|&k| path_copying::pathcopy_trees::hash::splitmix64(k as u64));
        keys.into_iter().collect()
    };
    let e2 = e1.insert(N + 1).unwrap().remove(&7).unwrap();
    let (ediff, evisited) = e1.diff_counted(&e2);
    assert_eq!(
        ediff,
        vec![SetDiffEntry::Removed(7), SetDiffEntry::Added(N + 1)]
    );
    let ebound = 2 * 3 * (e1.height() + 8);
    assert!(
        evisited <= ebound,
        "ebst diff visited {evisited} nodes, expected <= {ebound}"
    );
}

/// `ShardedTreapMap::len()` is a per-shard sum — a weakly consistent
/// estimate under churn — while the snapshot count is exact. This pins
/// the documented distinction: with one writer atomically swapping keys
/// (constant true size), every coherent cut must count exactly `N`,
/// whereas the live sum is only required to stay near `N` and to be
/// exact at quiescence.
#[test]
fn sharded_len_is_weak_but_snapshot_len_is_exact() {
    const N: i64 = 256;
    const SWAPS: i64 = 4_000;

    let m: ShardedTreapMap<i64, ()> = ShardedTreapMap::with_shards(16);
    for k in 0..N {
        m.insert(k, ());
    }

    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let m_ref = &m;
        let done_ref = &done;
        scope.spawn(move || {
            // Each transaction atomically removes one key and inserts a
            // fresh one (usually in a different shard): the true size
            // never changes, but a torn per-shard sum can see the pair
            // half-applied.
            for i in 0..SWAPS {
                let old = i % N;
                let new = N + i;
                m_ref.transact(&[BatchOp::Remove(old), BatchOp::Insert(new, ())]);
                m_ref.transact(&[BatchOp::Remove(new), BatchOp::Insert(old, ())]);
            }
            done_ref.store(true, std::sync::atomic::Ordering::Relaxed);
        });

        let mut cuts = 0u64;
        while !done.load(std::sync::atomic::Ordering::Relaxed) {
            // Exact: the coherent cut always counts the true size.
            assert_eq!(
                m.snapshot_all().len(),
                N as usize,
                "snapshot len must be exact"
            );
            // Weak: the live sum may tear, but its drift is provably
            // bounded by the shard count. Between a swap-out and its
            // swap-back the state differs from the initial one only in
            // that single key pair, and those windows are disjoint in
            // time (one writer). Each of the 16 per-shard reads happens
            // at one instant, which lands in at most one window and
            // contributes at most ±1 to the sum — so however the reader
            // is preempted, |live − N| ≤ shard_count.
            let live = m.len() as i64;
            let slack = m.shard_count() as i64;
            assert!(
                (N - slack..=N + slack).contains(&live),
                "live len {live} drifted beyond the provable ±{slack} bound around {N}"
            );
            cuts += 1;
        }
        assert!(cuts > 0, "reader never observed a cut");
    });

    // At quiescence the weak sum is exact again.
    assert_eq!(m.len(), N as usize);
    assert_eq!(m.snapshot_all().len(), m.len());
}
