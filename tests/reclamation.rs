//! Memory-reclamation tests: the epoch-protected `Arc` handoff must free
//! every retired version (no leaks) exactly once (no double frees —
//! those would crash or corrupt), even while readers hold snapshots.
//!
//! This is the part of the paper that Java's GC did implicitly and we
//! had to build; see DESIGN.md §2.

use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;

use path_copying::prelude::{PathCopyUc, Update, VersionCell};

/// Counts live instances to observe reclamation.
struct Tracked {
    live: &'static AtomicUsize,
    payload: u64,
}

impl Tracked {
    fn new(live: &'static AtomicUsize, payload: u64) -> Self {
        live.fetch_add(1, Relaxed);
        Tracked { live, payload }
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Relaxed);
    }
}

fn drain_epochs(live: &AtomicUsize, expect: usize, what: &str) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    while live.load(Relaxed) != expect {
        // Flush this thread's own deferral bag too — the CASes above ran
        // on this thread, so some deferred drops are parked locally.
        crossbeam_epoch_pin_flush();
        std::thread::scope(|s| {
            // Pinning from several threads advances the global epoch.
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..64 {
                        crossbeam_epoch_pin_flush();
                    }
                });
            }
        });
        assert!(
            std::time::Instant::now() < deadline,
            "{what}: {} versions still live, expected {expect}",
            live.load(Relaxed)
        );
    }
}

fn crossbeam_epoch_pin_flush() {
    // The workspace pins one crossbeam-epoch version, so this pin shares
    // the default collector with pathcopy-core's VersionCell.
    crossbeam_epoch::pin().flush();
}

#[test]
fn retired_versions_are_freed_under_churn() {
    static LIVE: AtomicUsize = AtomicUsize::new(0);
    {
        let cell = VersionCell::new(Tracked::new(&LIVE, 0));
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let cell = &cell;
                s.spawn(move || {
                    for i in 0..2_000 {
                        let cur = cell.load();
                        let _ = cell
                            .compare_exchange(&cur, Arc::new(Tracked::new(&LIVE, t * 10_000 + i)));
                    }
                });
            }
        });
        assert!(LIVE.load(Relaxed) >= 1, "current version must be live");
    }
    drain_epochs(&LIVE, 0, "churn");
}

#[test]
fn held_snapshots_pin_only_their_own_version() {
    static LIVE: AtomicUsize = AtomicUsize::new(0);
    let kept: Vec<Arc<Tracked>>;
    {
        let cell = VersionCell::new(Tracked::new(&LIVE, 0));
        let mut snaps = Vec::new();
        for i in 1..=100u64 {
            let cur = cell.load();
            cell.compare_exchange(&cur, Arc::new(Tracked::new(&LIVE, i)))
                .unwrap();
            if i % 10 == 0 {
                snaps.push(cell.load());
            }
        }
        kept = snaps;
        // 101 versions were created; we hold 10 snapshots plus the
        // current one.
    }
    drain_epochs(&LIVE, kept.len(), "held snapshots");
    // The snapshots still read correctly after everything else was freed.
    for (i, snap) in kept.iter().enumerate() {
        assert_eq!(snap.payload, (i as u64 + 1) * 10);
    }
    drop(kept);
    drain_epochs(&LIVE, 0, "after dropping snapshots");
}

#[test]
fn uc_releases_whole_structures() {
    static LIVE: AtomicUsize = AtomicUsize::new(0);

    // A persistent list of tracked nodes through the UC: when the UC is
    // dropped and epochs drain, every node must be gone.
    #[derive(Clone)]
    struct TrackedList(Option<Arc<(Tracked, TrackedList)>>);

    {
        let uc = PathCopyUc::new(TrackedList(None));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let uc = &uc;
                s.spawn(move || {
                    for i in 0..500 {
                        uc.update(|list| {
                            Update::Replace(
                                TrackedList(Some(Arc::new((Tracked::new(&LIVE, i), list.clone())))),
                                (),
                            )
                        });
                    }
                });
            }
        });
        assert_eq!(
            uc.read(|l| {
                let mut n = 0;
                let mut cur = &l.0;
                while let Some(node) = cur {
                    n += 1;
                    cur = &node.1 .0;
                }
                n
            }),
            1000
        );
    }
    drain_epochs(&LIVE, 0, "uc drop");
}
