//! Cross-crate integration tests: the concurrent front-ends under
//! realistic mixed workloads, snapshot isolation, cross-structure
//! agreement, and the lock-based baselines as behavioural oracles.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use path_copying::pathcopy_workloads::{self, Op, OpStream};
use path_copying::prelude::*;

/// Applies an op to anything set-shaped through a closure triple.
fn drive<I, R, C>(mut ops: impl OpStream, count: usize, mut ins: I, mut rem: R, mut con: C)
where
    I: FnMut(i64) -> bool,
    R: FnMut(i64) -> bool,
    C: FnMut(i64) -> bool,
{
    for _ in 0..count {
        match ops.next_op() {
            Op::Insert(k) => {
                ins(k);
            }
            Op::Remove(k) => {
                rem(k);
            }
            Op::Contains(k) => {
                con(k);
            }
        }
    }
}

#[test]
fn four_structures_agree_on_the_same_random_stream() {
    // The same deterministic op stream applied to all four concurrent
    // sets (single-threaded here — agreement is about semantics).
    let treap = TreapSet::new();
    let avl = ConcurrentAvlSet::new();
    let rb = ConcurrentRbSet::new();
    let ebst = ConcurrentExternalBstSet::new();

    let mk = || pathcopy_workloads::RandomStream::new(300, 99);
    drive(
        mk(),
        5_000,
        |k| treap.insert(k),
        |k| treap.remove(&k),
        |k| treap.contains(&k),
    );
    drive(
        mk(),
        5_000,
        |k| avl.insert(k),
        |k| avl.remove(&k),
        |k| avl.contains(&k),
    );
    drive(
        mk(),
        5_000,
        |k| rb.insert(k),
        |k| rb.remove(&k),
        |k| rb.contains(&k),
    );
    drive(
        mk(),
        5_000,
        |k| ebst.insert(k),
        |k| ebst.remove(&k),
        |k| ebst.contains(&k),
    );

    let a: Vec<i64> = treap.snapshot().iter().copied().collect();
    let b: Vec<i64> = avl.snapshot().iter().copied().collect();
    let c: Vec<i64> = rb.snapshot().iter().copied().collect();
    let d: Vec<i64> = ebst.snapshot().iter().copied().collect();
    assert_eq!(a, b, "treap vs avl disagree");
    assert_eq!(a, c, "treap vs rbtree disagree");
    assert_eq!(a, d, "treap vs external bst disagree");
}

#[test]
fn lock_free_and_mutex_sets_reach_the_same_final_state() {
    // Under disjoint-key concurrency the final state is deterministic, so
    // the mutex baseline acts as an oracle for the lock-free set.
    const THREADS: i64 = 4;
    const PER: i64 = 500;
    let lock_free = TreapSet::new();
    let locked = LockedTreapSet::new();

    for set_insert in [
        &(|k| lock_free.insert(k)) as &(dyn Fn(i64) -> bool + Sync),
        &(|k| locked.insert(k)) as &(dyn Fn(i64) -> bool + Sync),
    ] {
        std::thread::scope(|s| {
            for t in 0..THREADS {
                s.spawn(move || {
                    for i in 0..PER {
                        assert!(set_insert(t * PER + i));
                    }
                });
            }
        });
    }

    let a: Vec<i64> = lock_free.snapshot().iter().copied().collect();
    let b: Vec<i64> = locked.snapshot().iter().copied().collect();
    assert_eq!(a, b);
    assert_eq!(a.len() as i64, THREADS * PER);
}

#[test]
fn snapshot_isolation_under_heavy_churn() {
    let map = TreapMap::new();
    for i in 0..1_000 {
        map.insert(i, i * 10);
    }
    let stop = AtomicBool::new(false);
    let violations = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Churning writers.
        for w in 0..2i64 {
            let map = &map;
            let stop = &stop;
            s.spawn(move || {
                let mut x = w as u64 + 1;
                while !stop.load(Ordering::Relaxed) {
                    x = path_copying::pathcopy_trees::hash::splitmix64(x);
                    let k = (x % 1_000) as i64;
                    if x & 1 == 0 {
                        map.insert(k, k * 10);
                    } else {
                        map.remove(&k);
                    }
                }
            });
        }
        // Snapshot readers: within one snapshot, every key's value obeys
        // the invariant value == key * 10, and two scans of the same
        // snapshot agree exactly.
        let map = &map;
        let stop = &stop;
        let violations = &violations;
        s.spawn(move || {
            for _ in 0..200 {
                let snap = map.snapshot();
                let scan1: Vec<(i64, i64)> = snap.iter().map(|(k, v)| (*k, *v)).collect();
                let scan2: Vec<(i64, i64)> = snap.iter().map(|(k, v)| (*k, *v)).collect();
                if scan1 != scan2 {
                    violations.fetch_add(1, Ordering::Relaxed);
                }
                if scan1.iter().any(|(k, v)| *v != k * 10) {
                    violations.fetch_add(1, Ordering::Relaxed);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
    });

    assert_eq!(
        violations.load(Ordering::Relaxed),
        0,
        "snapshot isolation violated"
    );
}

#[test]
fn batch_and_random_workloads_run_end_to_end() {
    // A miniature of the paper's two workloads through the public API.
    let workload = pathcopy_workloads::BatchWorkload::generate(3, 2_000, 300, 5);
    let set = TreapSet::new();
    for &k in &workload.prefill {
        set.insert(k);
    }
    let before = set.len();
    std::thread::scope(|s| {
        for mut stream in workload.streams() {
            let set = &set;
            s.spawn(move || {
                // Full cycles leave the set unchanged; every op succeeds.
                for _ in 0..600 {
                    match stream.next_op() {
                        Op::Insert(k) => assert!(set.insert(k)),
                        Op::Remove(k) => assert!(set.remove(&k)),
                        Op::Contains(_) => unreachable!(),
                    }
                }
            });
        }
    });
    assert_eq!(set.len(), before, "full batch cycles must be conservative");
    let stats = set.stats().snapshot();
    assert_eq!(stats.noop_updates, 0);

    let random = pathcopy_workloads::RandomWorkload::generate(3, 2_000, 500, 6);
    let set2 = TreapSet::new();
    for &k in &random.prefill {
        set2.insert(k);
    }
    std::thread::scope(|s| {
        for mut stream in random.streams() {
            let set2 = &set2;
            s.spawn(move || {
                for _ in 0..2_000 {
                    set2.apply_op(stream.next_op());
                }
            });
        }
    });
    // Keys stay within the configured range and the structure is valid.
    let snap = set2.snapshot();
    snap.check_invariants();
    assert!(snap.iter().all(|k| (-500..=500).contains(k)));
    // Random workload must have produced some no-ops (that's its point).
    assert!(set2.stats().snapshot().noop_updates > 0);
}

/// Extension trait so the test can apply `Op`s through the public API.
trait ApplyOp {
    fn apply_op(&self, op: Op) -> bool;
}

impl ApplyOp for TreapSet<i64> {
    fn apply_op(&self, op: Op) -> bool {
        match op {
            Op::Insert(k) => self.insert(k),
            Op::Remove(k) => self.remove(&k),
            Op::Contains(k) => self.contains(&k),
        }
    }
}

#[test]
fn stack_and_queue_conserve_elements_under_contention() {
    let stack: Stack<u64> = Stack::new();
    let queue: Queue<u64> = Queue::new();
    const N: u64 = 2_000;

    std::thread::scope(|s| {
        for t in 0..2u64 {
            let stack = &stack;
            let queue = &queue;
            s.spawn(move || {
                for i in 0..N {
                    stack.push(t * N + i);
                    queue.push_back(t * N + i);
                }
            });
        }
    });
    assert_eq!(stack.len() as u64, 2 * N);
    assert_eq!(queue.len() as u64, 2 * N);

    let drained = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..2 {
            let stack = &stack;
            let queue = &queue;
            let drained = &drained;
            s.spawn(move || {
                let mut local = Vec::new();
                while let Some(v) = stack.pop() {
                    local.push(v);
                }
                while let Some(v) = queue.pop_front() {
                    local.push(v);
                }
                drained.lock().unwrap().extend(local);
            });
        }
    });
    let mut all = drained.into_inner().unwrap();
    all.sort_unstable();
    // Every element appears exactly twice: once from the stack, once from
    // the queue.
    assert_eq!(all.len() as u64, 4 * N);
    for pair in all.chunks(2) {
        assert_eq!(pair[0], pair[1], "element lost or duplicated");
    }
}

#[test]
fn uc_read_during_long_iteration_sees_fixed_version() {
    let map: TreapMap<i64, i64> = TreapMap::new();
    for i in 0..5_000 {
        map.insert(i, i);
    }
    let snap = map.snapshot();
    std::thread::scope(|s| {
        let map = &map;
        s.spawn(move || {
            for i in 0..5_000 {
                map.remove(&i);
            }
        });
        // Slow reader over the retained snapshot.
        let count = snap.iter().count();
        assert_eq!(count, 5_000);
    });
    assert!(map.is_empty());
}
