//! Property tests for the wire protocol: encode→decode is the identity
//! for arbitrary messages, the v3 envelope carries its correlation id
//! both ways (and legacy v2 frames still decode), and corrupted frames
//! (truncation, bad tags, bad versions, trailing bytes) are rejected,
//! never mis-parsed.

use std::ops::Bound;

use proptest::prelude::*;

use pathcopy_concurrent::{BatchOp, BatchResult};
use pathcopy_core::DiffEntry;
use pathcopy_server::proto::{
    FeedInfo, ProtoError, Request, Response, ServerGauges, StageSummary, WireError, WireStats,
    PROTO_TRACE_FLAG, PROTO_V2, PROTO_VERSION,
};
use pathcopy_server::SpanRecord;

fn arb_opt_i64() -> impl Strategy<Value = Option<i64>> {
    (any::<bool>(), any::<i64>()).prop_map(|(some, v)| some.then_some(v))
}

fn arb_opt_u64() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v))
}

fn arb_bound() -> impl Strategy<Value = Bound<i64>> {
    prop_oneof![
        Just(Bound::Unbounded),
        any::<i64>().prop_map(Bound::Included),
        any::<i64>().prop_map(Bound::Excluded),
    ]
}

fn arb_batch_op() -> impl Strategy<Value = BatchOp<i64, i64>> {
    prop_oneof![
        any::<i64>().prop_map(BatchOp::Get),
        (any::<i64>(), any::<i64>()).prop_map(|(k, v)| BatchOp::Insert(k, v)),
        any::<i64>().prop_map(BatchOp::Remove),
        (any::<i64>(), arb_opt_i64(), arb_opt_i64())
            .prop_map(|(key, expected, new)| { BatchOp::Cas { key, expected, new } }),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        any::<i64>().prop_map(|key| Request::Get { key }),
        (any::<i64>(), any::<i64>()).prop_map(|(key, value)| Request::Insert { key, value }),
        any::<i64>().prop_map(|key| Request::Remove { key }),
        (any::<i64>(), arb_opt_i64(), arb_opt_i64())
            .prop_map(|(key, expected, new)| Request::Cas { key, expected, new }),
        (prop::collection::vec(arb_batch_op(), 0..17), any::<bool>())
            .prop_map(|(ops, guarded)| Request::Batch { ops, guarded }),
        Just(Request::Snapshot),
        (arb_opt_u64(), arb_bound(), (arb_bound(), any::<u32>())).prop_map(
            |(snapshot, lo, (hi, limit))| Request::Range {
                snapshot,
                lo,
                hi,
                limit
            }
        ),
        (any::<u64>(), arb_opt_u64()).prop_map(|(from, to)| Request::Diff { from, to }),
        any::<u64>().prop_map(|snapshot| Request::Release { snapshot }),
        Just(Request::Stats),
        Just(Request::Publish),
        Just(Request::Subscribe),
        any::<u64>().prop_map(|from| Request::PullDiff { from }),
        (arb_opt_u64(), arb_opt_i64(), any::<u32>()).prop_map(|(epoch, after, limit)| {
            Request::FullSync {
                epoch,
                after,
                limit,
            }
        }),
        any::<u64>().prop_map(|from| Request::SubscribePush { from }),
        (any::<i64>(), any::<u64>(), any::<u32>()).prop_map(|(key, min_epoch, wait_ms)| {
            Request::GetAt {
                key,
                min_epoch,
                wait_ms,
            }
        }),
        arb_batch_op().prop_map(|op| Request::WriteAt { op }),
        Just(Request::Gauges),
        Just(Request::Metrics),
        Just(Request::ResetMetrics),
        Just(Request::TraceDump),
    ]
}

fn arb_span_record() -> impl Strategy<Value = SpanRecord> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u8>(), any::<u8>(), any::<u8>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((trace_id, span_id, parent_span), (kind, tag, flags), (epoch, start_ns, dur_ns))| {
                SpanRecord {
                    trace_id,
                    span_id,
                    parent_span,
                    kind,
                    tag,
                    flags,
                    epoch,
                    start_ns,
                    dur_ns,
                }
            },
        )
}

fn arb_stage_summary() -> impl Strategy<Value = StageSummary> {
    (
        (any::<u8>(), any::<u8>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(
                (stage, tag, count, sum),
                (p50, p90, p99),
                (p999, max),
                (exemplar_id, exemplar_trace),
            )| StageSummary {
                stage,
                tag,
                count,
                sum,
                p50,
                p90,
                p99,
                p999,
                max,
                exemplar_id,
                exemplar_trace,
            },
        )
}

fn arb_batch_result() -> impl Strategy<Value = BatchResult<i64>> {
    prop_oneof![
        arb_opt_i64().prop_map(BatchResult::Got),
        arb_opt_i64().prop_map(BatchResult::Inserted),
        arb_opt_i64().prop_map(BatchResult::Removed),
        any::<bool>().prop_map(BatchResult::Cas),
    ]
}

fn arb_diff_entry() -> impl Strategy<Value = DiffEntry<i64, i64>> {
    prop_oneof![
        (any::<i64>(), any::<i64>()).prop_map(|(k, v)| DiffEntry::Added(k, v)),
        (any::<i64>(), any::<i64>()).prop_map(|(k, v)| DiffEntry::Removed(k, v)),
        (any::<i64>(), any::<i64>(), any::<i64>())
            .prop_map(|(k, a, b)| DiffEntry::Changed(k, a, b)),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        arb_opt_i64().prop_map(Response::Got),
        arb_opt_i64().prop_map(Response::Inserted),
        arb_opt_i64().prop_map(Response::Removed),
        any::<bool>().prop_map(Response::CasApplied),
        prop::collection::vec(arb_batch_result(), 0..17).prop_map(Response::Batch),
        any::<u64>().prop_map(Response::SnapshotTaken),
        (
            prop::collection::vec((any::<i64>(), any::<i64>()), 0..33),
            any::<bool>()
        )
            .prop_map(|(entries, complete)| Response::Entries { entries, complete }),
        prop::collection::vec(arb_diff_entry(), 0..33).prop_map(Response::Diff),
        any::<bool>().prop_map(Response::Released),
        (
            (any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<u64>(), any::<u64>(), any::<u64>())
        )
            .prop_map(
                |(
                    (ops, attempts, cas_failures),
                    (noop_updates, reads, frozen_installs),
                    (freeze_retries, len, snapshots),
                )| {
                    Response::Stats(WireStats {
                        ops,
                        attempts,
                        cas_failures,
                        noop_updates,
                        reads,
                        frozen_installs,
                        freeze_retries,
                        len,
                        snapshots,
                    })
                }
            ),
        any::<u64>().prop_map(|id| Response::Error(WireError::UnknownSnapshot(id))),
        Just(Response::Error(WireError::SnapshotMismatch)),
        Just(Response::Error(WireError::Malformed)),
        Just(Response::Error(WireError::TooLarge)),
        any::<u64>().prop_map(|cap| Response::Error(WireError::SnapshotLimit(cap))),
        any::<u64>().prop_map(|oldest| Response::Error(WireError::EpochRetired(oldest))),
        prop::collection::vec(any::<u32>(), 0..9).prop_map(Response::BatchAborted),
        any::<u64>().prop_map(Response::Published),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(head, oldest, capacity)| {
            Response::FeedInfo(FeedInfo {
                head,
                oldest,
                capacity,
            })
        }),
        (any::<u64>(), prop::collection::vec(arb_diff_entry(), 0..33))
            .prop_map(|(to, entries)| Response::EpochDiff { to, entries }),
        (
            any::<u64>(),
            prop::collection::vec((any::<i64>(), any::<i64>()), 0..33),
            any::<bool>()
        )
            .prop_map(|(epoch, entries, done)| Response::SyncPage {
                epoch,
                entries,
                done,
            }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(head, oldest, capacity)| {
            Response::SubscribeAck(FeedInfo {
                head,
                oldest,
                capacity,
            })
        }),
        (
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(arb_diff_entry(), 0..33)
        )
            .prop_map(|(from, epoch, entries)| Response::Push {
                from,
                epoch,
                entries,
            }),
        (arb_opt_i64(), any::<u64>()).prop_map(|(value, epoch)| Response::GotAt { value, epoch }),
        (arb_batch_result(), any::<u64>())
            .prop_map(|(result, watermark)| Response::WroteAt { result, watermark }),
        (
            (any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<u64>(), any::<u64>(), any::<u64>())
        )
            .prop_map(
                |(
                    (requests, requests_shed, open_conns),
                    (wire_sent, wire_received, subscribers),
                    (pushes, push_demotions, feed_head),
                )| {
                    Response::Gauges(ServerGauges {
                        requests,
                        requests_shed,
                        open_conns,
                        wire_sent,
                        wire_received,
                        subscribers,
                        pushes,
                        push_demotions,
                        feed_head,
                    })
                }
            ),
        any::<u64>().prop_map(|epoch| Response::Error(WireError::Stale(epoch))),
        prop::collection::vec(arb_stage_summary(), 0..9).prop_map(Response::Metrics),
        Just(Response::MetricsReset),
        (any::<u32>(), prop::collection::vec(arb_span_record(), 0..9)).prop_map(|(n, spans)| {
            Response::TraceDump {
                node: format!("node{n}"),
                spans,
            }
        }),
    ]
}

fn encode_request(req: &Request) -> Vec<u8> {
    let mut body = Vec::new();
    req.encode(&mut body);
    body
}

fn encode_response(resp: &Response) -> Vec<u8> {
    let mut body = Vec::new();
    resp.encode(&mut body);
    body
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn request_encode_decode_is_identity(req in arb_request()) {
        let body = encode_request(&req);
        prop_assert_eq!(Request::decode(&body).expect("decode"), req);
    }

    #[test]
    fn response_encode_decode_is_identity(resp in arb_response()) {
        let body = encode_response(&resp);
        prop_assert_eq!(Response::decode(&body).expect("decode"), resp);
    }

    #[test]
    fn truncated_request_frames_never_parse(req in arb_request(), cut in 0usize..128) {
        let body = encode_request(&req);
        // Cutting anywhere strictly inside the body must fail cleanly
        // (never panic, never yield a different valid message).
        let cut = cut % body.len().max(1);
        if cut < body.len() {
            match Request::decode(&body[..cut]) {
                Err(_) => {}
                // A prefix that still parses must parse to the SAME
                // message (possible only when cut == body.len()).
                Ok(parsed) => prop_assert_eq!(parsed, req),
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected(req in arb_request(), extra in 1usize..8) {
        let mut body = encode_request(&req);
        body.extend(vec![0xABu8; extra]);
        prop_assert!(matches!(
            Request::decode(&body),
            Err(ProtoError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn bad_version_is_rejected(req in arb_request(), v in 0u8..=255) {
        let mut body = encode_request(&req);
        if v != PROTO_VERSION && v != PROTO_V2 && v != (PROTO_VERSION | PROTO_TRACE_FLAG) {
            body[0] = v;
            prop_assert!(matches!(Request::decode(&body), Err(ProtoError::BadVersion(_))));
        }
    }

    #[test]
    fn unknown_request_tags_are_rejected(tag in 22u8..=255, id in any::<u64>(), payload in prop::collection::vec(any::<u8>(), 0..16)) {
        let mut body = vec![PROTO_VERSION];
        body.extend(id.to_le_bytes());
        body.push(tag);
        body.extend(payload);
        prop_assert!(matches!(
            Request::decode(&body),
            Err(ProtoError::BadTag { .. })
        ));
    }

    #[test]
    fn unknown_response_tags_are_rejected(tag in 25u8..=255, id in any::<u64>(), payload in prop::collection::vec(any::<u8>(), 0..16)) {
        let mut body = vec![PROTO_VERSION];
        body.extend(id.to_le_bytes());
        body.push(tag);
        body.extend(payload);
        prop_assert!(matches!(
            Response::decode(&body),
            Err(ProtoError::BadTag { .. })
        ));
    }

    #[test]
    fn request_envelope_id_roundtrips(req in arb_request(), id in any::<u64>()) {
        let mut body = Vec::new();
        req.encode_with_id(id, &mut body);
        let framed = Request::decode_enveloped(&body).expect("decode");
        prop_assert_eq!(framed.version, PROTO_VERSION);
        prop_assert_eq!(framed.request_id, id);
        prop_assert_eq!(framed.msg, req);
    }

    #[test]
    fn response_envelope_id_roundtrips(resp in arb_response(), id in any::<u64>()) {
        let mut body = Vec::new();
        resp.encode_with_id(id, &mut body);
        let framed = Response::decode_enveloped(&body).expect("decode");
        prop_assert_eq!(framed.version, PROTO_VERSION);
        prop_assert_eq!(framed.request_id, id);
        prop_assert_eq!(framed.msg, resp);
    }

    #[test]
    fn legacy_v2_frames_decode_with_id_zero(req in arb_request(), resp in arb_response()) {
        let mut body = Vec::new();
        req.encode_v2(&mut body);
        let framed = Request::decode_enveloped(&body).expect("decode v2 request");
        prop_assert_eq!(framed.version, PROTO_V2);
        prop_assert_eq!(framed.request_id, 0);
        prop_assert_eq!(framed.msg, req);

        let mut body = Vec::new();
        resp.encode_v2(&mut body);
        let framed = Response::decode_enveloped(&body).expect("decode v2 response");
        prop_assert_eq!(framed.version, PROTO_V2);
        prop_assert_eq!(framed.request_id, 0);
        prop_assert_eq!(framed.msg, resp);
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        // Either outcome is fine; what matters is no panic and no UB.
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }
}

#[test]
fn truncated_request_strict_prefixes_all_fail() {
    // The deterministic exhaustive version of the truncation property for
    // one representative of every variant family.
    let reqs = [
        Request::Batch {
            ops: vec![
                BatchOp::Insert(1, 2),
                BatchOp::Cas {
                    key: 3,
                    expected: Some(4),
                    new: None,
                },
            ],
            guarded: true,
        },
        Request::FullSync {
            epoch: Some(3),
            after: Some(9),
            limit: 16,
        },
        Request::Range {
            snapshot: Some(1),
            lo: Bound::Included(0),
            hi: Bound::Excluded(10),
            limit: 5,
        },
        Request::Diff {
            from: 7,
            to: Some(8),
        },
    ];
    for req in reqs {
        let body = encode_request(&req);
        for cut in 0..body.len() {
            assert!(
                Request::decode(&body[..cut]).is_err(),
                "{req:?} prefix {cut}/{} must fail",
                body.len()
            );
        }
    }
}
