//! End-to-end tests of the pipelined serving path: correlation ids pair
//! responses with tickets regardless of completion order, a saturated
//! per-connection queue sheds `Busy` without corrupting in-flight
//! replies, and idle connections are multiplexed — not pinned to
//! workers.

use std::io::BufReader;
use std::net::TcpListener;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use proptest::prelude::*;

use pathcopy_concurrent::{BatchOp, BatchResult};
use pathcopy_core::StatsSnapshot;
use pathcopy_server::proto::{read_request_enveloped, write_response_with_id, Request, Response};
use pathcopy_server::{
    backend, Client, ClientError, ServeBackend, ServeSnapshot, ServerConfig, Session,
};

/// A mock v3 server: accepts one connection, reads `n` request frames,
/// then answers them in the order `reply_order` prescribes (indices
/// into arrival order) — each `Get { key }` becomes `Got(Some(key))`
/// under the id it arrived with. This decouples the "responses pair by
/// id" property from the real event loop's scheduling.
fn mock_shuffled_server(listener: TcpListener, n: usize, reply_order: Vec<usize>) {
    let (stream, _) = listener.accept().expect("accept");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut arrived = Vec::with_capacity(n);
    for _ in 0..n {
        let framed = read_request_enveloped(&mut reader)
            .expect("read request")
            .expect("stream open");
        let key = match framed.msg {
            Request::Get { key } => key,
            other => panic!("mock expects Get, saw {other:?}"),
        };
        arrived.push((framed.request_id, key));
    }
    let mut stream = stream;
    for &idx in &reply_order {
        let (id, key) = arrived[idx];
        write_response_with_id(&mut stream, id, &Response::Got(Some(key))).expect("write");
    }
}

/// Seeded Fisher–Yates: a deterministic permutation of `0..n`.
fn shuffled_indices(n: usize, mut seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn responses_match_tickets_under_shuffled_completion(
        n in 1usize..24,
        seed in any::<u64>(),
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind mock");
        let addr = listener.local_addr().expect("addr");
        let order = shuffled_indices(n, seed);
        let server = thread::spawn(move || mock_shuffled_server(listener, n, order));

        let session = Session::connect(addr).expect("connect");
        // Distinct keys per ticket: if demux ever paired a response
        // with the wrong ticket, the value would not match the key.
        let tickets: Vec<_> = (0..n as i64)
            .map(|key| {
                let t = session.submit(&Request::Get { key: key * 31 + 7 }).expect("submit");
                (key * 31 + 7, t)
            })
            .collect();
        for (key, ticket) in tickets {
            match ticket.wait().expect("response") {
                Response::Got(v) => prop_assert_eq!(v, Some(key)),
                other => panic!("unexpected {other:?}"),
            }
        }
        drop(session);
        server.join().expect("mock server");
    }
}

/// Delegates every operation to the wrapped backend, stalling reads so
/// a pipelined client can pile requests up faster than workers drain
/// them.
struct SlowBackend {
    inner: Box<dyn ServeBackend>,
    read_delay: Duration,
}

impl ServeBackend for SlowBackend {
    fn get(&self, key: i64) -> Option<i64> {
        thread::sleep(self.read_delay);
        self.inner.get(key)
    }
    fn insert(&self, key: i64, value: i64) -> Option<i64> {
        self.inner.insert(key, value)
    }
    fn remove(&self, key: i64) -> Option<i64> {
        self.inner.remove(key)
    }
    fn cas(&self, key: i64, expected: Option<i64>, new: Option<i64>) -> bool {
        self.inner.cas(key, expected, new)
    }
    fn transact(&self, ops: &[BatchOp<i64, i64>]) -> Vec<BatchResult<i64>> {
        self.inner.transact(ops)
    }
    fn transact_guarded(
        &self,
        ops: &[BatchOp<i64, i64>],
    ) -> Result<Vec<BatchResult<i64>>, Vec<u32>> {
        self.inner.transact_guarded(ops)
    }
    fn atomic_batches(&self) -> bool {
        self.inner.atomic_batches()
    }
    fn snapshot(&self) -> Arc<dyn ServeSnapshot> {
        self.inner.snapshot()
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }
}

#[test]
fn saturated_queue_sheds_busy_without_corrupting_in_flight_replies() {
    const DEPTH: usize = 2;
    const FLOOD: i64 = 24;
    let slow = SlowBackend {
        inner: backend::by_name("sharded_map_8").expect("backend"),
        read_delay: Duration::from_millis(5),
    };
    let server = pathcopy_server::spawn(
        Box::new(slow),
        ServerConfig::builder()
            .workers(2)
            .queue_depth(DEPTH)
            .build(),
    )
    .expect("bind");

    let session = Session::connect(server.addr()).expect("connect");
    for k in 0..FLOOD {
        // Writes are fast in SlowBackend; serial so none can shed.
        match session
            .submit(&Request::Insert {
                key: k,
                value: k * 3,
            })
            .expect("submit insert")
            .wait()
            .expect("insert")
        {
            Response::Inserted(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    // Flood the connection with slow reads far past the queue depth.
    let tickets: Vec<_> = (0..FLOOD)
        .map(|k| (k, session.submit(&Request::Get { key: k }).expect("submit")))
        .collect();
    let mut served = 0usize;
    let mut shed = 0usize;
    for (k, ticket) in tickets {
        match ticket.wait() {
            // Every reply that wasn't shed must carry the value for
            // ITS key — shedding must not shift the pairing.
            Ok(Response::Got(v)) => {
                assert_eq!(v, Some(k * 3), "in-flight reply corrupted for key {k}");
                served += 1;
            }
            Err(ClientError::Busy(depth)) => {
                assert_eq!(depth, DEPTH as u64);
                shed += 1;
            }
            other => panic!("unexpected outcome for key {k}: {other:?}"),
        }
    }
    assert_eq!(served + shed, FLOOD as usize);
    assert!(
        shed >= 1,
        "flooding {FLOOD} slow reads past depth {DEPTH} must shed at least once"
    );
    assert!(
        served >= DEPTH,
        "the in-flight window itself must still be served"
    );
    assert_eq!(server.requests_shed(), shed as u64);

    // The connection survives shedding: a fresh round trip still works.
    match session
        .submit(&Request::Get { key: 0 })
        .expect("submit after shed")
        .wait()
        .expect("serve after shed")
    {
        Response::Got(v) => assert_eq!(v, Some(0)),
        other => panic!("unexpected {other:?}"),
    }
    drop(session);
    server.shutdown();
}

#[test]
fn idle_connections_are_not_bounded_by_the_worker_count() {
    const WORKERS: usize = 2;
    const CONNS: usize = WORKERS * 4;
    let server = pathcopy_server::spawn(
        backend::by_name("sharded_map_8").expect("backend"),
        ServerConfig::builder().workers(WORKERS).build(),
    )
    .expect("bind");

    // Hold 4x workers connections open simultaneously — under the old
    // thread-per-connection pool, connection N > workers would block
    // at accept and this test would deadlock.
    let mut clients: Vec<Client> = (0..CONNS)
        .map(|_| Client::connect(server.addr()).expect("connect"))
        .collect();
    for (i, client) in clients.iter_mut().enumerate() {
        assert_eq!(
            client.insert(i as i64, i as i64 * 10).expect("insert"),
            None
        );
    }
    assert!(
        server.open_connections() >= CONNS as u64,
        "expected >= {CONNS} multiplexed connections, gauge says {}",
        server.open_connections()
    );
    // Every connection is still live and served while all others stay
    // open and idle.
    for (i, client) in clients.iter_mut().enumerate() {
        assert_eq!(client.get(i as i64).expect("get"), Some(i as i64 * 10));
        let (entries, _) = client.range(None, .., 0).expect("range");
        assert_eq!(entries.len(), CONNS);
    }
    drop(clients);
    server.shutdown();
}
