//! End-to-end observability contract: the `Gauges` frame a client
//! scrapes over the wire must equal the in-process
//! [`ServerHandle::gauges`] snapshot field-for-field (no drift between
//! the two read paths), and a `Metrics` scrape after real traffic must
//! return per-stage, per-tag histograms.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pathcopy_concurrent::BatchOp;
use pathcopy_metrics::Stage;
use pathcopy_server::{
    backend, render_text, spawn, Client, MetricsSource, ServerConfig, ServerGauges, ServerHandle,
    StageSummary,
};

fn server_with(metrics: bool) -> ServerHandle {
    spawn(
        backend::by_name("sharded_map_8").expect("backend"),
        ServerConfig::builder().metrics(metrics).build(),
    )
    .expect("bind ephemeral port")
}

/// Runs a fixed, known op sequence that touches several request tags.
fn known_op_sequence(c: &mut Client) {
    for k in 0..16 {
        c.insert(k, k * 10).unwrap();
    }
    for k in 0..16 {
        assert_eq!(c.get(k).unwrap(), Some(k * 10));
    }
    c.batch(&[
        BatchOp::Insert(100, 1),
        BatchOp::Get(0),
        BatchOp::Remove(15),
    ])
    .unwrap();
    let snap = c.snapshot().unwrap();
    c.range(Some(snap), .., 0).unwrap();
    c.release(snap).unwrap();
    c.publish().unwrap();
}

#[test]
fn wire_gauges_equal_in_process_gauges_field_for_field() {
    let server = server_with(true);
    let mut c = Client::connect(server.addr()).unwrap();
    known_op_sequence(&mut c);

    // The wire scrape snapshots gauges while handling the request, so
    // it cannot count its own reply bytes: once the client has read the
    // reply, the in-process view must be exactly the scraped view plus
    // that one reply frame. The loop thread bumps the sent counter just
    // after writing, so poll briefly rather than racing the scheduler.
    let wire: ServerGauges = c.gauges().unwrap();
    let self_reply = {
        use pathcopy_server::proto::response_frame;
        // The client sent request id 1..; ids are fixed-width so any id
        // yields the frame length the server actually wrote.
        response_frame(&pathcopy_server::Response::Gauges(wire), 3, 0).len() as u64
    };
    let expected_sent = wire.wire_sent + self_reply;
    let deadline = Instant::now() + Duration::from_secs(5);
    let local = loop {
        let local = server.gauges();
        if local.wire_sent == expected_sent || Instant::now() > deadline {
            break local;
        }
        std::thread::sleep(Duration::from_millis(5));
    };

    assert_eq!(local.wire_sent, expected_sent, "wire_sent + own reply");
    assert_eq!(local.requests, wire.requests, "requests");
    assert_eq!(local.requests_shed, wire.requests_shed, "requests_shed");
    assert_eq!(local.open_conns, wire.open_conns, "open_conns");
    assert_eq!(local.wire_received, wire.wire_received, "wire_received");
    assert_eq!(local.subscribers, wire.subscribers, "subscribers");
    assert_eq!(local.pushes, wire.pushes, "pushes");
    assert_eq!(local.push_demotions, wire.push_demotions, "push_demotions");
    assert_eq!(local.feed_head, wire.feed_head, "feed_head");

    // Sanity: the sequence actually moved the counters.
    assert!(wire.requests >= 38, "requests = {}", wire.requests);
    assert_eq!(wire.open_conns, 1);
    assert_eq!(wire.feed_head, 1);
    server.shutdown();
}

#[test]
fn metrics_scrape_returns_per_stage_per_tag_histograms() {
    let server = server_with(true);
    let mut c = Client::connect(server.addr()).unwrap();
    known_op_sequence(&mut c);

    // Everything answered so far has been flushed (we read each reply),
    // so all three stages must have rows for the tags the sequence
    // exercised.
    let rows = c.metrics().unwrap();
    assert!(!rows.is_empty());
    assert!(
        rows.windows(2)
            .all(|w| (w[0].stage, w[0].tag) <= (w[1].stage, w[1].tag)),
        "rows ordered by (stage, tag): {rows:?}"
    );

    let has = |stage: Stage, tag: u8| {
        rows.iter()
            .any(|r| r.stage == stage as u8 && r.tag == tag && r.count > 0)
    };
    for stage in [Stage::QueueWait, Stage::Execute, Stage::WriteFlush] {
        assert!(has(stage, 1), "{stage:?} for Get: {rows:?}");
        assert!(has(stage, 2), "{stage:?} for Insert: {rows:?}");
        assert!(has(stage, 5), "{stage:?} for Batch: {rows:?}");
        assert!(has(stage, 11), "{stage:?} for Publish: {rows:?}");
    }
    // Get ran 16 times through queue-wait and execute.
    let get_exec = rows
        .iter()
        .find(|r| r.stage == Stage::Execute as u8 && r.tag == 1)
        .unwrap();
    assert_eq!(get_exec.count, 16);
    assert!(get_exec.p50 <= get_exec.p99 && get_exec.p99 <= get_exec.max);

    // The text exposition renders every stage the scrape returned.
    let text = render_text(&rows);
    assert!(text.contains("# TYPE pathcopy_queue_wait_ns summary"));
    assert!(text.contains("pathcopy_execute_ns{tag=\"Get\",quantile=\"0.99\"}"));
    assert!(text.contains("pathcopy_write_flush_ns_count{tag=\"Batch\"}"));
    server.shutdown();
}

#[test]
fn disabled_metrics_scrape_is_empty_and_serving_still_works() {
    let server = server_with(false);
    let mut c = Client::connect(server.addr()).unwrap();
    known_op_sequence(&mut c);
    assert_eq!(c.metrics().unwrap(), vec![]);
    assert_eq!(c.get(0).unwrap(), Some(0));
    server.shutdown();
}

#[test]
fn registered_sources_show_up_in_wire_scrapes() {
    struct Fixed;
    impl MetricsSource for Fixed {
        fn collect(&self) -> Vec<StageSummary> {
            vec![StageSummary {
                stage: Stage::AppendFsync as u8,
                tag: 0,
                count: 9,
                sum: 900,
                p50: 100,
                p90: 100,
                p99: 100,
                p999: 100,
                max: 100,
                exemplar_id: 0,
                exemplar_trace: 0,
            }]
        }
    }
    let server = server_with(false); // even with loop tracing off
    server.register_metrics_source(Arc::new(Fixed));
    let mut c = Client::connect(server.addr()).unwrap();
    let rows = c.metrics().unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].stage, Stage::AppendFsync as u8);
    assert_eq!(rows[0].count, 9);
    server.shutdown();
}
