//! Keeps `docs/WIRE_PROTOCOL.md` honest: every tag number, constant,
//! and error sub-tag the document states is re-derived here from the
//! actual encoder, so the prose cannot silently drift from the code.
//!
//! The checks are deliberately structural (encode a sample message,
//! read the tag byte out of the frame, require the doc's table to pair
//! that number with that variant name) rather than golden-text — the
//! doc can be reworded freely as long as the facts stay right.

use std::ops::Bound;

use pathcopy_concurrent::{BatchOp, BatchResult};
use pathcopy_server::proto::{
    FeedInfo, Request, Response, ServerGauges, StageSummary, WireError, WireStats, MAX_FRAME_LEN,
    PROTO_TRACE_FLAG, PROTO_V2, PROTO_VERSION, PUSH_ID_BASE, SYNC_PAGE_MAX_ENTRIES,
};
use pathcopy_server::{SpanRecord, TraceContext};

fn doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/WIRE_PROTOCOL.md");
    std::fs::read_to_string(path).expect("docs/WIRE_PROTOCOL.md exists")
}

/// `65536` → `"65 536"`, the doc's thousands style.
fn spaced(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i) % 3 == 0 {
            out.push(' ');
        }
        out.push(c);
    }
    out
}

/// The tag byte of an encoded v3 body
/// (`[version][request_id: 8 bytes][tag]...`).
fn tag_of(body: &[u8]) -> u8 {
    assert_eq!(body[0], PROTO_VERSION, "version byte leads every body");
    body[9]
}

#[test]
fn constants_quoted_in_the_doc_match_the_code() {
    let doc = doc();
    assert!(
        doc.contains(&format!("`PROTO_VERSION = {PROTO_VERSION}`")),
        "doc must quote the current protocol version"
    );
    assert!(
        doc.contains(&format!("`PROTO_V2 = {PROTO_V2}`")),
        "doc must quote the accepted legacy version"
    );
    assert_eq!(MAX_FRAME_LEN, 16 << 20, "doc states the cap as 16 MiB");
    assert!(
        doc.contains("`MAX_FRAME_LEN = 16 MiB`"),
        "doc must quote the frame cap"
    );
    assert!(
        doc.contains(&format!(
            "`SYNC_PAGE_MAX_ENTRIES = {}`",
            spaced(SYNC_PAGE_MAX_ENTRIES as u64)
        )),
        "doc must quote the sync page cap"
    );
}

#[test]
fn request_tag_table_matches_the_encoder() {
    let doc = doc();
    let samples: Vec<(&str, Request)> = vec![
        ("Get", Request::Get { key: 0 }),
        ("Insert", Request::Insert { key: 0, value: 0 }),
        ("Remove", Request::Remove { key: 0 }),
        (
            "Cas",
            Request::Cas {
                key: 0,
                expected: None,
                new: None,
            },
        ),
        (
            "Batch",
            Request::Batch {
                ops: vec![],
                guarded: false,
            },
        ),
        ("Snapshot", Request::Snapshot),
        (
            "Range",
            Request::Range {
                snapshot: None,
                lo: Bound::Unbounded,
                hi: Bound::Unbounded,
                limit: 0,
            },
        ),
        ("Diff", Request::Diff { from: 0, to: None }),
        ("Release", Request::Release { snapshot: 0 }),
        ("Stats", Request::Stats),
        ("Publish", Request::Publish),
        ("Subscribe", Request::Subscribe),
        ("PullDiff", Request::PullDiff { from: 0 }),
        (
            "FullSync",
            Request::FullSync {
                epoch: None,
                after: None,
                limit: 0,
            },
        ),
        ("SubscribePush", Request::SubscribePush { from: 0 }),
        (
            "GetAt",
            Request::GetAt {
                key: 0,
                min_epoch: 0,
                wait_ms: 0,
            },
        ),
        (
            "WriteAt",
            Request::WriteAt {
                op: BatchOp::Get(0),
            },
        ),
        ("Gauges", Request::Gauges),
        ("Metrics", Request::Metrics),
        ("ResetMetrics", Request::ResetMetrics),
        ("TraceDump", Request::TraceDump),
    ];
    for (name, req) in samples {
        let mut body = Vec::new();
        req.encode(&mut body);
        let row = format!("| {} | `{name}` |", tag_of(&body));
        assert!(doc.contains(&row), "request table must contain `{row}`");
    }
}

#[test]
fn response_tag_table_matches_the_encoder() {
    let doc = doc();
    let samples: Vec<(&str, Response)> = vec![
        ("Got", Response::Got(None)),
        ("Inserted", Response::Inserted(None)),
        ("Removed", Response::Removed(None)),
        ("CasApplied", Response::CasApplied(false)),
        ("Batch", Response::Batch(vec![])),
        ("SnapshotTaken", Response::SnapshotTaken(0)),
        (
            "Entries",
            Response::Entries {
                entries: vec![],
                complete: true,
            },
        ),
        ("Diff", Response::Diff(vec![])),
        ("Released", Response::Released(false)),
        ("Stats", Response::Stats(WireStats::default())),
        ("Error", Response::Error(WireError::Malformed)),
        ("BatchAborted", Response::BatchAborted(vec![])),
        ("Published", Response::Published(0)),
        ("FeedInfo", Response::FeedInfo(FeedInfo::default())),
        (
            "EpochDiff",
            Response::EpochDiff {
                to: 0,
                entries: vec![],
            },
        ),
        (
            "SyncPage",
            Response::SyncPage {
                epoch: 0,
                entries: vec![],
                done: true,
            },
        ),
        ("SubscribeAck", Response::SubscribeAck(FeedInfo::default())),
        (
            "Push",
            Response::Push {
                from: 0,
                epoch: 0,
                entries: vec![],
            },
        ),
        (
            "GotAt",
            Response::GotAt {
                value: None,
                epoch: 0,
            },
        ),
        (
            "WroteAt",
            Response::WroteAt {
                result: BatchResult::Got(None),
                watermark: 0,
            },
        ),
        ("Gauges", Response::Gauges(ServerGauges::default())),
        ("Metrics", Response::Metrics(vec![])),
        ("MetricsReset", Response::MetricsReset),
        (
            "TraceDump",
            Response::TraceDump {
                node: String::new(),
                spans: vec![],
            },
        ),
    ];
    for (name, resp) in samples {
        let mut body = Vec::new();
        resp.encode(&mut body);
        let row = format!("| {} | `{name}` |", tag_of(&body));
        assert!(doc.contains(&row), "response table must contain `{row}`");
    }
}

#[test]
fn error_subtag_table_matches_the_encoder() {
    let doc = doc();
    let samples: Vec<(&str, WireError)> = vec![
        ("UnknownSnapshot", WireError::UnknownSnapshot(0)),
        ("SnapshotMismatch", WireError::SnapshotMismatch),
        ("Malformed", WireError::Malformed),
        ("TooLarge", WireError::TooLarge),
        ("SnapshotLimit", WireError::SnapshotLimit(0)),
        ("EpochRetired", WireError::EpochRetired(0)),
        ("Busy", WireError::Busy(0)),
        ("Stale", WireError::Stale(0)),
    ];
    for (name, err) in samples {
        let mut body = Vec::new();
        Response::Error(err).encode(&mut body);
        // [version][request_id: 8 bytes][tag 11][sub-tag]...
        let row = format!("| {} | `{name}` |", body[10]);
        assert!(doc.contains(&row), "error table must contain `{row}`");
    }
}

#[test]
fn push_id_namespace_matches_the_doc() {
    let doc = doc();
    assert_eq!(PUSH_ID_BASE, 1u64 << 63, "doc states the reserved bit");
    assert!(
        doc.contains("`PUSH_ID_BASE = 1 << 63`"),
        "doc must quote the reserved push-id base"
    );
    assert!(
        doc.contains("`request_id = PUSH_ID_BASE | E`"),
        "doc must state how push frames are stamped"
    );
    // A push frame really carries an id in the reserved namespace, and
    // the gauges the doc lists really are nine u64s (9 * 8 bytes after
    // the envelope's version + id + tag).
    let mut body = Vec::new();
    Response::Push {
        from: 1,
        epoch: 2,
        entries: vec![],
    }
    .encode_with_id(PUSH_ID_BASE | 2, &mut body);
    let id = u64::from_le_bytes(body[1..9].try_into().unwrap());
    assert_ne!(id & PUSH_ID_BASE, 0, "push ids live above the top bit");
    let mut gauges = Vec::new();
    Response::Gauges(ServerGauges::default()).encode(&mut gauges);
    assert_eq!(gauges.len(), 1 + 8 + 1 + 9 * 8, "nine u64 gauges");
}

#[test]
fn metrics_row_layout_matches_the_doc() {
    let doc = doc();
    assert!(
        doc.contains(
            "nine `u64`s: count, sum, p50, p90, p99, p999, max, exemplar_id, exemplar_trace"
        ),
        "doc must state the StageSummary field layout"
    );
    assert!(
        doc.contains("skip"),
        "doc must tell scrapers to skip unknown stage bytes"
    );
    // One row really costs 2 tag bytes + nine u64s after the envelope
    // and the vector's length prefix.
    let mut body = Vec::new();
    Response::Metrics(vec![StageSummary::default()]).encode(&mut body);
    assert_eq!(body.len(), 1 + 8 + 1 + 4 + (2 + 9 * 8), "one 74-byte row");
}

#[test]
fn traced_envelope_matches_the_doc() {
    let doc = doc();
    assert!(
        doc.contains("`PROTO_TRACE_FLAG = 0x80`"),
        "doc must quote the trace flag"
    );
    assert_eq!(PROTO_TRACE_FLAG, 0x80);
    assert!(
        doc.contains("[version: u8 = 3|0x80] [request_id: u64 LE] [trace: 17 bytes]"),
        "doc must show the traced body layout"
    );
    assert_eq!(TraceContext::WIRE_BYTES, 17, "doc states 17 trace bytes");
    // A traced body really is the plain v3 body with 17 bytes spliced
    // in after the request id, flag set on the version byte.
    let ctx = TraceContext::sampled(7);
    let mut traced = Vec::new();
    let mut plain = Vec::new();
    let req = Request::Publish;
    req.encode_traced(5, &ctx, &mut traced);
    req.encode_with_id(5, &mut plain);
    assert_eq!(traced[0], PROTO_VERSION | PROTO_TRACE_FLAG);
    assert_eq!(traced.len(), plain.len() + 17);
    assert_eq!(traced[1..9], plain[1..9], "same request id");
    assert_eq!(traced[9 + 17..], plain[9..], "same tag + payload");
    // And the decoder strips the flag, reporting base version 3.
    let framed = Request::decode_enveloped(&traced).expect("traced frame decodes");
    assert_eq!(framed.version, PROTO_VERSION);
    assert_eq!(framed.trace, Some(ctx));
}

#[test]
fn trace_dump_row_layout_matches_the_doc() {
    let doc = doc();
    assert!(
        doc.contains("each span is seven `u64`s"),
        "doc must state the SpanRecord word count"
    );
    // One span costs the node-name vec (4 bytes, empty), the span
    // count, and seven u64s.
    let mut body = Vec::new();
    Response::TraceDump {
        node: String::new(),
        spans: vec![SpanRecord::default()],
    }
    .encode(&mut body);
    assert_eq!(body.len(), 1 + 8 + 1 + 4 + 4 + 7 * 8, "one 56-byte span");
}

#[test]
fn legacy_v2_envelope_matches_the_doc() {
    let doc = doc();
    // The doc's v2 diagram: no request_id field between version and tag.
    assert!(
        doc.contains("`[version: u8 = 2] [tag: u8] [payload ...]`"),
        "doc must show the legacy v2 body layout"
    );
    // encode_v2 really emits that layout with the same tag numbers as
    // v3, and it round-trips through the v3-aware decoder with id 0.
    let mut v2 = Vec::new();
    let mut v3 = Vec::new();
    let req = Request::Stats;
    req.encode_v2(&mut v2);
    req.encode(&mut v3);
    assert_eq!(v2[0], PROTO_V2);
    assert_eq!(v2[1], v3[9], "v2 and v3 share tag numbers");
    let framed = Request::decode_enveloped(&v2).expect("v2 decodes");
    assert_eq!(framed.version, PROTO_V2);
    assert_eq!(framed.request_id, 0, "v2 frames carry implicit id 0");
    assert_eq!(framed.msg, req);
}

#[test]
fn log_record_section_matches_the_durable_envelope() {
    let doc = doc();
    // The envelope the doc describes: [body_len u32][crc32 u32][body].
    assert!(doc.contains("[body_len: u32 LE] [crc32: u32 LE]"));
    assert!(doc.contains("0xEDB88320"), "doc names the CRC polynomial");
}
