//! Object-safe serving adapters over the engine's trait family.
//!
//! The server holds its backend as `Box<dyn ServeBackend>` so one binary
//! can serve any engine. The engine-side traits are not enough on their
//! own: [`ConcurrentMap`] is object safe
//! but [`Snapshottable`] and
//! [`MapSnapshot`] keep snapshots as
//! associated types with lazy generic iterators, which `dyn` cannot
//! carry. [`ServeBackend`]/[`ServeSnapshot`] flatten exactly the surface
//! the wire protocol needs — point ops, batches, pinned snapshots,
//! bounded range scans, diffs, stats — and two adapters implement it:
//!
//! * [`SnapshotServe`] wraps **any** map implementing the PR-3 trait
//!   family (`ConcurrentMap + Snapshottable`). Batches fall back to
//!   per-op application: each op is individually linearizable but the
//!   batch as a whole is not atomic ([`ServeBackend::atomic_batches`]
//!   reports `false`).
//! * [`ShardedServe`] wraps [`ShardedTreapMap`] natively, mapping
//!   [`Request::Batch`](crate::proto::Request::Batch) onto
//!   [`ShardedTreapMap::transact`] — the cross-shard two-phase commit —
//!   so batches are all-or-nothing even over the network.
//!
//! [`backends`] enumerates the servable registry; its names are asserted
//! (in tests) to match
//! [`pathcopy_concurrent::registry::map_backends`], the engine-side
//! enumeration of the same list.

use std::any::Any;
use std::ops::Bound;
use std::sync::Arc;

use pathcopy_concurrent::{BatchOp, BatchResult, LockedMap, ShardedTreapMap, TreapMap};
use pathcopy_core::api::{ConcurrentMap, MapSnapshot, Snapshottable};
use pathcopy_core::{DiffEntry, StatsSnapshot};

/// An immutable, coherent point-in-time view a server can pin in its
/// version table and scan or diff on demand.
pub trait ServeSnapshot: Send + Sync + 'static {
    /// Looks up `key` at snapshot time.
    fn get(&self, key: i64) -> Option<i64>;

    /// Exact number of entries at snapshot time.
    fn len(&self) -> usize;

    /// `true` if the snapshot holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ordered scan of the keys between the bounds, stopping after
    /// `limit` entries (`0` = unlimited). The second component is `false`
    /// when the scan stopped early with entries remaining.
    fn range(&self, lo: Bound<i64>, hi: Bound<i64>, limit: usize) -> (Vec<(i64, i64)>, bool);

    /// Difference between this (older) snapshot and `newer`, pruning
    /// pointer-shared subtrees. `None` if `newer` comes from an
    /// incompatible backend.
    fn diff(&self, newer: &dyn ServeSnapshot) -> Option<Vec<DiffEntry<i64, i64>>>;

    /// Downcast support for [`diff`](Self::diff).
    fn as_any(&self) -> &dyn Any;
}

/// The surface a backend exposes to the TCP server: object safe, `i64`
/// keys and values (the wire protocol's domain).
pub trait ServeBackend: Send + Sync + 'static {
    /// Looks up `key`.
    fn get(&self, key: i64) -> Option<i64>;

    /// Inserts `key -> value`, returning the previous value if any.
    fn insert(&self, key: i64, value: i64) -> Option<i64>;

    /// Removes `key`, returning its value if present.
    fn remove(&self, key: i64) -> Option<i64>;

    /// Atomic compare-and-set: if the value at `key` equals `expected`,
    /// store `new` (`None` removes); returns whether it matched.
    fn cas(&self, key: i64, expected: Option<i64>, new: Option<i64>) -> bool;

    /// Applies a batch of operations, returning one result per op in
    /// batch order. Atomic if [`atomic_batches`](Self::atomic_batches).
    fn transact(&self, ops: &[BatchOp<i64, i64>]) -> Vec<BatchResult<i64>>;

    /// Guarded (Sinfonia-style) form of [`transact`](Self::transact): if
    /// any [`BatchOp::Cas`] guard fails, the whole batch aborts with
    /// zero writes and `Err` carries the failed guard indices (into the
    /// batch, ascending). On backends with
    /// [`atomic_batches`](Self::atomic_batches) the abort is
    /// linearizable; on per-op backends it is best-effort (guards are
    /// checked before any write, but a concurrent writer can interleave).
    fn transact_guarded(
        &self,
        ops: &[BatchOp<i64, i64>],
    ) -> Result<Vec<BatchResult<i64>>, Vec<u32>>;

    /// `true` if [`transact`](Self::transact) applies the whole batch as
    /// one linearizable operation (the sharded map's two-phase commit);
    /// `false` if it falls back to per-op application.
    fn atomic_batches(&self) -> bool;

    /// Takes a coherent snapshot.
    fn snapshot(&self) -> Arc<dyn ServeSnapshot>;

    /// Number of entries (weakly consistent on sharded backends).
    fn len(&self) -> usize;

    /// `true` if the map has no entries (same caveat as [`len`](Self::len)).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The backend's accumulated operation statistics.
    fn stats(&self) -> StatsSnapshot;
}

/// Wraps any [`MapSnapshot`] as a [`ServeSnapshot`].
struct SnapWrap<S>(S);

impl<S> ServeSnapshot for SnapWrap<S>
where
    S: MapSnapshot<i64, i64> + 'static,
{
    fn get(&self, key: i64) -> Option<i64> {
        self.0.get(&key).copied()
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn range(&self, lo: Bound<i64>, hi: Bound<i64>, limit: usize) -> (Vec<(i64, i64)>, bool) {
        let mut iter = self.0.range_by(lo.as_ref(), hi.as_ref());
        if limit == 0 {
            return (iter.map(|(k, v)| (*k, *v)).collect(), true);
        }
        let mut out = Vec::with_capacity(limit.min(1024));
        for (k, v) in iter.by_ref() {
            if out.len() == limit {
                return (out, false);
            }
            out.push((*k, *v));
        }
        (out, true)
    }

    fn diff(&self, newer: &dyn ServeSnapshot) -> Option<Vec<DiffEntry<i64, i64>>> {
        let newer = newer.as_any().downcast_ref::<SnapWrap<S>>()?;
        Some(self.0.diff(&newer.0))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Serves any map of the PR-3 trait family. Point operations delegate to
/// [`ConcurrentMap`]; batches apply per op (each op linearizable, the
/// batch **not** atomic — see [`ShardedServe`] for atomic batches).
pub struct SnapshotServe<M> {
    map: M,
}

impl<M> SnapshotServe<M>
where
    M: ConcurrentMap<i64, i64> + Snapshottable + 'static,
    M::Snapshot: MapSnapshot<i64, i64> + 'static,
{
    /// Wraps `map` for serving.
    pub fn new(map: M) -> Self {
        SnapshotServe { map }
    }
}

impl<M> ServeBackend for SnapshotServe<M>
where
    M: ConcurrentMap<i64, i64> + Snapshottable + 'static,
    M::Snapshot: MapSnapshot<i64, i64> + 'static,
{
    fn get(&self, key: i64) -> Option<i64> {
        self.map.get(&key)
    }

    fn insert(&self, key: i64, value: i64) -> Option<i64> {
        self.map.insert(key, value)
    }

    fn remove(&self, key: i64) -> Option<i64> {
        self.map.remove(&key)
    }

    fn cas(&self, key: i64, expected: Option<i64>, new: Option<i64>) -> bool {
        // `compute` applies its closure atomically; the returned previous
        // value tells us which branch ran.
        let prev = self.map.compute(&key, &|cur| {
            if cur.copied() == expected {
                new
            } else {
                cur.copied()
            }
        });
        prev == expected
    }

    fn transact(&self, ops: &[BatchOp<i64, i64>]) -> Vec<BatchResult<i64>> {
        ops.iter()
            .map(|op| match op {
                BatchOp::Get(k) => BatchResult::Got(self.get(*k)),
                BatchOp::Insert(k, v) => BatchResult::Inserted(self.insert(*k, *v)),
                BatchOp::Remove(k) => BatchResult::Removed(self.remove(*k)),
                BatchOp::Cas { key, expected, new } => {
                    BatchResult::Cas(self.cas(*key, *expected, *new))
                }
            })
            .collect()
    }

    /// Best-effort on this adapter (batches are per-op here): the batch
    /// is simulated against an overlay first — guards see earlier batch
    /// writes, matching `transact` semantics — and only applied if every
    /// guard passes, so a failed guard aborts with zero writes. A
    /// concurrent writer can still interleave between the check and the
    /// apply; only [`ShardedServe`] makes the abort linearizable.
    fn transact_guarded(
        &self,
        ops: &[BatchOp<i64, i64>],
    ) -> Result<Vec<BatchResult<i64>>, Vec<u32>> {
        let mut overlay: std::collections::HashMap<i64, Option<i64>> = Default::default();
        let mut failed = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                BatchOp::Get(_) => {}
                BatchOp::Insert(k, v) => {
                    overlay.insert(*k, Some(*v));
                }
                BatchOp::Remove(k) => {
                    overlay.insert(*k, None);
                }
                BatchOp::Cas { key, expected, new } => {
                    let current = match overlay.get(key) {
                        Some(&v) => v,
                        None => self.get(*key),
                    };
                    if current == *expected {
                        overlay.insert(*key, *new);
                    } else {
                        failed.push(i as u32);
                    }
                }
            }
        }
        if failed.is_empty() {
            Ok(self.transact(ops))
        } else {
            Err(failed)
        }
    }

    fn atomic_batches(&self) -> bool {
        false
    }

    fn snapshot(&self) -> Arc<dyn ServeSnapshot> {
        Arc::new(SnapWrap(self.map.snapshot()))
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn stats(&self) -> StatsSnapshot {
        self.map.stats_snapshot()
    }
}

/// Serves a [`ShardedTreapMap`] natively: batches go through
/// [`ShardedTreapMap::transact`] (single-shard batches stay on the
/// lock-free CAS path, cross-shard batches use the freeze/install
/// two-phase commit), so a batch is one linearizable operation even when
/// it spans shards.
pub struct ShardedServe {
    map: ShardedTreapMap<i64, i64>,
}

impl ShardedServe {
    /// A fresh sharded map with `shards` partitions.
    pub fn with_shards(shards: usize) -> Self {
        ShardedServe {
            map: ShardedTreapMap::with_shards(shards),
        }
    }

    /// Wraps an existing sharded map for serving.
    pub fn new(map: ShardedTreapMap<i64, i64>) -> Self {
        ShardedServe { map }
    }
}

impl ServeBackend for ShardedServe {
    fn get(&self, key: i64) -> Option<i64> {
        self.map.get(&key)
    }

    fn insert(&self, key: i64, value: i64) -> Option<i64> {
        self.map.insert(key, value)
    }

    fn remove(&self, key: i64) -> Option<i64> {
        self.map.remove(&key)
    }

    fn cas(&self, key: i64, expected: Option<i64>, new: Option<i64>) -> bool {
        match self.map.transact(&[BatchOp::Cas { key, expected, new }])[0] {
            BatchResult::Cas(ok) => ok,
            ref other => unreachable!("Cas op answered with {other:?}"),
        }
    }

    fn transact(&self, ops: &[BatchOp<i64, i64>]) -> Vec<BatchResult<i64>> {
        self.map.transact(ops)
    }

    fn transact_guarded(
        &self,
        ops: &[BatchOp<i64, i64>],
    ) -> Result<Vec<BatchResult<i64>>, Vec<u32>> {
        self.map
            .transact_guarded(ops)
            .map_err(|abort| abort.failed.into_iter().map(|i| i as u32).collect())
    }

    fn atomic_batches(&self) -> bool {
        true
    }

    fn snapshot(&self) -> Arc<dyn ServeSnapshot> {
        Arc::new(SnapWrap(self.map.snapshot_all()))
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn stats(&self) -> StatsSnapshot {
        self.map.stats_snapshot()
    }
}

/// A shared handle is itself servable: the server and another owner (a
/// replication engine applying diffs, an in-process inspector) can hold
/// the **same** backend. This is what lets a replica serve read traffic
/// from the store its sync loop is catching up.
impl ServeBackend for Arc<dyn ServeBackend> {
    fn get(&self, key: i64) -> Option<i64> {
        (**self).get(key)
    }

    fn insert(&self, key: i64, value: i64) -> Option<i64> {
        (**self).insert(key, value)
    }

    fn remove(&self, key: i64) -> Option<i64> {
        (**self).remove(key)
    }

    fn cas(&self, key: i64, expected: Option<i64>, new: Option<i64>) -> bool {
        (**self).cas(key, expected, new)
    }

    fn transact(&self, ops: &[BatchOp<i64, i64>]) -> Vec<BatchResult<i64>> {
        (**self).transact(ops)
    }

    fn transact_guarded(
        &self,
        ops: &[BatchOp<i64, i64>],
    ) -> Result<Vec<BatchResult<i64>>, Vec<u32>> {
        (**self).transact_guarded(ops)
    }

    fn atomic_batches(&self) -> bool {
        (**self).atomic_batches()
    }

    fn snapshot(&self) -> Arc<dyn ServeSnapshot> {
        (**self).snapshot()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn stats(&self) -> StatsSnapshot {
        (**self).stats()
    }
}

/// A named constructor for a servable backend.
pub struct ServedBackend {
    /// Stable name, matching the engine registry
    /// ([`pathcopy_concurrent::registry::map_backends`]) and used by
    /// `loadgen --backend`.
    pub name: &'static str,
    /// Builds a fresh, empty instance.
    pub make: fn() -> Box<dyn ServeBackend>,
}

/// Every servable backend — the serving-layer view of the engine's map
/// registry (same names, same order).
pub fn backends() -> Vec<ServedBackend> {
    vec![
        ServedBackend {
            name: "treap_map",
            make: || Box::new(SnapshotServe::new(TreapMap::new())),
        },
        ServedBackend {
            name: "sharded_map_1",
            make: || Box::new(ShardedServe::with_shards(1)),
        },
        ServedBackend {
            name: "sharded_map_8",
            make: || Box::new(ShardedServe::with_shards(8)),
        },
        ServedBackend {
            name: "locked_map",
            make: || Box::new(SnapshotServe::new(LockedMap::new())),
        },
    ]
}

/// Builds the backend registered under `name`, if any.
pub fn by_name(name: &str) -> Option<Box<dyn ServeBackend>> {
    backends()
        .into_iter()
        .find(|b| b.name == name)
        .map(|b| (b.make)())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_registry_matches_engine_registry() {
        let engine: Vec<&str> = pathcopy_concurrent::registry::map_backends()
            .iter()
            .map(|b| b.name)
            .collect();
        let serving: Vec<&str> = backends().iter().map(|b| b.name).collect();
        assert_eq!(
            serving, engine,
            "servable backends drifted from pathcopy_concurrent::registry::map_backends"
        );
    }

    #[test]
    fn every_backend_serves_point_ops_and_snapshots() {
        for entry in backends() {
            let b = (entry.make)();
            let name = entry.name;
            assert_eq!(b.insert(1, 10), None, "[{name}]");
            assert_eq!(b.insert(2, 20), None, "[{name}]");
            assert_eq!(b.get(1), Some(10), "[{name}]");
            assert!(b.cas(1, Some(10), Some(11)), "[{name}]");
            assert!(!b.cas(1, Some(10), Some(12)), "[{name}] stale cas");
            assert_eq!(b.get(1), Some(11), "[{name}]");
            assert!(b.cas(3, None, Some(30)), "[{name}] absent-guard cas");
            assert!(b.cas(3, Some(30), None), "[{name}] cas-remove");
            assert_eq!(b.get(3), None, "[{name}]");

            let snap = b.snapshot();
            assert_eq!(snap.len(), 2, "[{name}]");
            b.remove(1);
            assert_eq!(snap.get(1), Some(11), "[{name}] snapshot immutable");
            let (entries, complete) = snap.range(Bound::Unbounded, Bound::Unbounded, 0);
            assert_eq!(entries, vec![(1, 11), (2, 20)], "[{name}]");
            assert!(complete, "[{name}]");
            let (first, complete) = snap.range(Bound::Unbounded, Bound::Unbounded, 1);
            assert_eq!(first, vec![(1, 11)], "[{name}]");
            assert!(!complete, "[{name}] limit must report truncation");

            let newer = b.snapshot();
            let diff = snap.diff(newer.as_ref()).expect("same backend diffs");
            assert_eq!(
                diff,
                vec![DiffEntry::Removed(1, 11)],
                "[{name}] diff is the removal"
            );
        }
    }

    #[test]
    fn batch_results_match_transact_semantics() {
        for entry in backends() {
            let b = (entry.make)();
            let name = entry.name;
            let r = b.transact(&[
                BatchOp::Insert(1, 10),
                BatchOp::Get(1),
                BatchOp::Cas {
                    key: 1,
                    expected: Some(10),
                    new: Some(11),
                },
                BatchOp::Remove(2),
            ]);
            assert_eq!(
                r,
                vec![
                    BatchResult::Inserted(None),
                    BatchResult::Got(Some(10)),
                    BatchResult::Cas(true),
                    BatchResult::Removed(None),
                ],
                "[{name}]"
            );
            assert_eq!(b.get(1), Some(11), "[{name}]");
        }
    }

    #[test]
    fn guarded_batches_abort_with_zero_writes_on_every_backend() {
        for entry in backends() {
            let b = (entry.make)();
            let name = entry.name;
            b.insert(1, 10);
            let failed = b
                .transact_guarded(&[
                    BatchOp::Insert(2, 20),
                    BatchOp::Cas {
                        key: 1,
                        expected: Some(99), // stale guard
                        new: Some(100),
                    },
                ])
                .unwrap_err();
            assert_eq!(failed, vec![1], "[{name}]");
            assert_eq!(b.get(1), Some(10), "[{name}]");
            assert_eq!(b.get(2), None, "[{name}] aborted batch leaked a write");

            // Passing guards commit, and a guard sees earlier batch writes.
            let r = b
                .transact_guarded(&[
                    BatchOp::Insert(2, 20),
                    BatchOp::Cas {
                        key: 2,
                        expected: Some(20),
                        new: Some(21),
                    },
                ])
                .unwrap_or_else(|e| panic!("[{name}] guards must pass: {e:?}"));
            assert_eq!(r[1], BatchResult::Cas(true), "[{name}]");
            assert_eq!(b.get(2), Some(21), "[{name}]");
        }
    }

    #[test]
    fn shared_backend_handle_serves_and_aliases() {
        let inner: Arc<dyn ServeBackend> = Arc::new(ShardedServe::with_shards(4));
        let alias = Arc::clone(&inner);
        inner.insert(1, 10);
        assert_eq!(alias.get(1), Some(10), "both handles see the same map");
        let snap = ServeBackend::snapshot(&alias);
        assert_eq!(snap.len(), 1);
    }

    #[test]
    fn sharded_backends_report_atomic_batches() {
        for entry in backends() {
            let b = (entry.make)();
            let expect = entry.name.starts_with("sharded");
            assert_eq!(b.atomic_batches(), expect, "[{}]", entry.name);
        }
    }

    #[test]
    fn mismatched_snapshots_refuse_to_diff() {
        let a = (backends()[0].make)().snapshot();
        let sharded = ShardedServe::with_shards(4);
        let b = sharded.snapshot();
        assert!(a.diff(b.as_ref()).is_none());
    }
}
