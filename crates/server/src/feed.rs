//! The primary's version feed: a capped ring of recent snapshots keyed
//! by epoch, the source replicas sync from.
//!
//! Path copying makes this ring nearly free: each retained epoch is an
//! `Arc`-held [`ServeSnapshot`] sharing all unchanged subtrees with its
//! neighbours, so retaining `K` recent versions costs O(changes between
//! them), not `K` copies of the map. That is exactly what log-shipping
//! replication wants — the primary answers
//! [`PullDiff`](crate::proto::Request::PullDiff) with the *pruned*
//! snapshot-to-snapshot diff between the replica's epoch and the head,
//! sublinear in the map size for nearby versions.
//!
//! Epochs are monotone (`1, 2, 3, …`) and never reused. The ring is
//! capped: publishing beyond [`VersionFeed::capacity`] retires the
//! oldest epoch, and a replica that lagged past the ring is told
//! [`WireError::EpochRetired`](crate::proto::WireError::EpochRetired)
//! and bootstraps again via a chunked
//! [`FullSync`](crate::proto::Request::FullSync).

use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use pathcopy_trace::TraceContext;

use crate::backend::ServeSnapshot;
use crate::proto::{Epoch, FeedInfo};

/// The push subsystem's internal publication hook. Unlike [`FeedSink`]
/// it also receives the **epoch number** the diff starts from, and it
/// tolerates gaps in the epoch sequence (a relay feed mirrored with
/// [`VersionFeed::publish_at`] skips epochs its upstream pushed past
/// it). Fired under the feed lock, after the sink.
pub(crate) trait EpochFanout: Send + Sync + 'static {
    /// Called once per epoch that lands in the feed. `from` is the
    /// epoch `prev` belongs to (`0` when `prev` is `None`).
    fn on_epoch(
        &self,
        from: Epoch,
        prev: Option<&Arc<dyn ServeSnapshot>>,
        epoch: Epoch,
        snap: &Arc<dyn ServeSnapshot>,
    );

    /// [`on_epoch`](Self::on_epoch) with the trace context of the
    /// publish that produced the epoch, when the publish was traced.
    /// Default: drop the context and delegate, so fan-outs that predate
    /// tracing keep working (the trace just ends at them).
    fn on_epoch_traced(
        &self,
        from: Epoch,
        prev: Option<&Arc<dyn ServeSnapshot>>,
        epoch: Epoch,
        snap: &Arc<dyn ServeSnapshot>,
        trace: Option<&TraceContext>,
    ) {
        let _ = trace;
        self.on_epoch(from, prev, epoch, snap);
    }
}

/// An observer of epoch publication, called by [`VersionFeed::publish`]
/// for every new epoch — the primary's durability hook.
///
/// The sink runs **under the feed lock**, after the epoch is assigned
/// and inserted but before `publish` returns. That gives two guarantees
/// a write-ahead log needs and cannot reconstruct afterwards:
///
/// * **ordering** — sinks observe epochs in exactly the order they were
///   assigned, with no gaps and no interleaving;
/// * **adjacency** — `prev` is the snapshot of epoch `epoch - 1` even if
///   it has already been retired from the ring by the time the sink
///   looks (capacity-1 feeds retire the previous epoch immediately).
///
/// The price is that sink IO (an append + fsync, for
/// `pathcopy-durable`'s persister) serializes publishes. Publishes are
/// rare control-plane events next to reads/writes, so this is the right
/// trade; a sink must still never block indefinitely.
///
/// A sink has no way to reject an epoch: publication is already visible
/// to pullers. Persisters record failures on the side (see
/// `FeedPersister::take_error` in `pathcopy-durable`) rather than
/// panicking in a server worker.
pub trait FeedSink: Send + Sync + 'static {
    /// Called once per published epoch. `prev` is the previous epoch's
    /// snapshot (`None` for the first epoch this feed ever assigned), so
    /// a sink can compute `prev.diff(snap)` — the same pruned diff
    /// `PullDiff` would serve.
    fn on_publish(
        &self,
        epoch: Epoch,
        prev: Option<&Arc<dyn ServeSnapshot>>,
        snap: &Arc<dyn ServeSnapshot>,
    );

    /// [`on_publish`](Self::on_publish) with the trace context of the
    /// traced publish that produced the epoch. Default: drop the
    /// context and delegate, so sinks that predate tracing keep
    /// compiling; a tracing sink (the durable persister) overrides this
    /// to record its append+fsync as a span of the publish's trace.
    fn on_publish_traced(
        &self,
        epoch: Epoch,
        prev: Option<&Arc<dyn ServeSnapshot>>,
        snap: &Arc<dyn ServeSnapshot>,
        trace: Option<&TraceContext>,
    ) {
        let _ = trace;
        self.on_publish(epoch, prev, snap);
    }
}

/// A capped, monotone ring of published snapshots; see the module docs.
pub struct VersionFeed {
    state: Mutex<FeedState>,
    capacity: usize,
    sink: Option<Arc<dyn FeedSink>>,
    fanout: OnceLock<Arc<dyn EpochFanout>>,
}

struct FeedState {
    /// `(epoch, snapshot)` pairs in ascending epoch order.
    ring: VecDeque<(Epoch, Arc<dyn ServeSnapshot>)>,
    next: Epoch,
    /// The most recently published snapshot, kept one beat past its
    /// ring retirement so the sink always sees a correct `prev`.
    prev: Option<Arc<dyn ServeSnapshot>>,
    /// The epoch `prev` belongs to (`0` = none yet). Equal to
    /// `next - 1` on a primary, but a relay feed mirrored with
    /// [`VersionFeed::publish_at`] can have gaps.
    prev_epoch: Epoch,
}

impl VersionFeed {
    /// An empty feed retaining at most `capacity` epochs (min 1).
    pub fn new(capacity: usize) -> Self {
        Self::configured(capacity, 1, None)
    }

    /// An empty feed whose first published epoch will be `start`
    /// (min 1) and whose publishes are mirrored to `sink`, if any.
    ///
    /// A primary recovered from a durable log must continue the epoch
    /// sequence where the log's head left off (`start = head + 1`), or
    /// replicas and the log itself would see epoch numbers reused for
    /// different states.
    pub fn configured(capacity: usize, start: Epoch, sink: Option<Arc<dyn FeedSink>>) -> Self {
        VersionFeed {
            state: Mutex::new(FeedState {
                ring: VecDeque::new(),
                next: start.max(1),
                prev: None,
                prev_epoch: 0,
            }),
            capacity: capacity.max(1),
            sink,
            fanout: OnceLock::new(),
        }
    }

    /// How many epochs the feed retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The epoch the next publish will be assigned. A server reads this
    /// right after applying a write to learn the write's visibility
    /// watermark: the first epoch whose snapshot must contain it.
    pub fn next_epoch(&self) -> Epoch {
        self.state.lock().next
    }

    /// Installs the push subsystem's fan-out hook. One shot: a second
    /// call is ignored. Set during server spawn, before any publish.
    pub(crate) fn set_fanout(&self, fanout: Arc<dyn EpochFanout>) {
        let _ = self.fanout.set(fanout);
    }

    /// Publishes `snap` as the next epoch, retiring the oldest retained
    /// epoch if the ring is full. Returns the new epoch.
    ///
    /// If the feed has a [`FeedSink`], it observes the epoch before
    /// `publish` returns (see the trait docs for the ordering contract).
    pub fn publish(&self, snap: Arc<dyn ServeSnapshot>) -> Epoch {
        self.publish_with(|| snap)
    }

    /// Publishes the snapshot `take` returns as the next epoch, taking
    /// the snapshot **under the feed lock**. This closes the
    /// snapshot-then-number race of `publish(backend.snapshot())`:
    /// there, a write can land between the snapshot and the lock, so an
    /// epoch number read *after* that write could name a snapshot from
    /// *before* it. Watermark-carrying writes ([`Request::WriteAt`](
    /// crate::proto::Request::WriteAt)) depend on the closed ordering:
    /// every epoch assigned after a write's watermark read contains the
    /// write.
    pub fn publish_with(&self, take: impl FnOnce() -> Arc<dyn ServeSnapshot>) -> Epoch {
        self.publish_with_traced(take, None)
    }

    /// [`publish_with`](Self::publish_with) carrying the trace context
    /// of the publish request, so the sink (durable append+fsync) and
    /// the fan-out (push frames to subscribers) can record their work
    /// as spans of — and propagate — the same distributed trace.
    pub fn publish_with_traced(
        &self,
        take: impl FnOnce() -> Arc<dyn ServeSnapshot>,
        trace: Option<&TraceContext>,
    ) -> Epoch {
        let mut state = self.state.lock();
        let snap = take();
        let epoch = state.next;
        state.next += 1;
        state.ring.push_back((epoch, Arc::clone(&snap)));
        while state.ring.len() > self.capacity {
            state.ring.pop_front();
        }
        let from = state.prev_epoch;
        state.prev_epoch = epoch;
        let prev = state.prev.replace(Arc::clone(&snap));
        if let Some(sink) = &self.sink {
            sink.on_publish_traced(epoch, prev.as_ref(), &snap, trace);
        }
        if let Some(fanout) = self.fanout.get() {
            fanout.on_epoch_traced(from, prev.as_ref(), epoch, &snap, trace);
        }
        epoch
    }

    /// Mirrors an epoch published elsewhere into this feed under its
    /// **original number** — what a relay does after applying an
    /// upstream push, so its own subscribers and watermarked reads see
    /// the primary's epoch sequence. Returns `false` (and changes
    /// nothing) if `epoch` is behind this feed's sequence — a late or
    /// duplicate delivery.
    ///
    /// The epoch sequence may skip numbers (the upstream pushed past
    /// this relay and it caught up by diff), so the [`FeedSink`] — whose
    /// contract promises gap-free adjacent epochs — is **not** fired;
    /// only the push fan-out, which carries the `from` epoch explicitly,
    /// observes mirrored publishes.
    pub fn publish_at(&self, epoch: Epoch, snap: Arc<dyn ServeSnapshot>) -> bool {
        self.publish_at_traced(epoch, snap, None)
    }

    /// [`publish_at`](Self::publish_at) carrying the trace context of
    /// the upstream push being mirrored, so a relay's own push fan-out
    /// re-serves the epoch under the same distributed trace.
    pub fn publish_at_traced(
        &self,
        epoch: Epoch,
        snap: Arc<dyn ServeSnapshot>,
        trace: Option<&TraceContext>,
    ) -> bool {
        let mut state = self.state.lock();
        if epoch < state.next {
            return false;
        }
        state.next = epoch + 1;
        state.ring.push_back((epoch, Arc::clone(&snap)));
        while state.ring.len() > self.capacity {
            state.ring.pop_front();
        }
        let from = state.prev_epoch;
        state.prev_epoch = epoch;
        let prev = state.prev.replace(Arc::clone(&snap));
        if let Some(fanout) = self.fanout.get() {
            fanout.on_epoch_traced(from, prev.as_ref(), epoch, &snap, trace);
        }
        true
    }

    /// The feed's bounds (`head`/`oldest` are `0` while nothing is
    /// published).
    pub fn info(&self) -> FeedInfo {
        let state = self.state.lock();
        FeedInfo {
            head: state.ring.back().map_or(0, |(e, _)| *e),
            oldest: state.ring.front().map_or(0, |(e, _)| *e),
            capacity: self.capacity as u64,
        }
    }

    /// The snapshot retained for `epoch`, if it has not been retired.
    pub fn get(&self, epoch: Epoch) -> Option<Arc<dyn ServeSnapshot>> {
        let state = self.state.lock();
        state
            .ring
            .iter()
            .find(|(e, _)| *e == epoch)
            .map(|(_, s)| Arc::clone(s))
    }

    /// The newest published epoch and its snapshot.
    pub fn head(&self) -> Option<(Epoch, Arc<dyn ServeSnapshot>)> {
        let state = self.state.lock();
        state.ring.back().map(|(e, s)| (*e, Arc::clone(s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ServeBackend, ShardedServe};

    fn snap_of(b: &ShardedServe) -> Arc<dyn ServeSnapshot> {
        b.snapshot()
    }

    #[test]
    fn epochs_are_monotone_and_capped() {
        let b = ShardedServe::with_shards(2);
        let feed = VersionFeed::new(3);
        assert_eq!(
            feed.info(),
            FeedInfo {
                head: 0,
                oldest: 0,
                capacity: 3
            }
        );
        for expect in 1..=5u64 {
            b.insert(expect as i64, 0);
            assert_eq!(feed.publish(snap_of(&b)), expect);
        }
        let info = feed.info();
        assert_eq!(info.head, 5);
        assert_eq!(info.oldest, 3, "epochs 1 and 2 retired");
        assert!(feed.get(2).is_none());
        assert_eq!(feed.get(3).expect("retained").len(), 3);
        assert_eq!(feed.head().expect("head").0, 5);
    }

    #[test]
    fn sink_sees_every_epoch_in_order_with_adjacent_prev() {
        struct Recorder(Mutex<Vec<(Epoch, Option<usize>, usize)>>);
        impl FeedSink for Recorder {
            fn on_publish(
                &self,
                epoch: Epoch,
                prev: Option<&Arc<dyn ServeSnapshot>>,
                snap: &Arc<dyn ServeSnapshot>,
            ) {
                self.0
                    .lock()
                    .push((epoch, prev.map(|p| p.len()), snap.len()));
            }
        }
        let recorder = Arc::new(Recorder(Mutex::new(Vec::new())));
        let b = ShardedServe::with_shards(2);
        // Capacity 1: the ring retires `prev` immediately, yet the sink
        // must still see it. Start at epoch 7 (a recovered primary).
        let feed = VersionFeed::configured(1, 7, Some(Arc::clone(&recorder) as Arc<dyn FeedSink>));
        for k in 0..3i64 {
            b.insert(k, k);
            assert_eq!(feed.publish(snap_of(&b)), 7 + k as u64);
        }
        let seen = recorder.0.lock().clone();
        assert_eq!(seen, vec![(7, None, 1), (8, Some(1), 2), (9, Some(2), 3)]);
        assert_eq!(feed.info().oldest, 9, "capacity 1 keeps only the head");
    }

    #[test]
    fn publish_at_mirrors_foreign_epochs_and_rejects_stale_ones() {
        let b = ShardedServe::with_shards(2);
        let feed = VersionFeed::new(4);
        assert_eq!(feed.next_epoch(), 1);
        b.insert(1, 10);
        assert!(feed.publish_at(5, snap_of(&b)), "fresh epoch lands");
        assert_eq!(feed.info().head, 5);
        assert_eq!(feed.next_epoch(), 6);
        assert!(!feed.publish_at(5, snap_of(&b)), "duplicate rejected");
        assert!(!feed.publish_at(3, snap_of(&b)), "stale rejected");
        b.insert(2, 20);
        assert!(feed.publish_at(9, snap_of(&b)), "gaps are fine");
        assert_eq!((feed.info().oldest, feed.info().head), (5, 9));
        // Ordinary publish continues the mirrored sequence.
        assert_eq!(feed.publish(snap_of(&b)), 10);
    }

    #[test]
    fn publish_with_snapshots_under_the_lock() {
        let b = ShardedServe::with_shards(2);
        let feed = VersionFeed::new(4);
        b.insert(7, 70);
        let epoch = feed.publish_with(|| b.snapshot());
        assert_eq!(epoch, 1);
        assert_eq!(feed.get(epoch).unwrap().get(7), Some(70));
    }

    #[test]
    fn retained_epochs_are_frozen_versions() {
        let b = ShardedServe::with_shards(2);
        b.insert(1, 10);
        let feed = VersionFeed::new(4);
        let e1 = feed.publish(snap_of(&b));
        b.insert(1, 99);
        b.insert(2, 20);
        let e2 = feed.publish(snap_of(&b));
        assert_eq!(feed.get(e1).unwrap().get(1), Some(10), "epoch 1 frozen");
        assert_eq!(feed.get(e2).unwrap().get(1), Some(99));
        let diff = feed.get(e1).unwrap().diff(feed.get(e2).unwrap().as_ref());
        assert_eq!(diff.expect("same backend").len(), 2);
    }
}
