//! The primary's version feed: a capped ring of recent snapshots keyed
//! by epoch, the source replicas sync from.
//!
//! Path copying makes this ring nearly free: each retained epoch is an
//! `Arc`-held [`ServeSnapshot`] sharing all unchanged subtrees with its
//! neighbours, so retaining `K` recent versions costs O(changes between
//! them), not `K` copies of the map. That is exactly what log-shipping
//! replication wants — the primary answers
//! [`PullDiff`](crate::proto::Request::PullDiff) with the *pruned*
//! snapshot-to-snapshot diff between the replica's epoch and the head,
//! sublinear in the map size for nearby versions.
//!
//! Epochs are monotone (`1, 2, 3, …`) and never reused. The ring is
//! capped: publishing beyond [`VersionFeed::capacity`] retires the
//! oldest epoch, and a replica that lagged past the ring is told
//! [`WireError::EpochRetired`](crate::proto::WireError::EpochRetired)
//! and bootstraps again via a chunked
//! [`FullSync`](crate::proto::Request::FullSync).

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::ServeSnapshot;
use crate::proto::{Epoch, FeedInfo};

/// A capped, monotone ring of published snapshots; see the module docs.
pub struct VersionFeed {
    state: Mutex<FeedState>,
    capacity: usize,
}

struct FeedState {
    /// `(epoch, snapshot)` pairs in ascending epoch order.
    ring: VecDeque<(Epoch, Arc<dyn ServeSnapshot>)>,
    next: Epoch,
}

impl VersionFeed {
    /// An empty feed retaining at most `capacity` epochs (min 1).
    pub fn new(capacity: usize) -> Self {
        VersionFeed {
            state: Mutex::new(FeedState {
                ring: VecDeque::new(),
                next: 1,
            }),
            capacity: capacity.max(1),
        }
    }

    /// How many epochs the feed retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Publishes `snap` as the next epoch, retiring the oldest retained
    /// epoch if the ring is full. Returns the new epoch.
    pub fn publish(&self, snap: Arc<dyn ServeSnapshot>) -> Epoch {
        let mut state = self.state.lock();
        let epoch = state.next;
        state.next += 1;
        state.ring.push_back((epoch, snap));
        while state.ring.len() > self.capacity {
            state.ring.pop_front();
        }
        epoch
    }

    /// The feed's bounds (`head`/`oldest` are `0` while nothing is
    /// published).
    pub fn info(&self) -> FeedInfo {
        let state = self.state.lock();
        FeedInfo {
            head: state.ring.back().map_or(0, |(e, _)| *e),
            oldest: state.ring.front().map_or(0, |(e, _)| *e),
            capacity: self.capacity as u64,
        }
    }

    /// The snapshot retained for `epoch`, if it has not been retired.
    pub fn get(&self, epoch: Epoch) -> Option<Arc<dyn ServeSnapshot>> {
        let state = self.state.lock();
        state
            .ring
            .iter()
            .find(|(e, _)| *e == epoch)
            .map(|(_, s)| Arc::clone(s))
    }

    /// The newest published epoch and its snapshot.
    pub fn head(&self) -> Option<(Epoch, Arc<dyn ServeSnapshot>)> {
        let state = self.state.lock();
        state.ring.back().map(|(e, s)| (*e, Arc::clone(s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ServeBackend, ShardedServe};

    fn snap_of(b: &ShardedServe) -> Arc<dyn ServeSnapshot> {
        b.snapshot()
    }

    #[test]
    fn epochs_are_monotone_and_capped() {
        let b = ShardedServe::with_shards(2);
        let feed = VersionFeed::new(3);
        assert_eq!(
            feed.info(),
            FeedInfo {
                head: 0,
                oldest: 0,
                capacity: 3
            }
        );
        for expect in 1..=5u64 {
            b.insert(expect as i64, 0);
            assert_eq!(feed.publish(snap_of(&b)), expect);
        }
        let info = feed.info();
        assert_eq!(info.head, 5);
        assert_eq!(info.oldest, 3, "epochs 1 and 2 retired");
        assert!(feed.get(2).is_none());
        assert_eq!(feed.get(3).expect("retained").len(), 3);
        assert_eq!(feed.head().expect("head").0, 5);
    }

    #[test]
    fn retained_epochs_are_frozen_versions() {
        let b = ShardedServe::with_shards(2);
        b.insert(1, 10);
        let feed = VersionFeed::new(4);
        let e1 = feed.publish(snap_of(&b));
        b.insert(1, 99);
        b.insert(2, 20);
        let e2 = feed.publish(snap_of(&b));
        assert_eq!(feed.get(e1).unwrap().get(1), Some(10), "epoch 1 frozen");
        assert_eq!(feed.get(e2).unwrap().get(1), Some(99));
        let diff = feed.get(e1).unwrap().diff(feed.get(e2).unwrap().as_ref());
        assert_eq!(diff.expect("same backend").len(), 2);
    }
}
