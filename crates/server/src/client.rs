//! The blocking client: one reused TCP connection, typed calls.
//!
//! [`Client`] opens a single connection and reuses it for every call
//! (requests and responses alternate strictly, so no multiplexing state
//! is needed). The API mirrors the engine's: [`Client::batch`] takes the
//! same [`BatchOp`] values as
//! [`ShardedTreapMap::transact`](pathcopy_concurrent::ShardedTreapMap::transact)
//! and returns the same [`BatchResult`]s, and [`Client::diff`] returns
//! [`DiffEntry`] — code written against the
//! in-process map moves to the network client by swapping the receiver.

use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::ops::{Bound, RangeBounds};

use pathcopy_concurrent::{BatchOp, BatchResult};
use pathcopy_core::DiffEntry;

use crate::proto::{
    read_response, write_request, ProtoError, Request, Response, SnapshotId, WireError, WireStats,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, write, or read).
    Io(io::Error),
    /// The response frame could not be decoded.
    Proto(ProtoError),
    /// The server answered with an error.
    Server(WireError),
    /// The server answered with a response of the wrong kind for the
    /// request sent (a protocol bug, not an expected runtime condition).
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response kind to {what}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(e) => ClientError::Io(e),
            other => ClientError::Proto(other),
        }
    }
}

/// A blocking connection to a `pathcopy-server`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects (with `TCP_NODELAY`, since the protocol is small framed
    /// request/response round trips).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// One request/response round trip, surfacing server-side errors.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_request(&mut self.writer, req)?;
        self.writer.flush()?;
        match read_response(&mut self.reader)? {
            Response::Error(e) => Err(ClientError::Server(e)),
            resp => Ok(resp),
        }
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: i64) -> Result<Option<i64>, ClientError> {
        match self.call(&Request::Get { key })? {
            Response::Got(v) => Ok(v),
            _ => Err(ClientError::Unexpected("Get")),
        }
    }

    /// Inserts `key -> value`, returning the previous value if any.
    pub fn insert(&mut self, key: i64, value: i64) -> Result<Option<i64>, ClientError> {
        match self.call(&Request::Insert { key, value })? {
            Response::Inserted(v) => Ok(v),
            _ => Err(ClientError::Unexpected("Insert")),
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: i64) -> Result<Option<i64>, ClientError> {
        match self.call(&Request::Remove { key })? {
            Response::Removed(v) => Ok(v),
            _ => Err(ClientError::Unexpected("Remove")),
        }
    }

    /// Atomic compare-and-set; `Ok(true)` if the guard matched and the
    /// write was applied.
    pub fn cas(
        &mut self,
        key: i64,
        expected: Option<i64>,
        new: Option<i64>,
    ) -> Result<bool, ClientError> {
        match self.call(&Request::Cas { key, expected, new })? {
            Response::CasApplied(ok) => Ok(ok),
            _ => Err(ClientError::Unexpected("Cas")),
        }
    }

    /// Applies a batch of operations in one round trip — the same
    /// [`BatchOp`]s `ShardedTreapMap::transact` takes, with the same
    /// all-or-nothing guarantee when the served backend supports atomic
    /// batches.
    pub fn batch(
        &mut self,
        ops: &[BatchOp<i64, i64>],
    ) -> Result<Vec<BatchResult<i64>>, ClientError> {
        match self.call(&Request::Batch(ops.to_vec()))? {
            Response::Batch(results) => Ok(results),
            _ => Err(ClientError::Unexpected("Batch")),
        }
    }

    /// Pins a coherent snapshot in the server's version table and
    /// returns its id (readable from any connection until
    /// [`release`](Self::release)d).
    pub fn snapshot(&mut self) -> Result<SnapshotId, ClientError> {
        match self.call(&Request::Snapshot)? {
            Response::SnapshotTaken(id) => Ok(id),
            _ => Err(ClientError::Unexpected("Snapshot")),
        }
    }

    /// Ordered scan of `range` on a pinned snapshot (`Some(id)`) or on a
    /// fresh coherent snapshot (`None`). At most `limit` entries come
    /// back (`0` = unlimited); the second component is `false` when the
    /// scan was truncated.
    pub fn range<R: RangeBounds<i64>>(
        &mut self,
        snapshot: Option<SnapshotId>,
        range: R,
        limit: u32,
    ) -> Result<(Vec<(i64, i64)>, bool), ClientError> {
        let req = Request::Range {
            snapshot,
            lo: clone_bound(range.start_bound()),
            hi: clone_bound(range.end_bound()),
            limit,
        };
        match self.call(&req)? {
            Response::Entries { entries, complete } => Ok((entries, complete)),
            _ => Err(ClientError::Unexpected("Range")),
        }
    }

    /// What changed between the pinned snapshot `from` and `to`
    /// (`None` = a fresh snapshot taken now), in ascending key order.
    pub fn diff(
        &mut self,
        from: SnapshotId,
        to: Option<SnapshotId>,
    ) -> Result<Vec<DiffEntry<i64, i64>>, ClientError> {
        match self.call(&Request::Diff { from, to })? {
            Response::Diff(entries) => Ok(entries),
            _ => Err(ClientError::Unexpected("Diff")),
        }
    }

    /// Drops a pinned snapshot; `Ok(true)` if it existed.
    pub fn release(&mut self, snapshot: SnapshotId) -> Result<bool, ClientError> {
        match self.call(&Request::Release { snapshot })? {
            Response::Released(existed) => Ok(existed),
            _ => Err(ClientError::Unexpected("Release")),
        }
    }

    /// Reads the backend's operation statistics and the server's
    /// version-table size.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::Unexpected("Stats")),
        }
    }
}

fn clone_bound(b: Bound<&i64>) -> Bound<i64> {
    match b {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(&k) => Bound::Included(k),
        Bound::Excluded(&k) => Bound::Excluded(k),
    }
}
