//! The pipelined client: one multiplexed TCP session, typed calls.
//!
//! [`Session`] owns a single connection and lets any number of requests
//! be **in flight at once**: [`Session::submit`] stamps the request
//! with a fresh correlation id, writes the proto-v3 frame, and returns
//! a [`Ticket`] immediately; a background reader thread demultiplexes
//! response frames by id and resolves the matching ticket. Responses
//! may come back in any order — the id, not arrival order, pairs them.
//!
//! [`Client`] is the blocking facade over a session: every typed call
//! is literally `submit + wait`, so serial code pays one round trip per
//! call exactly as before, while throughput-minded code can hold a
//! window of tickets open (see `loadgen --pipeline`). The API mirrors
//! the engine's: [`Client::batch`] takes the same [`BatchOp`] values as
//! [`ShardedTreapMap::transact`](pathcopy_concurrent::ShardedTreapMap::transact)
//! and returns the same [`BatchResult`]s, and [`Client::diff`] returns
//! [`DiffEntry`] — code written against the in-process map moves to the
//! network client by swapping the receiver.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::ops::{Bound, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use parking_lot::Mutex;
use pathcopy_concurrent::{BatchOp, BatchResult};
use pathcopy_core::{ByteCounters, ByteCountersSnapshot, DiffEntry};
use pathcopy_trace::{SpanRecord, TraceContext};

use crate::proto::{
    read_response_enveloped, write_request_traced, Epoch, FeedInfo, ProtoError, Request, RequestId,
    Response, ServerGauges, SnapshotId, StageSummary, WireError, WireStats, PUSH_ID_BASE,
};

/// Why a client call failed — the single error surface for everything
/// in this module ([`Session::submit`], [`Ticket::wait`], and every
/// typed [`Client`] wrapper).
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, write, or read).
    Io(io::Error),
    /// The server closed the connection cleanly (EOF at a frame
    /// boundary). Distinct from [`ClientError::Io`] so callers can tell
    /// an orderly shutdown or demotion from a torn transport: a
    /// disconnected replica reconnects and resubscribes; a transport
    /// error is worth logging.
    Disconnected,
    /// The response frame could not be decoded.
    Proto(ProtoError),
    /// The server answered with an error.
    Server(WireError),
    /// The server shed this request because the connection was at its
    /// queue-depth bound (the payload is that bound). The connection is
    /// still healthy; back off and resubmit.
    Busy(u64),
    /// The server answered with a response of the wrong kind for the
    /// request sent (a protocol bug, not an expected runtime condition).
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Busy(depth) => {
                write!(
                    f,
                    "request shed: connection at its queue-depth bound ({depth})"
                )
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response kind to {what}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(e) => ClientError::Io(e),
            other => ClientError::Proto(other),
        }
    }
}

/// Collapses a [`ClientError`] into an [`io::Error`] so call sites
/// whose signature is `io::Result` (the replica engine, mainly) keep
/// working with `?`. An [`ClientError::Io`] passes through unchanged;
/// everything else becomes [`io::ErrorKind::Other`] with the display
/// text preserved.
impl From<ClientError> for io::Error {
    fn from(e: ClientError) -> io::Error {
        match e {
            ClientError::Io(e) => e,
            ClientError::Disconnected => io::Error::new(
                io::ErrorKind::UnexpectedEof,
                ClientError::Disconnected.to_string(),
            ),
            other => io::Error::other(other.to_string()),
        }
    }
}

/// [`Read`] half of a connection that counts bytes into a shared
/// [`ByteCounters`] block.
struct CountingReader {
    inner: TcpStream,
    wire: Arc<ByteCounters>,
}

impl Read for CountingReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.wire.add_received(n as u64);
        Ok(n)
    }
}

/// [`Write`] half of a connection that counts bytes into a shared
/// [`ByteCounters`] block.
struct CountingWriter {
    inner: TcpStream,
    wire: Arc<ByteCounters>,
}

impl Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.wire.add_sent(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Why the session can no longer carry requests. [`io::Error`] is not
/// `Clone`, so the terminal error is stored as `(kind, message)` and a
/// fresh `io::Error` is minted for every ticket and submit that hits
/// it.
#[derive(Clone, Debug)]
struct SessionDead {
    kind: io::ErrorKind,
    msg: String,
    /// Clean EOF at a frame boundary: surfaced as
    /// [`ClientError::Disconnected`], not a transport error.
    disconnected: bool,
}

impl SessionDead {
    fn closed() -> SessionDead {
        SessionDead {
            kind: io::ErrorKind::UnexpectedEof,
            msg: "server closed the connection".to_owned(),
            disconnected: true,
        }
    }

    fn from_proto(e: &ProtoError) -> SessionDead {
        match e {
            ProtoError::Io(e) => SessionDead {
                kind: e.kind(),
                msg: e.to_string(),
                disconnected: false,
            },
            other => SessionDead {
                kind: io::ErrorKind::InvalidData,
                msg: format!("undecodable response frame: {other}"),
                disconnected: false,
            },
        }
    }

    fn to_client_error(&self) -> ClientError {
        if self.disconnected {
            ClientError::Disconnected
        } else {
            ClientError::Io(io::Error::new(self.kind, self.msg.clone()))
        }
    }
}

/// What the reader thread delivers to a waiting ticket.
type Settled = Result<Response, SessionDead>;

/// State shared between submitters and the reader thread.
struct SessionShared {
    /// Serializes frame writes so concurrent submitters never
    /// interleave bytes.
    writer: Mutex<BufWriter<CountingWriter>>,
    /// Tickets awaiting a response, keyed by correlation id. The
    /// terminal `dead` marker lives **inside** this lock so that
    /// "check dead, then insert" in [`Session::submit`] and "set dead,
    /// then drain" in the reader cannot interleave — a submit either
    /// sees the session alive and gets drained later, or sees it dead
    /// and fails fast. No ticket can be orphaned.
    pending: Mutex<Pending>,
    next_id: AtomicU64,
    wire: Arc<ByteCounters>,
    /// Where the reader routes server-initiated [`Response::Push`]
    /// frames (ids in the [`PUSH_ID_BASE`] namespace); `None` until
    /// [`Session::subscribe`] installs a channel. Pushes arriving with
    /// no channel are dropped — the server pushes to subscribers only,
    /// so that can only happen transiently around resubscription.
    push_tx: Mutex<Option<Sender<PushFrame>>>,
}

#[derive(Default)]
struct Pending {
    waiters: HashMap<RequestId, SyncSender<Settled>>,
    dead: Option<SessionDead>,
}

/// A pipelined connection to a `pathcopy-server`.
///
/// Any number of requests may be outstanding at once (the server sheds
/// with [`WireError::Busy`] beyond its configured queue depth —
/// surfaced here as [`ClientError::Busy`]). `submit` takes `&self`, so
/// a session can be shared across threads behind an `Arc` if desired;
/// each submit is stamped with a unique id and responses are paired by
/// id, never by order.
pub struct Session {
    shared: Arc<SessionShared>,
    /// Extra handle used only to `shutdown()` the socket on drop, which
    /// unblocks the reader thread promptly.
    stream: TcpStream,
    reader: Option<thread::JoinHandle<()>>,
}

impl Session {
    /// Connects (with `TCP_NODELAY`, since the protocol is small framed
    /// messages) and spawns the demultiplexing reader thread.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] for any failure resolving `addr`,
    /// establishing the TCP connection, or configuring the socket.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Session, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        let write_half = stream.try_clone()?;
        let wire = Arc::new(ByteCounters::new());
        let shared = Arc::new(SessionShared {
            writer: Mutex::new(BufWriter::new(CountingWriter {
                inner: write_half,
                wire: Arc::clone(&wire),
            })),
            pending: Mutex::new(Pending::default()),
            next_id: AtomicU64::new(1),
            wire: Arc::clone(&wire),
            push_tx: Mutex::new(None),
        });
        let reader_shared = Arc::clone(&shared);
        let reader = thread::Builder::new()
            .name("pathcopy-client-reader".to_owned())
            .spawn(move || {
                reader_loop(
                    &reader_shared,
                    BufReader::new(CountingReader {
                        inner: read_half,
                        wire,
                    }),
                )
            })
            .map_err(ClientError::Io)?;
        Ok(Session {
            shared,
            stream,
            reader: Some(reader),
        })
    }

    /// Sends `req` without waiting for its reply and returns the
    /// [`Ticket`] that will resolve to it. The frame is written (and
    /// flushed) before this returns, so tickets submitted back-to-back
    /// are all on the wire — that is the whole point: the server works
    /// on all of them while the client has not blocked once.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the session is already dead (a previous
    /// transport or decode failure) or if writing the frame fails.
    /// Errors the *server* reports for this request arrive through the
    /// ticket, not here.
    pub fn submit(&self, req: &Request) -> Result<Ticket, ClientError> {
        self.submit_traced(req, None)
    }

    /// [`submit`](Self::submit) with an optional trace context stamped
    /// into the request's envelope. With `Some`, a tracing server
    /// records this request's span chain under the context's trace id
    /// and propagates it through every downstream stage the request
    /// triggers — this is how a client roots a distributed trace. With
    /// `None` the frame (and cost) is identical to plain `submit`.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit).
    pub fn submit_traced(
        &self,
        req: &Request,
        trace: Option<&TraceContext>,
    ) -> Result<Ticket, ClientError> {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::sync_channel(1);
        {
            let mut pending = self.shared.pending.lock();
            if let Some(dead) = &pending.dead {
                return Err(dead.to_client_error());
            }
            pending.waiters.insert(id, tx);
        }
        let write_result = {
            let mut writer = self.shared.writer.lock();
            write_request_traced(&mut *writer, id, req, trace).and_then(|()| writer.flush())
        };
        if let Err(e) = write_result {
            // The frame may be half-written; nothing more can be
            // multiplexed onto this connection safely.
            let mut pending = self.shared.pending.lock();
            pending.waiters.remove(&id);
            if pending.dead.is_none() {
                pending.dead = Some(SessionDead {
                    kind: e.kind(),
                    msg: e.to_string(),
                    disconnected: false,
                });
            }
            return Err(ClientError::Io(e));
        }
        Ok(Ticket { id, rx })
    }

    /// `submit` + [`Ticket::wait`] in one call: a blocking round trip.
    ///
    /// # Errors
    ///
    /// The union of [`Session::submit`] and [`Ticket::wait`] failures.
    pub fn call(&self, req: &Request) -> Result<Response, ClientError> {
        self.submit(req)?.wait()
    }

    /// Bytes this connection has moved so far, both directions. The
    /// counters are exact whenever no request is in flight (every
    /// submit flushes, and responses are counted as they are read),
    /// which is what the replication layer uses to prove that diff
    /// catch-up transfers O(changes) bytes while a full sync transfers
    /// O(n).
    pub fn wire_bytes(&self) -> ByteCountersSnapshot {
        self.shared.wire.snapshot()
    }

    /// Registers this connection for push delivery: the server will
    /// send every published epoch's diff as an unsolicited
    /// [`Response::Push`] frame, which the reader thread routes to the
    /// returned [`Subscription`]. `from` is the epoch already applied
    /// locally (`0` = nothing); if it is behind the head and still
    /// retained, one catch-up push arrives first. Returns the feed's
    /// bounds at registration time.
    ///
    /// Calling this again replaces the previous subscription's channel
    /// — what a demoted subscriber does after catching up by pull.
    ///
    /// # Errors
    ///
    /// The usual [`Session::submit`]/[`Ticket::wait`] failure modes,
    /// plus [`ClientError::Unexpected`] if the server answers with
    /// anything but an ack.
    pub fn subscribe(&self, from: Epoch) -> Result<(FeedInfo, Subscription), ClientError> {
        let (tx, rx) = mpsc::channel();
        // Install the channel before the request is on the wire so the
        // catch-up push (which follows the ack immediately) cannot slip
        // past an empty slot.
        *self.shared.push_tx.lock() = Some(tx);
        let ticket = self.submit(&Request::SubscribePush { from })?;
        match ticket.wait()? {
            Response::SubscribeAck(info) => Ok((info, Subscription { rx })),
            _ => Err(ClientError::Unexpected("SubscribePush")),
        }
    }
}

/// One server-initiated epoch diff, delivered through a
/// [`Subscription`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushFrame {
    /// The epoch this diff starts from (`0` = from the empty map).
    /// Apply the diff **only** when this equals the locally applied
    /// epoch; anything else is a gap — catch up by pulling.
    pub from: Epoch,
    /// The epoch the diff brings the subscriber up to.
    pub epoch: Epoch,
    /// The changes, in ascending key order.
    pub entries: Vec<DiffEntry<i64, i64>>,
    /// Trace context from the frame's envelope, when the publish that
    /// produced this push was traced: the subscriber records its apply
    /// span as a child of the publisher's execute span, stitching the
    /// two nodes into one trace.
    pub trace: Option<TraceContext>,
}

/// The receiving end of a push registration (see
/// [`Session::subscribe`]): epoch diffs arrive here as the primary
/// publishes, with no polling round trips.
pub struct Subscription {
    rx: Receiver<PushFrame>,
}

impl Subscription {
    /// Waits up to `timeout` for the next push. `Ok(None)` means no
    /// push arrived in time (the feed is simply quiet — not an error).
    ///
    /// # Errors
    ///
    /// [`ClientError::Disconnected`] once the session's reader thread
    /// has exited — the connection is gone and no further push can
    /// ever arrive; reconnect and resubscribe.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<PushFrame>, ClientError> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(ClientError::Disconnected),
        }
    }

    /// Drains any push that already arrived, without blocking.
    pub fn try_recv(&self) -> Option<PushFrame> {
        self.rx.try_recv().ok()
    }
}

/// A session-consistency watermark the client threads through its
/// calls: the highest epoch this session has written or observed.
/// [`Client::insert_tracked`] (and [`Client::write_at`]) raise it to
/// each write's watermark; [`Client::get_at`] sends it as the read's
/// floor and raises it to the epoch the read was served at. The result
/// is read-your-writes plus monotonic reads through **any** replica,
/// with no sticky routing — the token, not the route, carries the
/// session.
///
/// Tokens are plain values: `Copy`, comparable, and safe to hand
/// between threads or even processes (it is just an epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SessionToken {
    epoch: Epoch,
}

impl SessionToken {
    /// The watermark: the oldest epoch any read through this token is
    /// allowed to observe (`0` = unconstrained).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Raises the watermark to `epoch` (never lowers it — that is what
    /// makes reads monotonic).
    pub fn observe(&mut self, epoch: Epoch) {
        self.epoch = self.epoch.max(epoch);
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // Unblock the reader (it is parked in read()) and join it; it
        // drains any still-pending tickets with an error on the way
        // out, so a Ticket outliving its Session never hangs.
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// Demultiplexes response frames to their tickets until the connection
/// dies, then fails every still-pending ticket with the terminal error.
fn reader_loop(shared: &SessionShared, mut reader: BufReader<CountingReader>) {
    let dead = loop {
        match read_response_enveloped(&mut reader) {
            Ok(Some(framed)) => {
                if framed.request_id & PUSH_ID_BASE != 0 {
                    // Server-initiated frame: no ticket ever carried
                    // this id. Route it to the push channel, if one is
                    // installed.
                    if let Response::Push {
                        from,
                        epoch,
                        entries,
                    } = framed.msg
                    {
                        let tx = shared.push_tx.lock().clone();
                        if let Some(tx) = tx {
                            let _ = tx.send(PushFrame {
                                from,
                                epoch,
                                entries,
                                trace: framed.trace,
                            });
                        }
                    }
                    continue;
                }
                let waiter = shared.pending.lock().waiters.remove(&framed.request_id);
                if let Some(tx) = waiter {
                    // Capacity-1 channel, exactly one message per
                    // ticket: send never blocks. A dropped ticket just
                    // discards the response.
                    let _ = tx.send(Ok(framed.msg));
                }
            }
            Ok(None) => break SessionDead::closed(),
            Err(e) => break SessionDead::from_proto(&e),
        }
    };
    let waiters = {
        let mut pending = shared.pending.lock();
        if pending.dead.is_none() {
            pending.dead = Some(dead.clone());
        }
        std::mem::take(&mut pending.waiters)
    };
    for (_, tx) in waiters {
        let _ = tx.send(Err(dead.clone()));
    }
    // Dropping the push sender disconnects any Subscription, so a
    // blocked `recv_timeout` learns the session is gone instead of
    // timing out forever.
    shared.push_tx.lock().take();
}

/// A claim on one in-flight request's eventual response. Obtained from
/// [`Session::submit`]; redeem it with [`wait`](Ticket::wait).
/// Dropping a ticket abandons the request (the server still executes
/// it; the reply is discarded on arrival).
#[must_use = "a Ticket does nothing until wait()ed on"]
pub struct Ticket {
    id: RequestId,
    rx: Receiver<Settled>,
}

impl Ticket {
    /// The correlation id this ticket's request carries on the wire.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Blocks until the response for this ticket's request arrives and
    /// returns it, surfacing server-side errors.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the session died before the response
    /// arrived, [`ClientError::Busy`] if the server shed the request at
    /// its queue-depth bound, and [`ClientError::Server`] for any other
    /// error the server reported.
    pub fn wait(self) -> Result<Response, ClientError> {
        match self.rx.recv() {
            Ok(Ok(Response::Error(WireError::Busy(depth)))) => Err(ClientError::Busy(depth)),
            Ok(Ok(Response::Error(e))) => Err(ClientError::Server(e)),
            Ok(Ok(resp)) => Ok(resp),
            Ok(Err(dead)) => Err(dead.to_client_error()),
            // The reader always settles every pending ticket before
            // exiting, so a closed channel here means the Session (and
            // its reader) are gone entirely.
            Err(_) => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "session dropped before the response arrived",
            ))),
        }
    }
}

/// A blocking connection to a `pathcopy-server`: the serial facade over
/// [`Session`]. Every typed call is `submit + wait` — one round trip —
/// so code that wants strict request/response alternation keeps exactly
/// the old behavior. Use [`Client::session`] (or [`into_session`](Client::into_session))
/// to pipeline on the same connection.
pub struct Client {
    session: Session,
}

impl Client {
    /// Connects (with `TCP_NODELAY`, since the protocol is small framed
    /// request/response round trips).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] from resolving `addr`, establishing the TCP
    /// connection, or configuring the socket.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        Ok(Client {
            session: Session::connect(addr)?,
        })
    }

    /// The underlying pipelined session, for submitting concurrent
    /// requests alongside (or instead of) the typed blocking calls.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Unwraps into the underlying [`Session`].
    pub fn into_session(self) -> Session {
        self.session
    }

    /// Bytes this connection has moved so far, both directions. See
    /// [`Session::wire_bytes`].
    pub fn wire_bytes(&self) -> ByteCountersSnapshot {
        self.session.wire_bytes()
    }

    /// One request/response round trip, surfacing server-side errors.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the transport fails,
    /// [`ClientError::Proto`] if the reply frame cannot be decoded,
    /// [`ClientError::Busy`] if the server shed the request at its
    /// queue-depth bound, and [`ClientError::Server`] if the server
    /// answers with any other error frame. Every typed wrapper below
    /// goes through this method and inherits these failure modes;
    /// wrappers additionally return [`ClientError::Unexpected`] if the
    /// reply kind does not match the request (a protocol bug, not a
    /// runtime condition), and their docs note which [`WireError`]s the
    /// server sends on that request.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.session.call(req)
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn get(&mut self, key: i64) -> Result<Option<i64>, ClientError> {
        match self.call(&Request::Get { key })? {
            Response::Got(v) => Ok(v),
            _ => Err(ClientError::Unexpected("Get")),
        }
    }

    /// Inserts `key -> value`, returning the previous value if any.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn insert(&mut self, key: i64, value: i64) -> Result<Option<i64>, ClientError> {
        match self.call(&Request::Insert { key, value })? {
            Response::Inserted(v) => Ok(v),
            _ => Err(ClientError::Unexpected("Insert")),
        }
    }

    /// Removes `key`, returning its value if present.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn remove(&mut self, key: i64) -> Result<Option<i64>, ClientError> {
        match self.call(&Request::Remove { key })? {
            Response::Removed(v) => Ok(v),
            _ => Err(ClientError::Unexpected("Remove")),
        }
    }

    /// Atomic compare-and-set; `Ok(true)` if the guard matched and the
    /// write was applied.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes (a non-matching
    /// guard is `Ok(false)`, not an error).
    pub fn cas(
        &mut self,
        key: i64,
        expected: Option<i64>,
        new: Option<i64>,
    ) -> Result<bool, ClientError> {
        match self.call(&Request::Cas { key, expected, new })? {
            Response::CasApplied(ok) => Ok(ok),
            _ => Err(ClientError::Unexpected("Cas")),
        }
    }

    /// Applies a batch of operations in one round trip — the same
    /// [`BatchOp`]s `ShardedTreapMap::transact` takes, with the same
    /// all-or-nothing guarantee when the served backend supports atomic
    /// batches.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes, including
    /// [`WireError::TooLarge`] if the reply would exceed the frame cap
    /// (split the batch).
    pub fn batch(
        &mut self,
        ops: &[BatchOp<i64, i64>],
    ) -> Result<Vec<BatchResult<i64>>, ClientError> {
        match self.call(&Request::Batch {
            ops: ops.to_vec(),
            guarded: false,
        })? {
            Response::Batch(results) => Ok(results),
            _ => Err(ClientError::Unexpected("Batch")),
        }
    }

    /// Guarded (Sinfonia-style) batch: commits all-or-nothing like
    /// [`batch`](Self::batch), except a failing [`BatchOp::Cas`] guard
    /// aborts the **whole batch** with zero writes. The outer `Result`
    /// is transport/server failure; the inner one is the transaction
    /// outcome — `Err` carries the failed guard indices (into `ops`,
    /// ascending).
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes; an aborted batch
    /// is the `Ok(Err(_))` value, not a [`ClientError`].
    #[allow(clippy::type_complexity)]
    pub fn batch_guarded(
        &mut self,
        ops: &[BatchOp<i64, i64>],
    ) -> Result<Result<Vec<BatchResult<i64>>, Vec<u32>>, ClientError> {
        match self.call(&Request::Batch {
            ops: ops.to_vec(),
            guarded: true,
        })? {
            Response::Batch(results) => Ok(Ok(results)),
            Response::BatchAborted(failed) => Ok(Err(failed)),
            _ => Err(ClientError::Unexpected("Batch(guarded)")),
        }
    }

    /// Publishes the primary's current state as the next feed epoch
    /// (the version replicas will sync to) and returns that epoch.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn publish(&mut self) -> Result<Epoch, ClientError> {
        match self.call(&Request::Publish)? {
            Response::Published(epoch) => Ok(epoch),
            _ => Err(ClientError::Unexpected("Publish")),
        }
    }

    /// [`publish`](Self::publish) with a trace context stamped on the
    /// request: a tracing server records the publish's whole causal
    /// fan-out — queue wait, execute, durable append, push delivery,
    /// relay re-serve — under `ctx.trace_id`, across every node the
    /// epoch reaches. Collect the spans with
    /// [`trace_dump`](Self::trace_dump) per node and stitch them with
    /// [`render_trace`](pathcopy_trace::render_trace).
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn publish_traced(&mut self, ctx: &TraceContext) -> Result<Epoch, ClientError> {
        match self
            .session
            .submit_traced(&Request::Publish, Some(ctx))?
            .wait()?
        {
            Response::Published(epoch) => Ok(epoch),
            _ => Err(ClientError::Unexpected("Publish(traced)")),
        }
    }

    /// Zeroes every since-boot latency histogram on the server — the
    /// per-tag stage recorders and every registered source (durable
    /// append/fsync, replica apply/lag). Gauges and counters are left
    /// alone. Idempotent; see `Request::ResetMetrics`.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn reset_metrics(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::ResetMetrics)? {
            Response::MetricsReset => Ok(()),
            _ => Err(ClientError::Unexpected("ResetMetrics")),
        }
    }

    /// Dumps the server's trace flight recorder: its node name and
    /// every span currently readable (ring + pinned slow requests). An
    /// empty node name means tracing is disabled on that server.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn trace_dump(&mut self) -> Result<(String, Vec<SpanRecord>), ClientError> {
        match self.call(&Request::TraceDump)? {
            Response::TraceDump { node, spans } => Ok((node, spans)),
            _ => Err(ClientError::Unexpected("TraceDump")),
        }
    }

    /// One write plus its session watermark: applies `op` on the
    /// primary and returns the result together with the lowest epoch
    /// guaranteed to contain the write. Feed the watermark into
    /// [`SessionToken::observe`] and read-your-writes holds through
    /// **any** replica serving [`get_at`](Self::get_at).
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn write_at(
        &mut self,
        op: BatchOp<i64, i64>,
    ) -> Result<(BatchResult<i64>, Epoch), ClientError> {
        match self.call(&Request::WriteAt { op })? {
            Response::WroteAt { result, watermark } => Ok((result, watermark)),
            _ => Err(ClientError::Unexpected("WriteAt")),
        }
    }

    /// [`insert`](Self::insert) that also raises `token` to the write's
    /// watermark — the session-consistent spelling of an insert.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn insert_tracked(
        &mut self,
        key: i64,
        value: i64,
        token: &mut SessionToken,
    ) -> Result<Option<i64>, ClientError> {
        let (result, watermark) = self.write_at(BatchOp::Insert(key, value))?;
        token.observe(watermark);
        match result {
            BatchResult::Inserted(prev) => Ok(prev),
            _ => Err(ClientError::Unexpected("WriteAt(Insert)")),
        }
    }

    /// Session-consistent read: asks the server for `key` at or after
    /// `token`'s watermark, waiting up to `wait_ms` for the server's
    /// feed to reach it. On success the token is raised to the epoch
    /// the read was served at, which is what makes successive reads
    /// monotonic even across different replicas.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`]`(`[`WireError::Stale`]`)` if the server
    /// did not reach the watermark in time — the payload is the epoch
    /// it *is* at, so the caller can fall back to the primary or retry;
    /// plus the shared [`call`](Self::call) failure modes.
    pub fn get_at(
        &mut self,
        key: i64,
        token: &mut SessionToken,
        wait_ms: u32,
    ) -> Result<Option<i64>, ClientError> {
        match self.call(&Request::GetAt {
            key,
            min_epoch: token.epoch(),
            wait_ms,
        })? {
            Response::GotAt { value, epoch } => {
                token.observe(epoch);
                Ok(value)
            }
            _ => Err(ClientError::Unexpected("GetAt")),
        }
    }

    /// Reads the server's operational gauges in one round trip.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn gauges(&mut self) -> Result<ServerGauges, ClientError> {
        match self.call(&Request::Gauges)? {
            Response::Gauges(g) => Ok(g),
            _ => Err(ClientError::Unexpected("Gauges")),
        }
    }

    /// Scrapes the server's per-stage latency histograms in one round
    /// trip: one percentile row per (stage, request-tag) pair that has
    /// recorded samples. Render with
    /// [`render_text`](crate::metrics::render_text) for the
    /// Prometheus-style text form.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn metrics(&mut self) -> Result<Vec<StageSummary>, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(rows) => Ok(rows),
            _ => Err(ClientError::Unexpected("Metrics")),
        }
    }

    /// Reads the feed's bounds: head epoch, oldest retained epoch, ring
    /// capacity.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn feed_info(&mut self) -> Result<FeedInfo, ClientError> {
        match self.call(&Request::Subscribe)? {
            Response::FeedInfo(info) => Ok(info),
            _ => Err(ClientError::Unexpected("Subscribe")),
        }
    }

    /// Pulls everything that changed between published epoch `from` and
    /// the feed head: `(head_epoch, changes)`. Fails with
    /// [`WireError::EpochRetired`] when `from` fell out of the feed ring
    /// (lagged too far — fall back to [`full_sync_page`](Self::full_sync_page)).
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes;
    /// [`WireError::EpochRetired`] as above, and
    /// [`WireError::TooLarge`] if the accumulated diff cannot fit one
    /// frame (sync more often, or full-sync).
    pub fn pull_diff(
        &mut self,
        from: Epoch,
    ) -> Result<(Epoch, Vec<DiffEntry<i64, i64>>), ClientError> {
        match self.call(&Request::PullDiff { from })? {
            Response::EpochDiff { to, entries } => Ok((to, entries)),
            _ => Err(ClientError::Unexpected("PullDiff")),
        }
    }

    /// One bounded page of a full-state sync: `(epoch, entries, done)`.
    /// Start with `epoch: None` (the server pins a fresh epoch), then
    /// pass the returned epoch and the last key of each page until
    /// `done`. `limit = 0` asks for the server's largest page.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes;
    /// [`WireError::EpochRetired`] if the epoch being paged fell out of
    /// the feed ring mid-sync (restart with `epoch: None`).
    #[allow(clippy::type_complexity)]
    pub fn full_sync_page(
        &mut self,
        epoch: Option<Epoch>,
        after: Option<i64>,
        limit: u32,
    ) -> Result<(Epoch, Vec<(i64, i64)>, bool), ClientError> {
        match self.call(&Request::FullSync {
            epoch,
            after,
            limit,
        })? {
            Response::SyncPage {
                epoch,
                entries,
                done,
            } => Ok((epoch, entries, done)),
            _ => Err(ClientError::Unexpected("FullSync")),
        }
    }

    /// Pins a coherent snapshot in the server's version table and
    /// returns its id (readable from any connection until
    /// [`release`](Self::release)d).
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes;
    /// [`WireError::SnapshotLimit`] if the version table is full.
    pub fn snapshot(&mut self) -> Result<SnapshotId, ClientError> {
        match self.call(&Request::Snapshot)? {
            Response::SnapshotTaken(id) => Ok(id),
            _ => Err(ClientError::Unexpected("Snapshot")),
        }
    }

    /// Ordered scan of `range` on a pinned snapshot (`Some(id)`) or on a
    /// fresh coherent snapshot (`None`). At most `limit` entries come
    /// back (`0` = unlimited); the second component is `false` when the
    /// scan was truncated.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes;
    /// [`WireError::UnknownSnapshot`] for a released or never-issued
    /// id, [`WireError::TooLarge`] if an unlimited scan cannot fit one
    /// frame (page with `limit`).
    pub fn range<R: RangeBounds<i64>>(
        &mut self,
        snapshot: Option<SnapshotId>,
        range: R,
        limit: u32,
    ) -> Result<(Vec<(i64, i64)>, bool), ClientError> {
        let req = Request::Range {
            snapshot,
            lo: clone_bound(range.start_bound()),
            hi: clone_bound(range.end_bound()),
            limit,
        };
        match self.call(&req)? {
            Response::Entries { entries, complete } => Ok((entries, complete)),
            _ => Err(ClientError::Unexpected("Range")),
        }
    }

    /// What changed between the pinned snapshot `from` and `to`
    /// (`None` = a fresh snapshot taken now), in ascending key order.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes;
    /// [`WireError::UnknownSnapshot`],
    /// [`WireError::SnapshotMismatch`] for snapshots from incompatible
    /// backends, [`WireError::TooLarge`] for a diff that cannot fit one
    /// frame (diff nearer snapshots).
    pub fn diff(
        &mut self,
        from: SnapshotId,
        to: Option<SnapshotId>,
    ) -> Result<Vec<DiffEntry<i64, i64>>, ClientError> {
        match self.call(&Request::Diff { from, to })? {
            Response::Diff(entries) => Ok(entries),
            _ => Err(ClientError::Unexpected("Diff")),
        }
    }

    /// Drops a pinned snapshot; `Ok(true)` if it existed.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn release(&mut self, snapshot: SnapshotId) -> Result<bool, ClientError> {
        match self.call(&Request::Release { snapshot })? {
            Response::Released(existed) => Ok(existed),
            _ => Err(ClientError::Unexpected("Release")),
        }
    }

    /// Reads the backend's operation statistics and the server's
    /// version-table size.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::Unexpected("Stats")),
        }
    }
}

fn clone_bound(b: Bound<&i64>) -> Bound<i64> {
    match b {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(&k) => Bound::Included(k),
        Bound::Excluded(&k) => Bound::Excluded(k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ShardedServe;
    use crate::server::{spawn, ServerConfig};

    fn sharded_server(config: ServerConfig) -> crate::server::ServerHandle {
        spawn(Box::new(ShardedServe::with_shards(8)), config).expect("bind ephemeral port")
    }

    #[test]
    fn pipelined_tickets_resolve_by_id_not_order() {
        let server = sharded_server(ServerConfig::default());
        let session = Session::connect(server.addr()).unwrap();

        // Submit a window of writes without waiting, then redeem the
        // tickets in reverse submission order.
        let tickets: Vec<Ticket> = (0..32)
            .map(|k| {
                session
                    .submit(&Request::Insert {
                        key: k,
                        value: k * 100,
                    })
                    .unwrap()
            })
            .collect();
        for ticket in tickets.into_iter().rev() {
            match ticket.wait().unwrap() {
                Response::Inserted(prev) => assert_eq!(prev, None),
                other => panic!("unexpected response: {other:?}"),
            }
        }

        // And reads pair with their keys even when interleaved.
        let reads: Vec<(i64, Ticket)> = (0..32)
            .map(|k| (k, session.submit(&Request::Get { key: k }).unwrap()))
            .collect();
        for (k, ticket) in reads {
            match ticket.wait().unwrap() {
                Response::Got(v) => assert_eq!(v, Some(k * 100)),
                other => panic!("unexpected response: {other:?}"),
            }
        }
        server.shutdown();
    }

    #[test]
    fn blocking_client_is_submit_plus_wait() {
        let server = sharded_server(ServerConfig::default());
        let mut client = Client::connect(server.addr()).unwrap();
        assert_eq!(client.insert(7, 70).unwrap(), None);
        assert_eq!(client.get(7).unwrap(), Some(70));
        assert_eq!(client.remove(7).unwrap(), Some(70));
        server.shutdown();
    }

    #[test]
    fn pending_tickets_fail_cleanly_when_the_server_goes_away() {
        let server = sharded_server(ServerConfig::default());
        let session = Session::connect(server.addr()).unwrap();
        // Prove the session is live first.
        session
            .submit(&Request::Insert { key: 1, value: 1 })
            .unwrap()
            .wait()
            .unwrap();
        server.shutdown();
        // Every outcome must be an error, never a hang: either the
        // submit itself fails (connection reset already observed) or
        // the ticket resolves to Disconnected (clean EOF at a frame
        // boundary) or Io (reset raced the read).
        match session.submit(&Request::Get { key: 1 }) {
            Ok(ticket) => match ticket.wait() {
                Err(ClientError::Io(_) | ClientError::Disconnected) => {}
                other => panic!("expected Io/Disconnected error, got {other:?}"),
            },
            Err(ClientError::Io(_) | ClientError::Disconnected) => {}
            Err(other) => panic!("expected Io/Disconnected error, got {other:?}"),
        }
        // And the session stays failed-fast afterwards.
        match session.submit(&Request::Get { key: 1 }) {
            Err(ClientError::Io(_) | ClientError::Disconnected) => {}
            Ok(ticket) => match ticket.wait() {
                Err(ClientError::Io(_) | ClientError::Disconnected) => {}
                other => panic!("expected Io/Disconnected error, got {other:?}"),
            },
            Err(other) => panic!("expected Io/Disconnected error, got {other:?}"),
        }
    }

    #[test]
    fn orphaned_tickets_resolve_disconnected_on_clean_eof() {
        // A mock server that reads exactly one frame and then closes the
        // socket cleanly — a controlled EOF at a frame boundary, unlike
        // the real-shutdown test above where a reset can race the close.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            // Read the length prefix, then the body, then hang up
            // without answering.
            let mut len = [0u8; 4];
            conn.read_exact(&mut len).unwrap();
            let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
            conn.read_exact(&mut body).unwrap();
            drop(conn);
        });
        let session = Session::connect(addr).unwrap();
        let ticket = session.submit(&Request::Get { key: 1 }).unwrap();
        match ticket.wait() {
            Err(ClientError::Disconnected) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
        // Later submits fail the same way — the session remembers why
        // it died.
        match session.submit(&Request::Get { key: 2 }) {
            Err(ClientError::Disconnected) => {}
            Ok(ticket) => match ticket.wait() {
                Err(ClientError::Disconnected) => {}
                other => panic!("expected Disconnected, got {other:?}"),
            },
            Err(other) => panic!("expected Disconnected, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn subscribers_receive_live_pushes_and_catch_up() {
        let server = sharded_server(ServerConfig::default());

        // Seed two epochs before anyone subscribes.
        let mut writer = Client::connect(server.addr()).unwrap();
        writer.insert(1, 10).unwrap();
        writer.publish().unwrap(); // epoch 1: {1:10}
        writer.insert(2, 20).unwrap();
        let head = writer.publish().unwrap(); // epoch 2: + {2:20}
        assert_eq!(head, 2);

        // Subscribe from epoch 1: the ack is followed by one catch-up
        // push covering exactly 1 -> 2.
        let sub_session = Session::connect(server.addr()).unwrap();
        let (info, sub) = sub_session.subscribe(1).unwrap();
        assert_eq!(info.head, 2);
        let catch_up = sub
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .expect("catch-up push");
        assert_eq!((catch_up.from, catch_up.epoch), (1, 2));
        assert_eq!(catch_up.entries, vec![DiffEntry::Added(2, 20)]);

        // A live publish now arrives without any request from us.
        writer.insert(3, 30).unwrap();
        writer.publish().unwrap();
        let live = sub
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .expect("live push");
        assert_eq!((live.from, live.epoch), (2, 3));
        assert_eq!(live.entries, vec![DiffEntry::Added(3, 30)]);

        // The gauges frame sees the subscriber and both pushes.
        let g = writer.gauges().unwrap();
        assert_eq!(g.subscribers, 1);
        assert!(g.pushes >= 2, "pushes gauge: {}", g.pushes);
        assert_eq!(g.feed_head, 3);
        assert!(g.wire_sent > 0 && g.wire_received > 0);
        server.shutdown();
    }

    #[test]
    fn write_at_watermarks_cover_the_write() {
        let server = sharded_server(ServerConfig::default());
        let mut client = Client::connect(server.addr()).unwrap();
        let mut token = SessionToken::default();

        assert_eq!(client.insert_tracked(7, 70, &mut token).unwrap(), None);
        let watermark = token.epoch();
        assert!(watermark >= 1, "watermark must name a future epoch");

        // Nothing published yet: a bounded wait below the watermark
        // times out with the server's current epoch.
        match client.get_at(7, &mut token, 10) {
            Err(ClientError::Server(WireError::Stale(at))) => assert!(at < watermark),
            other => panic!("expected Stale, got {other:?}"),
        }

        // Publishing reaches the watermark; the read now serves and
        // raises the token to the served epoch.
        client.publish().unwrap();
        assert_eq!(client.get_at(7, &mut token, 1000).unwrap(), Some(70));
        assert!(token.epoch() >= watermark);
        server.shutdown();
    }

    #[test]
    fn client_error_converts_to_io_error_for_replica_call_sites() {
        let busy: io::Error = ClientError::Busy(64).into();
        assert_eq!(busy.kind(), io::ErrorKind::Other);
        let inner = io::Error::new(io::ErrorKind::ConnectionReset, "boom");
        let through: io::Error = ClientError::Io(inner).into();
        assert_eq!(through.kind(), io::ErrorKind::ConnectionReset);
    }
}
