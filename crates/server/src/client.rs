//! The blocking client: one reused TCP connection, typed calls.
//!
//! [`Client`] opens a single connection and reuses it for every call
//! (requests and responses alternate strictly, so no multiplexing state
//! is needed). The API mirrors the engine's: [`Client::batch`] takes the
//! same [`BatchOp`] values as
//! [`ShardedTreapMap::transact`](pathcopy_concurrent::ShardedTreapMap::transact)
//! and returns the same [`BatchResult`]s, and [`Client::diff`] returns
//! [`DiffEntry`] — code written against the
//! in-process map moves to the network client by swapping the receiver.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

use pathcopy_concurrent::{BatchOp, BatchResult};
use pathcopy_core::{ByteCounters, ByteCountersSnapshot, DiffEntry};

use crate::proto::{
    read_response, write_request, Epoch, FeedInfo, ProtoError, Request, Response, SnapshotId,
    WireError, WireStats,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, write, or read).
    Io(io::Error),
    /// The response frame could not be decoded.
    Proto(ProtoError),
    /// The server answered with an error.
    Server(WireError),
    /// The server answered with a response of the wrong kind for the
    /// request sent (a protocol bug, not an expected runtime condition).
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response kind to {what}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(e) => ClientError::Io(e),
            other => ClientError::Proto(other),
        }
    }
}

/// [`Read`] half of a connection that counts bytes into a shared
/// [`ByteCounters`] block.
struct CountingReader {
    inner: TcpStream,
    wire: Arc<ByteCounters>,
}

impl Read for CountingReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.wire.add_received(n as u64);
        Ok(n)
    }
}

/// [`Write`] half of a connection that counts bytes into a shared
/// [`ByteCounters`] block.
struct CountingWriter {
    inner: TcpStream,
    wire: Arc<ByteCounters>,
}

impl Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.wire.add_sent(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A blocking connection to a `pathcopy-server`.
pub struct Client {
    reader: BufReader<CountingReader>,
    writer: BufWriter<CountingWriter>,
    wire: Arc<ByteCounters>,
}

impl Client {
    /// Connects (with `TCP_NODELAY`, since the protocol is small framed
    /// request/response round trips).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from resolving `addr`, establishing the TCP
    /// connection, or configuring the socket.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        let wire = Arc::new(ByteCounters::new());
        Ok(Client {
            reader: BufReader::new(CountingReader {
                inner: read_half,
                wire: Arc::clone(&wire),
            }),
            writer: BufWriter::new(CountingWriter {
                inner: stream,
                wire: Arc::clone(&wire),
            }),
            wire,
        })
    }

    /// Bytes this connection has moved so far, both directions. The
    /// counters are exact at request/response boundaries (the writer is
    /// flushed after every request), which is what the replication layer
    /// uses to prove that diff catch-up transfers O(changes) bytes while
    /// a full sync transfers O(n).
    pub fn wire_bytes(&self) -> ByteCountersSnapshot {
        self.wire.snapshot()
    }

    /// One request/response round trip, surfacing server-side errors.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the transport fails,
    /// [`ClientError::Proto`] if the reply frame cannot be decoded, and
    /// [`ClientError::Server`] if the server answers with an error
    /// frame. Every typed wrapper below goes through this method and
    /// inherits these failure modes; wrappers additionally return
    /// [`ClientError::Unexpected`] if the reply kind does not match the
    /// request (a protocol bug, not a runtime condition), and their
    /// docs note which [`WireError`]s the server sends on that request.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_request(&mut self.writer, req)?;
        self.writer.flush()?;
        match read_response(&mut self.reader)? {
            Response::Error(e) => Err(ClientError::Server(e)),
            resp => Ok(resp),
        }
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn get(&mut self, key: i64) -> Result<Option<i64>, ClientError> {
        match self.call(&Request::Get { key })? {
            Response::Got(v) => Ok(v),
            _ => Err(ClientError::Unexpected("Get")),
        }
    }

    /// Inserts `key -> value`, returning the previous value if any.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn insert(&mut self, key: i64, value: i64) -> Result<Option<i64>, ClientError> {
        match self.call(&Request::Insert { key, value })? {
            Response::Inserted(v) => Ok(v),
            _ => Err(ClientError::Unexpected("Insert")),
        }
    }

    /// Removes `key`, returning its value if present.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn remove(&mut self, key: i64) -> Result<Option<i64>, ClientError> {
        match self.call(&Request::Remove { key })? {
            Response::Removed(v) => Ok(v),
            _ => Err(ClientError::Unexpected("Remove")),
        }
    }

    /// Atomic compare-and-set; `Ok(true)` if the guard matched and the
    /// write was applied.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes (a non-matching
    /// guard is `Ok(false)`, not an error).
    pub fn cas(
        &mut self,
        key: i64,
        expected: Option<i64>,
        new: Option<i64>,
    ) -> Result<bool, ClientError> {
        match self.call(&Request::Cas { key, expected, new })? {
            Response::CasApplied(ok) => Ok(ok),
            _ => Err(ClientError::Unexpected("Cas")),
        }
    }

    /// Applies a batch of operations in one round trip — the same
    /// [`BatchOp`]s `ShardedTreapMap::transact` takes, with the same
    /// all-or-nothing guarantee when the served backend supports atomic
    /// batches.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes, including
    /// [`WireError::TooLarge`] if the reply would exceed the frame cap
    /// (split the batch).
    pub fn batch(
        &mut self,
        ops: &[BatchOp<i64, i64>],
    ) -> Result<Vec<BatchResult<i64>>, ClientError> {
        match self.call(&Request::Batch {
            ops: ops.to_vec(),
            guarded: false,
        })? {
            Response::Batch(results) => Ok(results),
            _ => Err(ClientError::Unexpected("Batch")),
        }
    }

    /// Guarded (Sinfonia-style) batch: commits all-or-nothing like
    /// [`batch`](Self::batch), except a failing [`BatchOp::Cas`] guard
    /// aborts the **whole batch** with zero writes. The outer `Result`
    /// is transport/server failure; the inner one is the transaction
    /// outcome — `Err` carries the failed guard indices (into `ops`,
    /// ascending).
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes; an aborted batch
    /// is the `Ok(Err(_))` value, not a [`ClientError`].
    #[allow(clippy::type_complexity)]
    pub fn batch_guarded(
        &mut self,
        ops: &[BatchOp<i64, i64>],
    ) -> Result<Result<Vec<BatchResult<i64>>, Vec<u32>>, ClientError> {
        match self.call(&Request::Batch {
            ops: ops.to_vec(),
            guarded: true,
        })? {
            Response::Batch(results) => Ok(Ok(results)),
            Response::BatchAborted(failed) => Ok(Err(failed)),
            _ => Err(ClientError::Unexpected("Batch(guarded)")),
        }
    }

    /// Publishes the primary's current state as the next feed epoch
    /// (the version replicas will sync to) and returns that epoch.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn publish(&mut self) -> Result<Epoch, ClientError> {
        match self.call(&Request::Publish)? {
            Response::Published(epoch) => Ok(epoch),
            _ => Err(ClientError::Unexpected("Publish")),
        }
    }

    /// Reads the feed's bounds: head epoch, oldest retained epoch, ring
    /// capacity.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn feed_info(&mut self) -> Result<FeedInfo, ClientError> {
        match self.call(&Request::Subscribe)? {
            Response::FeedInfo(info) => Ok(info),
            _ => Err(ClientError::Unexpected("Subscribe")),
        }
    }

    /// Pulls everything that changed between published epoch `from` and
    /// the feed head: `(head_epoch, changes)`. Fails with
    /// [`WireError::EpochRetired`] when `from` fell out of the feed ring
    /// (lagged too far — fall back to [`full_sync_page`](Self::full_sync_page)).
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes;
    /// [`WireError::EpochRetired`] as above, and
    /// [`WireError::TooLarge`] if the accumulated diff cannot fit one
    /// frame (sync more often, or full-sync).
    pub fn pull_diff(
        &mut self,
        from: Epoch,
    ) -> Result<(Epoch, Vec<DiffEntry<i64, i64>>), ClientError> {
        match self.call(&Request::PullDiff { from })? {
            Response::EpochDiff { to, entries } => Ok((to, entries)),
            _ => Err(ClientError::Unexpected("PullDiff")),
        }
    }

    /// One bounded page of a full-state sync: `(epoch, entries, done)`.
    /// Start with `epoch: None` (the server pins a fresh epoch), then
    /// pass the returned epoch and the last key of each page until
    /// `done`. `limit = 0` asks for the server's largest page.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes;
    /// [`WireError::EpochRetired`] if the epoch being paged fell out of
    /// the feed ring mid-sync (restart with `epoch: None`).
    #[allow(clippy::type_complexity)]
    pub fn full_sync_page(
        &mut self,
        epoch: Option<Epoch>,
        after: Option<i64>,
        limit: u32,
    ) -> Result<(Epoch, Vec<(i64, i64)>, bool), ClientError> {
        match self.call(&Request::FullSync {
            epoch,
            after,
            limit,
        })? {
            Response::SyncPage {
                epoch,
                entries,
                done,
            } => Ok((epoch, entries, done)),
            _ => Err(ClientError::Unexpected("FullSync")),
        }
    }

    /// Pins a coherent snapshot in the server's version table and
    /// returns its id (readable from any connection until
    /// [`release`](Self::release)d).
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes;
    /// [`WireError::SnapshotLimit`] if the version table is full.
    pub fn snapshot(&mut self) -> Result<SnapshotId, ClientError> {
        match self.call(&Request::Snapshot)? {
            Response::SnapshotTaken(id) => Ok(id),
            _ => Err(ClientError::Unexpected("Snapshot")),
        }
    }

    /// Ordered scan of `range` on a pinned snapshot (`Some(id)`) or on a
    /// fresh coherent snapshot (`None`). At most `limit` entries come
    /// back (`0` = unlimited); the second component is `false` when the
    /// scan was truncated.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes;
    /// [`WireError::UnknownSnapshot`] for a released or never-issued
    /// id, [`WireError::TooLarge`] if an unlimited scan cannot fit one
    /// frame (page with `limit`).
    pub fn range<R: RangeBounds<i64>>(
        &mut self,
        snapshot: Option<SnapshotId>,
        range: R,
        limit: u32,
    ) -> Result<(Vec<(i64, i64)>, bool), ClientError> {
        let req = Request::Range {
            snapshot,
            lo: clone_bound(range.start_bound()),
            hi: clone_bound(range.end_bound()),
            limit,
        };
        match self.call(&req)? {
            Response::Entries { entries, complete } => Ok((entries, complete)),
            _ => Err(ClientError::Unexpected("Range")),
        }
    }

    /// What changed between the pinned snapshot `from` and `to`
    /// (`None` = a fresh snapshot taken now), in ascending key order.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes;
    /// [`WireError::UnknownSnapshot`],
    /// [`WireError::SnapshotMismatch`] for snapshots from incompatible
    /// backends, [`WireError::TooLarge`] for a diff that cannot fit one
    /// frame (diff nearer snapshots).
    pub fn diff(
        &mut self,
        from: SnapshotId,
        to: Option<SnapshotId>,
    ) -> Result<Vec<DiffEntry<i64, i64>>, ClientError> {
        match self.call(&Request::Diff { from, to })? {
            Response::Diff(entries) => Ok(entries),
            _ => Err(ClientError::Unexpected("Diff")),
        }
    }

    /// Drops a pinned snapshot; `Ok(true)` if it existed.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn release(&mut self, snapshot: SnapshotId) -> Result<bool, ClientError> {
        match self.call(&Request::Release { snapshot })? {
            Response::Released(existed) => Ok(existed),
            _ => Err(ClientError::Unexpected("Release")),
        }
    }

    /// Reads the backend's operation statistics and the server's
    /// version-table size.
    ///
    /// # Errors
    ///
    /// The shared [`call`](Self::call) failure modes.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::Unexpected("Stats")),
        }
    }
}

fn clone_bound(b: Bound<&i64>) -> Bound<i64> {
    match b {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(&k) => Bound::Included(k),
        Bound::Excluded(&k) => Bound::Excluded(k),
    }
}
