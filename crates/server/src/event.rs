//! The readiness-driven server core: one event-loop thread multiplexing
//! every connection, with the [`ThreadPool`](crate::pool::ThreadPool)
//! demoted from "one worker per connection" to what it should have been
//! all along — an execution stage for backend work.
//!
//! The old core parked one pool worker in a blocking read per
//! connection, so concurrent connections were capped at the worker
//! count. Here the loop owns every socket nonblockingly:
//!
//! * **accepts** are drained in bursts (at most
//!   [`Tunables::backlog`] per readiness wake) and refused above
//!   [`Tunables::max_conns`];
//! * **reads** append to a per-connection buffer that is parsed into
//!   whole frames; each decoded request is dispatched to the pool,
//!   which computes the reply and encodes it off the loop thread;
//! * **completions** return through a queue + self-wake pipe (a
//!   `UnixStream` pair — `std` has no portable pipe) and are appended
//!   to the connection's write queue;
//! * **writes** drain the queue with vectored writes, so replies that
//!   piled up while the socket was busy leave in one syscall;
//! * **admission control** sheds any request that would put a
//!   connection past [`Tunables::queue_depth`] in-flight requests with
//!   an immediate [`WireError::Busy`] carrying the bound — the client
//!   sees backpressure instead of unbounded server-side queueing.
//!
//! Because requests from one connection run on a pool of workers,
//! pipelined requests may complete **out of order**; each reply's
//! envelope echoes its request id (see [`crate::proto`]), which is the
//! whole point of the v3 envelope. An idle connection costs one fd and
//! a couple of buffers — no thread — which is what lets the server
//! hold thousands of mostly-idle subscribers.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use pathcopy_core::DiffEntry;
use pathcopy_metrics::Stage;
use pathcopy_trace::TraceContext;

use crate::backend::ServeSnapshot;
use crate::feed::EpochFanout;
use crate::poll::{Interest, PollEvent, Poller};
use crate::pool::ThreadPool;
use crate::proto::{
    response_frame, response_frame_traced, Epoch, Request, RequestId, Response, WireError,
    MAX_FRAME_LEN, PROTO_TRACE_FLAG, PROTO_V2, PROTO_VERSION, PUSH_ID_BASE,
};
use crate::server::{handle_request, Shared};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Read chunk size; one such buffer lives on the loop's stack.
const READ_CHUNK: usize = 16 * 1024;

/// Cap on the number of frames batched into one vectored write.
const MAX_IOVECS: usize = 64;

/// Push-delivery backpressure bound: a subscriber whose write queue
/// already holds this many frames when another push arrives is demoted
/// — unregistered, the frame dropped — rather than buffered without
/// bound. A demoted subscriber discovers the gap on its next delivery
/// (or timeout), catches up via `PullDiff`, and resubscribes.
const PUSH_OUTQ_MAX: usize = 32;

/// Event-core knobs, split out of `ServerConfig` by `spawn`.
pub(crate) struct Tunables {
    /// Max accepts drained per listener readiness wake.
    pub(crate) backlog: usize,
    /// Max simultaneous connections; accepts beyond it are refused.
    pub(crate) max_conns: usize,
    /// Max in-flight (dispatched, not yet answered) requests per
    /// connection before shedding with [`WireError::Busy`].
    pub(crate) queue_depth: usize,
}

/// A finished request on its way back from a pool worker: the
/// connection it belongs to and the fully encoded reply frame.
struct Completion {
    conn: u64,
    frame: Vec<u8>,
    /// Server-initiated push frame: answers no request, so it neither
    /// decrements the connection's in-flight count nor bypasses the
    /// subscriber backpressure bound ([`PUSH_OUTQ_MAX`]).
    push: bool,
    /// Write/flush stage tracing: the request tag and the moment the
    /// encoded reply left its worker. `None` when metrics are disabled
    /// or the frame is not a traced reply.
    timing: Option<(u8, Instant)>,
    /// Span breadcrumb for a request carrying a trace context; closes
    /// the write/flush span (and judges the request slow) when the
    /// frame's last byte reaches the kernel.
    trace: Option<TraceOut>,
}

/// Trace breadcrumb riding a reply frame through the completion queue
/// to the flush stage: enough to close the per-request write/flush
/// span and decide whether the whole request breached `slow_ms`.
#[derive(Clone, Copy)]
struct TraceOut {
    /// The request's incoming context (write/flush is a sibling of
    /// queue-wait and execute under the same upstream parent).
    ctx: TraceContext,
    /// When the decoded request was accepted off the wire — the
    /// request's end-to-end anchor on this node.
    accepted: Instant,
    /// When the encoded reply left its worker: the write span's start.
    write_start: Instant,
    /// Request tag byte, for the span's `tag` field.
    tag: u8,
    /// Epoch the reply names (publish/write-at), `0` otherwise.
    epoch: u64,
}

/// The worker→loop return path: a queue plus the write end of the
/// self-wake pipe, poked once per empty→non-empty transition.
pub(crate) struct Completions {
    queue: Mutex<VecDeque<Completion>>,
    wake_tx: UnixStream,
}

impl Completions {
    pub(crate) fn new(wake_tx: UnixStream) -> Self {
        Completions {
            queue: Mutex::new(VecDeque::new()),
            wake_tx,
        }
    }

    fn push(&self, completion: Completion) {
        let was_empty = {
            let mut queue = self.queue.lock();
            let was_empty = queue.is_empty();
            queue.push_back(completion);
            was_empty
        };
        // One wake byte per transition keeps the pipe from filling
        // under load; a WouldBlock here means wakes are already
        // pending, which serves the same purpose. Invariant: a
        // non-empty queue always has an unconsumed wake byte (or a
        // drain already in progress), so no completion is stranded.
        if was_empty {
            let _ = (&self.wake_tx).write(&[1u8]);
        }
    }

    fn drain(&self) -> VecDeque<Completion> {
        std::mem::take(&mut *self.queue.lock())
    }
}

/// The push fan-out: the set of connections registered with
/// `SubscribePush`, fed by the feed's [`EpochFanout`] hook. Each
/// published epoch's diff is encoded **once** and a clone of the frame
/// is enqueued per subscriber through the normal completion path, so
/// pushes ride the same queue + self-wake machinery replies do and the
/// loop thread stays the only writer of any socket.
pub(crate) struct PushHub {
    subs: Mutex<HashSet<u64>>,
    completions: Arc<Completions>,
    /// Push frames enqueued to subscribers, ever.
    pub(crate) pushes: AtomicU64,
    /// Subscribers demoted for a full outbox, ever.
    pub(crate) demotions: AtomicU64,
}

impl PushHub {
    pub(crate) fn new(completions: Arc<Completions>) -> Self {
        PushHub {
            subs: Mutex::new(HashSet::new()),
            completions,
            pushes: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
        }
    }

    fn register(&self, conn: u64) {
        self.subs.lock().insert(conn);
    }

    fn unregister(&self, conn: u64) -> bool {
        self.subs.lock().remove(&conn)
    }

    pub(crate) fn subscriber_count(&self) -> u64 {
        self.subs.lock().len() as u64
    }

    /// Demotes a slow subscriber: unregisters it and counts the event.
    fn demote(&self, conn: u64) {
        if self.unregister(conn) {
            self.demotions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl EpochFanout for PushHub {
    fn on_epoch(
        &self,
        from: Epoch,
        prev: Option<&Arc<dyn ServeSnapshot>>,
        epoch: Epoch,
        snap: &Arc<dyn ServeSnapshot>,
    ) {
        self.on_epoch_traced(from, prev, epoch, snap, None);
    }

    fn on_epoch_traced(
        &self,
        from: Epoch,
        prev: Option<&Arc<dyn ServeSnapshot>>,
        epoch: Epoch,
        snap: &Arc<dyn ServeSnapshot>,
        trace: Option<&TraceContext>,
    ) {
        let subs: Vec<u64> = self.subs.lock().iter().copied().collect();
        if subs.is_empty() {
            return;
        }
        let entries: Vec<DiffEntry<i64, i64>> = match prev {
            Some(prev) => match prev.diff(snap.as_ref()) {
                Some(entries) => entries,
                // Undiffable neighbours (backend swapped?): subscribers
                // will see the gap and pull.
                None => return,
            },
            // First epoch this feed ever held: the whole state is the
            // diff from the empty map.
            None => snap
                .range(std::ops::Bound::Unbounded, std::ops::Bound::Unbounded, 0)
                .0
                .into_iter()
                .map(|(k, v)| DiffEntry::Added(k, v))
                .collect(),
        };
        // Same precheck PullDiff applies: an epoch too fat for one frame
        // is not pushed at all — subscribers catch up by pulling, which
        // can fall back to a chunked FullSync.
        if entries.len() as u64 * 17 > MAX_FRAME_LEN as u64 {
            return;
        }
        let resp = Response::Push {
            from,
            epoch,
            entries,
        };
        // A traced publish stamps its context into every push frame's
        // envelope, so a subscriber's apply span joins the publisher's
        // trace (parented under the publisher's execute span).
        let frame = response_frame_traced(&resp, PROTO_VERSION, PUSH_ID_BASE | epoch, trace);
        for conn in subs {
            self.pushes.fetch_add(1, Ordering::Relaxed);
            self.completions.push(Completion {
                conn,
                frame: frame.clone(),
                push: true,
                timing: None,
                trace: None,
            });
        }
    }
}

/// One encoded frame on a connection's write queue, with the tracing
/// breadcrumb needed to close out the write/flush stage when its last
/// byte reaches the kernel.
struct OutFrame {
    bytes: Vec<u8>,
    /// As [`Completion::timing`].
    timing: Option<(u8, Instant)>,
    /// As [`Completion::trace`].
    trace: Option<TraceOut>,
}

impl OutFrame {
    /// A frame outside the traced request path (errors, acks, pushes).
    fn untimed(bytes: Vec<u8>) -> Self {
        OutFrame {
            bytes,
            timing: None,
            trace: None,
        }
    }
}

/// Per-connection state: the nonblocking socket and its buffers.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet parsed into whole frames.
    rbuf: Vec<u8>,
    /// Encoded reply frames awaiting the socket; the front one may be
    /// partially written (`out_off` bytes already gone).
    outq: VecDeque<OutFrame>,
    out_off: usize,
    /// Dispatched requests not yet answered — the admission-control
    /// counter.
    in_flight: usize,
    /// No more reads (peer half-closed, or inbound framing is broken);
    /// the connection closes once everything pending has been written.
    closing: bool,
    /// The interest currently registered with the poller.
    interest: Interest,
    /// Envelope version of the last frame that decoded, so
    /// framing-level errors (where the broken frame names no usable
    /// version) are answered in the dialect the peer last spoke.
    last_version: u8,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            rbuf: Vec::new(),
            outq: VecDeque::new(),
            out_off: 0,
            in_flight: 0,
            closing: false,
            interest: Interest::READ,
            last_version: PROTO_VERSION,
        }
    }
}

/// The loop itself; constructed by `spawn`, consumed by [`run`](Self::run)
/// on its own thread.
pub(crate) struct EventLoop {
    // Declared first so its drop joins the workers while the wake pipe
    // and completion queue are still alive for their final pushes.
    pool: ThreadPool,
    listener: TcpListener,
    wake_rx: UnixStream,
    poller: Poller,
    shared: Arc<Shared>,
    completions: Arc<Completions>,
    tunables: Tunables,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

impl EventLoop {
    pub(crate) fn new(
        listener: TcpListener,
        wake_rx: UnixStream,
        shared: Arc<Shared>,
        completions: Arc<Completions>,
        workers: usize,
        tunables: Tunables,
    ) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
        Ok(EventLoop {
            pool: ThreadPool::new(workers),
            listener,
            wake_rx,
            poller,
            shared,
            completions,
            tunables,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
        })
    }

    /// Serves until the shared stop flag is raised (and a wake byte
    /// lands). Teardown is deterministic: dropping `self` closes every
    /// connection socket and joins the pool, whose queued jobs push
    /// their final completions into a queue nobody reads again.
    pub(crate) fn run(mut self) {
        let mut events: Vec<PollEvent> = Vec::with_capacity(256);
        loop {
            events.clear();
            if self.poller.wait(&mut events).is_err() {
                return;
            }
            if self.shared.stop.load(Ordering::SeqCst) {
                return;
            }
            for ev in events.drain(..) {
                match ev.token {
                    TOKEN_LISTENER => self.accept_burst(),
                    TOKEN_WAKE => self.drain_wake_bytes(),
                    token => self.conn_event(token, ev.readable, ev.writable),
                }
            }
            self.apply_completions();
        }
    }

    fn accept_burst(&mut self) {
        for _ in 0..self.tunables.backlog.max(1) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.tunables.max_conns {
                        // Over the cap: refuse by dropping the socket.
                        // The kernel already completed the handshake,
                        // so the peer sees an immediate close rather
                        // than an unanswered SYN.
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(token, Conn::new(stream));
                    self.publish_conn_gauge();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn drain_wake_bytes(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return, // write end gone: shutting down
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock: drained
            }
        }
    }

    /// Moves finished replies from the completion queue onto their
    /// connections' write queues, then tries to flush those
    /// connections immediately — under light load a reply leaves in
    /// the same loop iteration its work finished.
    fn apply_completions(&mut self) {
        let batch = self.completions.drain();
        if batch.is_empty() {
            return;
        }
        let mut touched: Vec<u64> = Vec::with_capacity(batch.len());
        for completion in batch {
            // A completion may outlive its connection (peer vanished
            // while the request ran); it is dropped here.
            if let Some(conn) = self.conns.get_mut(&completion.conn) {
                if completion.push {
                    // Backpressure: a subscriber that cannot drain its
                    // queue is demoted instead of buffered forever.
                    if conn.outq.len() >= PUSH_OUTQ_MAX || conn.closing {
                        self.shared.push.demote(completion.conn);
                        continue;
                    }
                } else {
                    conn.in_flight = conn.in_flight.saturating_sub(1);
                }
                conn.outq.push_back(OutFrame {
                    bytes: completion.frame,
                    timing: completion.timing,
                    trace: completion.trace,
                });
                touched.push(completion.conn);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for token in touched {
            if let Some(conn) = self.conns.remove(&token) {
                self.settle(token, conn, true);
            }
        }
    }

    fn conn_event(&mut self, token: u64, readable: bool, writable: bool) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let mut alive = true;
        if writable {
            alive = self.flush(&mut conn);
        }
        if alive && readable {
            alive = self.read_and_dispatch(token, &mut conn);
        }
        self.settle(token, conn, alive);
    }

    /// Final per-event bookkeeping: flush whatever queued, close the
    /// connection if it is finished (or dead), and keep the poller's
    /// interest in sync with what the connection actually needs.
    fn settle(&mut self, token: u64, mut conn: Conn, mut alive: bool) {
        if alive {
            alive = self.flush(&mut conn);
        }
        if alive && conn.closing && conn.in_flight == 0 && conn.outq.is_empty() {
            alive = false; // everything owed has been written
        }
        if !alive {
            self.shared.push.unregister(token);
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            drop(conn); // closes the socket
            self.publish_conn_gauge();
            return;
        }
        // A closing connection stops reading (or a level-triggered
        // poller would spin on its unread bytes); write interest
        // follows the queue.
        let want = Interest {
            read: !conn.closing,
            write: !conn.outq.is_empty(),
        };
        if want != conn.interest
            && self
                .poller
                .reregister(conn.stream.as_raw_fd(), token, want)
                .is_ok()
        {
            conn.interest = want;
        }
        self.conns.insert(token, conn);
    }

    /// Drains the socket into the read buffer and parses/dispatches
    /// every complete frame. Returns `false` if the connection died.
    fn read_and_dispatch(&mut self, token: u64, conn: &mut Conn) -> bool {
        if conn.closing {
            return true;
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    // Peer closed its write side. Anything still
                    // in flight or queued is written before the
                    // connection goes; nothing pending means it goes
                    // now.
                    if conn.in_flight == 0 && conn.outq.is_empty() {
                        return false;
                    }
                    conn.closing = true;
                    return true;
                }
                Ok(n) => {
                    self.shared.wire.add_received(n as u64);
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    self.parse_frames(token, conn);
                    if conn.closing {
                        return true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Splits `conn.rbuf` into complete frames and dispatches each.
    /// An unparseable frame is answered with `Malformed` and marks the
    /// connection closing — the stream position can no longer be
    /// trusted past it.
    fn parse_frames(&mut self, token: u64, conn: &mut Conn) {
        let mut pos = 0usize;
        while conn.rbuf.len() - pos >= 4 {
            let len =
                u32::from_le_bytes(conn.rbuf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            if len > MAX_FRAME_LEN as usize || len < 2 {
                // The length prefix itself is broken: no envelope to
                // echo, answer in the peer's last-known dialect and
                // stop trusting the stream.
                conn.outq.push_back(OutFrame::untimed(response_frame(
                    &Response::Error(WireError::Malformed),
                    conn.last_version,
                    0,
                )));
                conn.closing = true;
                break;
            }
            if conn.rbuf.len() - pos - 4 < len {
                break; // incomplete frame: wait for more bytes
            }
            let body = &conn.rbuf[pos + 4..pos + 4 + len];
            pos += 4 + len;
            let (version, request_id) = peek_envelope(body, conn.last_version);
            match Request::decode_enveloped(body) {
                Ok(framed) => {
                    conn.last_version = framed.version;
                    self.dispatch(
                        token,
                        conn,
                        framed.version,
                        framed.request_id,
                        framed.msg,
                        framed.trace,
                    );
                }
                Err(_) => {
                    conn.outq.push_back(OutFrame::untimed(response_frame(
                        &Response::Error(WireError::Malformed),
                        version,
                        request_id,
                    )));
                    conn.closing = true;
                    break;
                }
            }
        }
        if conn.closing {
            conn.rbuf.clear();
        } else {
            conn.rbuf.drain(..pos);
        }
    }

    /// Admission control, then hand the request to the pool. The reply
    /// frame is encoded on the worker (parallel across requests) and
    /// returns through the completion queue.
    fn dispatch(
        &mut self,
        token: u64,
        conn: &mut Conn,
        version: u8,
        request_id: RequestId,
        req: Request,
        trace: Option<TraceContext>,
    ) {
        if let Request::SubscribePush { from } = req {
            self.subscribe_push(token, conn, version, request_id, from);
            return;
        }
        let depth = self.tunables.queue_depth.max(1);
        if conn.in_flight >= depth {
            self.shared.shed.fetch_add(1, Ordering::Relaxed);
            conn.outq.push_back(OutFrame::untimed(response_frame(
                &Response::Error(WireError::Busy(depth as u64)),
                version,
                request_id,
            )));
            return;
        }
        conn.in_flight += 1;
        // Stage tracing: `begin` reads the clock only when metrics are
        // enabled, the worker closes out queue-wait when it starts and
        // execute when the reply is encoded, and `flush` closes out the
        // write stage when the frame's last byte reaches the kernel.
        let queued_at = self.shared.metrics.begin();
        // Span tracing mirrors the same three stages but only for
        // requests that arrived with a trace context; `begin` is
        // branch-only otherwise.
        let accepted = self.shared.trace.begin(trace.as_ref());
        let tag = req.tag_byte();
        let shared = Arc::clone(&self.shared);
        let completions = Arc::clone(&self.completions);
        self.pool.execute(move || {
            let trace_id = trace.as_ref().map_or(0, |c| c.trace_id);
            let exec_start = shared
                .metrics
                .queue_wait(tag)
                .lap_tagged(queued_at, request_id, trace_id);
            // Close the queue-wait span and pre-allocate the execute
            // span's id: `handle_request` gets a child context carrying
            // that id, so downstream stages this request triggers
            // (durable append, push fan-out, relay apply) parent under
            // the execute span before it has even closed.
            let mut exec_span = 0u64;
            let mut child = None;
            let span_start = match (shared.trace.flight(), trace.as_ref(), accepted) {
                (Some(flight), Some(ctx), Some(t0)) => {
                    let now = Instant::now();
                    flight.span(ctx, Stage::QueueWait, tag, 0, t0, now);
                    exec_span = flight.next_span_id();
                    child = Some(ctx.child(exec_span));
                    Some(now)
                }
                _ => None,
            };
            let resp = handle_request(&shared, req, child.as_ref());
            let epoch = response_epoch(&resp);
            let frame = response_frame(&resp, version, request_id);
            let write_start = shared
                .metrics
                .execute(tag)
                .lap_tagged(exec_start, request_id, trace_id);
            let trace_out = match (shared.trace.flight(), trace.as_ref(), accepted, span_start) {
                (Some(flight), Some(ctx), Some(t_acc), Some(t0)) => {
                    let now = Instant::now();
                    flight.span_with_id(exec_span, ctx, Stage::Execute, tag, epoch, t0, now);
                    Some(TraceOut {
                        ctx: *ctx,
                        accepted: t_acc,
                        write_start: now,
                        tag,
                        epoch,
                    })
                }
                _ => None,
            };
            completions.push(Completion {
                conn: token,
                frame,
                push: false,
                timing: write_start.map(|t| (tag, t)),
                trace: trace_out,
            });
        });
    }

    /// Registers a connection for push delivery. Runs inline on the
    /// loop thread — it must, because registration has to be ordered
    /// against the fan-out: the ack and any catch-up frame are queued
    /// *before* the first live push for this connection can land (live
    /// pushes travel the completion queue, which is drained after
    /// dispatch).
    fn subscribe_push(
        &mut self,
        token: u64,
        conn: &mut Conn,
        version: u8,
        request_id: RequestId,
        from: Epoch,
    ) {
        if version == PROTO_V2 {
            // A v2 peer cannot tell an unsolicited frame from a reply.
            conn.outq.push_back(OutFrame::untimed(response_frame(
                &Response::Error(WireError::Malformed),
                version,
                request_id,
            )));
            return;
        }
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        self.shared.push.register(token);
        let info = self.shared.feed.info();
        conn.outq.push_back(OutFrame::untimed(response_frame(
            &Response::SubscribeAck(info),
            version,
            request_id,
        )));
        // Catch-up: a subscriber registering behind the head gets one
        // synthetic push covering `from → head`, provided `from` is
        // still retained and the diff fits a frame. Otherwise it will
        // notice the gap on its first live push and pull.
        if from == 0 || from >= info.head {
            return;
        }
        let (Some(from_snap), Some((head, head_snap))) =
            (self.shared.feed.get(from), self.shared.feed.head())
        else {
            return;
        };
        if let Some(entries) = from_snap.diff(head_snap.as_ref()) {
            if entries.len() as u64 * 17 <= MAX_FRAME_LEN as u64 {
                self.shared.push.pushes.fetch_add(1, Ordering::Relaxed);
                conn.outq.push_back(OutFrame::untimed(response_frame(
                    &Response::Push {
                        from,
                        epoch: head,
                        entries,
                    },
                    PROTO_VERSION,
                    PUSH_ID_BASE | head,
                )));
            }
        }
    }

    /// Writes as much of the connection's queue as the socket takes,
    /// coalescing queued frames into vectored writes. Returns `false`
    /// if the connection died.
    fn flush(&self, conn: &mut Conn) -> bool {
        while !conn.outq.is_empty() {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(conn.outq.len().min(MAX_IOVECS));
            let mut frames = conn.outq.iter();
            if let Some(front) = frames.next() {
                slices.push(IoSlice::new(&front.bytes[conn.out_off..]));
            }
            for frame in frames.take(MAX_IOVECS - 1) {
                slices.push(IoSlice::new(&frame.bytes));
            }
            match (&conn.stream).write_vectored(&slices) {
                Ok(0) => return false,
                Ok(mut n) => {
                    self.shared.wire.add_sent(n as u64);
                    while n > 0 {
                        let front_left =
                            conn.outq.front().expect("bytes written").bytes.len() - conn.out_off;
                        if n >= front_left {
                            n -= front_left;
                            let done = conn.outq.pop_front().expect("front exists");
                            conn.out_off = 0;
                            // Close out the write/flush stage: reply
                            // encoded on its worker → last byte handed
                            // to the kernel (queueing behind the socket
                            // included, by design).
                            if let Some(t) = done.trace {
                                if let Some(flight) = self.shared.trace.flight() {
                                    let now = Instant::now();
                                    flight.span(
                                        &t.ctx,
                                        Stage::WriteFlush,
                                        t.tag,
                                        t.epoch,
                                        t.write_start,
                                        now,
                                    );
                                    // The request is over on this node:
                                    // accepted → last byte out. A slow
                                    // one gets its span chain pinned.
                                    let total = now
                                        .saturating_duration_since(t.accepted)
                                        .as_nanos()
                                        .min(u128::from(u64::MAX))
                                        as u64;
                                    flight.maybe_pin(&t.ctx, total);
                                }
                            }
                            if let Some((tag, t0)) = done.timing {
                                let trace_id = done.trace.map_or(0, |t| t.ctx.trace_id);
                                self.shared.metrics.write_flush(tag).record_since_tagged(
                                    Some(t0),
                                    0,
                                    trace_id,
                                );
                            }
                        } else {
                            conn.out_off += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }

    fn publish_conn_gauge(&self) {
        self.shared
            .open_conns
            .store(self.conns.len() as u64, Ordering::Relaxed);
    }
}

/// The epoch a reply names, when it names one: the anchor that lets a
/// span chain on one node line up with the same epoch's spans on
/// replicas downstream. `0` for replies outside the feed path.
fn response_epoch(resp: &Response) -> u64 {
    match resp {
        Response::Published(epoch) => *epoch,
        Response::WroteAt { watermark, .. } => *watermark,
        _ => 0,
    }
}

/// Best-effort envelope peek for error replies when full decoding
/// fails: enough of a v3/v2 head (traced or not) to echo the right
/// version and id, or the fallback version with id `0`.
fn peek_envelope(body: &[u8], fallback_version: u8) -> (u8, RequestId) {
    match body.first() {
        Some(&v)
            if (v == PROTO_VERSION || v == PROTO_VERSION | PROTO_TRACE_FLAG) && body.len() >= 9 =>
        {
            (
                PROTO_VERSION,
                u64::from_le_bytes(body[1..9].try_into().expect("8 bytes")),
            )
        }
        Some(&PROTO_V2) => (PROTO_V2, 0),
        _ => (fallback_version, 0),
    }
}
