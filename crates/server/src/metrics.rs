//! Per-stage latency tracing for the serving pipeline, and the text
//! exposition both [`crate::proto::Request::Metrics`] scrapes and
//! humans read.
//!
//! The event loop owns a [`ServerMetrics`]: one
//! [`Recorder`] per (stage, request-tag)
//! pair for the three in-process stages it can see — decode→dispatch
//! queue wait, worker execute time, and reply-ready→flushed write time.
//! Components outside the event loop (the durable feed persister, push
//! replicas relaying a feed) implement [`MetricsSource`] and register
//! themselves, so one `Metrics` scrape returns the whole pipeline.
//!
//! When the server is configured with metrics disabled every recorder
//! is `Recorder::Disabled` and the per-request cost is a handful of
//! branches — no clock reads, no atomics (see the `metrics_overhead`
//! bench in `pathcopy-bench`).

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use pathcopy_metrics::{HistogramSnapshot, Recorder, Stage};

use crate::proto::{Request, StageSummary};

/// Per-tag histogram slots: request tags `1..=21` plus slot `0` for
/// untagged samples.
const TAG_SLOTS: usize = 22;

/// Anything that can contribute rows to a `Metrics` scrape: the durable
/// persister's fsync histogram, a push replica's apply/lag histograms,
/// or any future pipeline stage.
pub trait MetricsSource: Send + Sync {
    /// Snapshot this source's histograms as wire rows. Called on a
    /// worker thread per scrape; must not block on the serving path.
    fn collect(&self) -> Vec<StageSummary>;

    /// Zeroes this source's histograms
    /// ([`crate::proto::Request::ResetMetrics`]). Default: no-op, so
    /// sources that predate resettable scrapes keep compiling.
    fn reset(&self) {}
}

/// Condenses a histogram snapshot into the wire row for `stage`/`tag` —
/// the bridge [`MetricsSource`] implementations use. The snapshot's
/// exemplar (worst-sample request/trace attribution), when present,
/// rides along on the row.
#[must_use]
pub fn summarize(stage: Stage, tag: u8, snap: &HistogramSnapshot) -> StageSummary {
    let s = snap.summary();
    let (exemplar_id, exemplar_trace) =
        snap.exemplar().map_or((0, 0), |(_, id, trace)| (id, trace));
    StageSummary {
        stage: stage as u8,
        tag,
        count: s.count,
        sum: s.sum,
        p50: s.p50,
        p90: s.p90,
        p99: s.p99,
        p999: s.p999,
        max: s.max,
        exemplar_id,
        exemplar_trace,
    }
}

/// The server's stage-tracing registry: three per-tag recorder families
/// for the event loop's stages plus externally registered
/// [`MetricsSource`]s.
pub struct ServerMetrics {
    enabled: bool,
    queue_wait: Vec<Recorder>,
    execute: Vec<Recorder>,
    write_flush: Vec<Recorder>,
    extra: Mutex<Vec<Arc<dyn MetricsSource>>>,
}

impl ServerMetrics {
    /// Builds the registry. With `enabled = false` every recorder is
    /// [`Recorder::Disabled`] and recording is branch-only.
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        let family = || -> Vec<Recorder> {
            (0..TAG_SLOTS)
                .map(|_| {
                    if enabled {
                        Recorder::enabled()
                    } else {
                        Recorder::Disabled
                    }
                })
                .collect()
        };
        ServerMetrics {
            enabled,
            queue_wait: family(),
            execute: family(),
            write_flush: family(),
            extra: Mutex::new(Vec::new()),
        }
    }

    /// True when the event loop's recorders are live.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a request's stage clock: reads the clock only when
    /// enabled, so the disabled path stays free of clock syscalls.
    #[inline]
    pub(crate) fn begin(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    #[inline]
    fn slot(family: &[Recorder], tag: u8) -> &Recorder {
        let idx = tag as usize;
        &family[if idx < TAG_SLOTS { idx } else { 0 }]
    }

    /// Queue-wait recorder for a request tag.
    #[inline]
    pub(crate) fn queue_wait(&self, tag: u8) -> &Recorder {
        Self::slot(&self.queue_wait, tag)
    }

    /// Execute-time recorder for a request tag.
    #[inline]
    pub(crate) fn execute(&self, tag: u8) -> &Recorder {
        Self::slot(&self.execute, tag)
    }

    /// Write/flush-time recorder for a request tag.
    #[inline]
    pub(crate) fn write_flush(&self, tag: u8) -> &Recorder {
        Self::slot(&self.write_flush, tag)
    }

    /// Adds an external histogram source to subsequent scrapes.
    pub fn register_source(&self, source: Arc<dyn MetricsSource>) {
        self.extra.lock().push(source);
    }

    /// Zeroes every histogram — the event loop's per-tag stage
    /// recorders and every registered source — so subsequent scrapes
    /// report a fresh window. Idempotent; concurrent recordings may
    /// land on either side of the wipe.
    pub fn reset_all(&self) {
        for family in [&self.queue_wait, &self.execute, &self.write_flush] {
            for rec in family.iter() {
                rec.reset();
            }
        }
        for source in self.extra.lock().iter() {
            source.reset();
        }
    }

    /// Snapshots every non-empty histogram as wire rows, ascending by
    /// (stage, tag).
    #[must_use]
    pub fn report(&self) -> Vec<StageSummary> {
        let mut rows = Vec::new();
        let families = [
            (Stage::QueueWait, &self.queue_wait),
            (Stage::Execute, &self.execute),
            (Stage::WriteFlush, &self.write_flush),
        ];
        for (stage, family) in families {
            for (tag, rec) in family.iter().enumerate() {
                let snap = rec.snapshot();
                if !snap.is_empty() {
                    rows.push(summarize(stage, tag as u8, &snap));
                }
            }
        }
        for source in self.extra.lock().iter() {
            rows.extend(source.collect().into_iter().filter(|r| r.count > 0));
        }
        rows.sort_by_key(|r| (r.stage, r.tag));
        rows
    }
}

impl std::fmt::Debug for ServerMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerMetrics")
            .field("enabled", &self.enabled)
            .field("sources", &self.extra.lock().len())
            .finish_non_exhaustive()
    }
}

/// Renders `Metrics` rows as Prometheus-style text: one `# TYPE <name>
/// summary` header per metric, then `quantile`-labelled sample lines
/// plus `_sum`/`_count`, with the request tag as a `tag` label. Metric
/// names are `pathcopy_<stage>_<unit>` (`…_ns` for latencies,
/// `…_epochs` for the watermark gap). Rows with unknown stage bytes are
/// skipped, matching the wire contract.
#[must_use]
pub fn render_text(rows: &[StageSummary]) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let mut last_name: Option<String> = None;
    for row in rows {
        let Some(stage) = Stage::from_u8(row.stage) else {
            continue;
        };
        let name = format!("pathcopy_{}_{}", stage.as_str(), stage.unit());
        if last_name.as_deref() != Some(&name) {
            let _ = writeln!(out, "# TYPE {name} summary");
            last_name = Some(name.clone());
        }
        let tag_label = match Request::tag_name(row.tag) {
            Some(tag) => format!("tag=\"{tag}\","),
            None => String::new(),
        };
        for (q, v) in [
            ("0.5", row.p50),
            ("0.9", row.p90),
            ("0.99", row.p99),
            ("0.999", row.p999),
        ] {
            let _ = writeln!(out, "{name}{{{tag_label}quantile=\"{q}\"}} {v}");
        }
        // OpenMetrics-style exemplar on the max line: which request
        // (and trace) produced the worst sample this histogram saw.
        let exemplar = if row.exemplar_id != 0 || row.exemplar_trace != 0 {
            format!(
                " # {{request_id=\"{}\",trace_id=\"{:x}\"}} {}",
                row.exemplar_id, row.exemplar_trace, row.max
            )
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{name}{{{tag_label}quantile=\"1\"}} {}{exemplar}",
            row.max
        );
        let bare = tag_label.trim_end_matches(',');
        if bare.is_empty() {
            let _ = writeln!(out, "{name}_sum {}", row.sum);
            let _ = writeln!(out, "{name}_count {}", row.count);
        } else {
            let _ = writeln!(out, "{name}_sum{{{bare}}} {}", row.sum);
            let _ = writeln!(out, "{name}_count{{{bare}}} {}", row.count);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_reports_nothing_and_reads_no_clock() {
        let m = ServerMetrics::new(false);
        assert!(!m.is_enabled());
        assert!(m.begin().is_none());
        let t = m.queue_wait(1).lap(m.begin());
        assert!(t.is_none());
        assert!(m.report().is_empty());
    }

    #[test]
    fn enabled_registry_reports_per_stage_per_tag_rows() {
        let m = ServerMetrics::new(true);
        let t0 = m.begin();
        let t1 = m.queue_wait(1).lap(t0);
        let t2 = m.execute(1).lap(t1);
        assert!(t2.is_some());
        m.write_flush(5).record(100);

        let rows = m.report();
        assert_eq!(rows.len(), 3);
        assert_eq!(
            (rows[0].stage, rows[0].tag),
            (Stage::QueueWait as u8, 1),
            "{rows:?}"
        );
        assert_eq!((rows[2].stage, rows[2].tag), (Stage::WriteFlush as u8, 5));
        assert!(rows
            .windows(2)
            .all(|w| (w[0].stage, w[0].tag) <= (w[1].stage, w[1].tag)));
    }

    #[test]
    fn out_of_range_tags_fold_into_slot_zero() {
        let m = ServerMetrics::new(true);
        m.execute(200).record(7);
        let rows = m.report();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].tag, 0);
    }

    #[test]
    fn registered_sources_contribute_rows() {
        struct Fixed;
        impl MetricsSource for Fixed {
            fn collect(&self) -> Vec<StageSummary> {
                vec![
                    StageSummary {
                        stage: Stage::AppendFsync as u8,
                        tag: 0,
                        count: 3,
                        ..StageSummary::default()
                    },
                    StageSummary::default(), // empty: must be filtered
                ]
            }
        }
        let m = ServerMetrics::new(true);
        m.register_source(Arc::new(Fixed));
        let rows = m.report();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].stage, Stage::AppendFsync as u8);
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        let rows = vec![
            StageSummary {
                stage: Stage::QueueWait as u8,
                tag: 1,
                count: 10,
                sum: 1000,
                p50: 90,
                p90: 150,
                p99: 200,
                p999: 210,
                max: 220,
                exemplar_id: 41,
                exemplar_trace: 0xBEEF,
            },
            StageSummary {
                stage: Stage::EpochLag as u8,
                tag: 0,
                count: 4,
                sum: 4,
                p50: 1,
                p90: 1,
                p99: 1,
                p999: 1,
                max: 1,
                exemplar_id: 0,
                exemplar_trace: 0,
            },
            StageSummary {
                stage: 250, // unknown: skipped
                ..StageSummary::default()
            },
        ];
        let text = render_text(&rows);
        assert!(text.contains("# TYPE pathcopy_queue_wait_ns summary"));
        assert!(text.contains("pathcopy_queue_wait_ns{tag=\"Get\",quantile=\"0.5\"} 90"));
        assert!(text.contains("pathcopy_queue_wait_ns_count{tag=\"Get\"} 10"));
        // Exemplar rides the max line; rows without one stay bare.
        assert!(text.contains(
            "pathcopy_queue_wait_ns{tag=\"Get\",quantile=\"1\"} 220 \
             # {request_id=\"41\",trace_id=\"beef\"} 220"
        ));
        assert!(text.contains("# TYPE pathcopy_epoch_lag_epochs summary"));
        assert!(text.contains("pathcopy_epoch_lag_epochs{quantile=\"1\"} 1\n"));
        assert!(text.contains("pathcopy_epoch_lag_epochs_count 4"));
        assert!(!text.contains("250"));
    }

    #[test]
    fn reset_all_zeroes_recorders_and_sources() {
        use std::sync::atomic::{AtomicBool, Ordering};
        struct Flag(AtomicBool);
        impl MetricsSource for Flag {
            fn collect(&self) -> Vec<StageSummary> {
                vec![]
            }
            fn reset(&self) {
                self.0.store(true, Ordering::Relaxed);
            }
        }
        let m = ServerMetrics::new(true);
        let flag = Arc::new(Flag(AtomicBool::new(false)));
        m.register_source(flag.clone());
        m.execute(1).record(7);
        assert_eq!(m.report().len(), 1);
        m.reset_all();
        assert!(m.report().is_empty(), "recorders must be zeroed");
        assert!(flag.0.load(Ordering::Relaxed), "sources must be reset too");
        m.reset_all(); // idempotent
        assert!(m.report().is_empty());
    }
}
