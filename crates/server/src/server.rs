//! The threaded TCP server: accept loop, connection workers, and the
//! named-snapshot version table.
//!
//! [`spawn`] binds a listener (an ephemeral loopback port by default),
//! starts an accept thread, and hands each connection to a fixed
//! [`ThreadPool`] worker that speaks the [`proto`](crate::proto) framing
//! in a blocking request/response loop. The server is generic over its
//! engine through `Box<dyn ServeBackend>` — any backend of the registry
//! ([`crate::backend::backends`]) can be served unchanged.
//!
//! The **version table** is what makes the serving layer more than a
//! remote hash map: a [`Request::Snapshot`] pins a coherent snapshot
//! under a fresh [`SnapshotId`], and later [`Request::Range`] /
//! [`Request::Diff`] calls — from *any* connection — read that frozen
//! version while writers race ahead. This is the paper's O(1)-snapshot
//! property exposed over the network: pinning a version costs an `Arc`
//! clone per shard root, never a copy of the data, and holding one never
//! blocks a writer.
//!
//! Shutdown ([`ServerHandle::shutdown`], also run on drop) is
//! deterministic: the stop flag is raised, every registered connection
//! socket is shut down to unblock its worker, a wake connection unblocks
//! `accept`, and the accept thread joins the pool before exiting.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::backend::{ServeBackend, ServeSnapshot};
use crate::feed::{FeedSink, VersionFeed};
use crate::pool::ThreadPool;
use crate::proto::{
    read_request, write_response, Epoch, ProtoError, Request, Response, SnapshotId, WireError,
    WireStats, MAX_FRAME_LEN, SYNC_PAGE_MAX_ENTRIES,
};

/// Tunables for [`spawn`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Address to bind; the default is an ephemeral loopback port
    /// (`127.0.0.1:0`), read back via [`ServerHandle::addr`].
    pub addr: SocketAddr,
    /// Connection worker threads. Each worker owns one connection at a
    /// time, so this bounds concurrent connections.
    pub workers: usize,
    /// Capacity of the version table. Every pinned snapshot keeps an
    /// entire map version alive under write churn, and nothing but an
    /// explicit [`Request::Release`] unpins one (snapshots deliberately
    /// outlive their connection), so the table is capped: a
    /// [`Request::Snapshot`] beyond the cap is refused with
    /// [`WireError::SnapshotLimit`].
    pub max_snapshots: usize,
    /// How many published epochs the replication feed retains
    /// ([`Request::Publish`]; min 1). A replica whose applied epoch is
    /// retired from the ring must bootstrap again via
    /// [`Request::FullSync`], so this bounds how far a replica may lag
    /// while still catching up with cheap diffs.
    pub feed_capacity: usize,
    /// First epoch the feed will assign (min 1; the default). A primary
    /// recovered from a durable log passes `log head + 1` so epoch
    /// numbers are never reused for different states.
    pub feed_start: Epoch,
    /// Optional observer of every published epoch, called under the
    /// feed lock ([`FeedSink`]) — the attachment point for
    /// `pathcopy-durable`'s `FeedPersister`. `None` (the default) keeps
    /// the feed purely in memory.
    pub feed_sink: Option<Arc<dyn FeedSink>>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("addr", &self.addr)
            .field("workers", &self.workers)
            .field("max_snapshots", &self.max_snapshots)
            .field("feed_capacity", &self.feed_capacity)
            .field("feed_start", &self.feed_start)
            .field(
                "feed_sink",
                &self.feed_sink.as_ref().map(|_| "dyn FeedSink"),
            )
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 4,
            max_snapshots: 1024,
            feed_capacity: 64,
            feed_start: 1,
            feed_sink: None,
        }
    }
}

impl ServerConfig {
    /// [`Default::default`] with a different worker count.
    pub fn with_workers(workers: usize) -> Self {
        ServerConfig {
            workers,
            ..Self::default()
        }
    }
}

/// State shared by the accept loop and every connection worker.
struct Shared {
    backend: Box<dyn ServeBackend>,
    /// The version table: named snapshot handles pinned by
    /// [`Request::Snapshot`], readable from any connection until
    /// released.
    snapshots: Mutex<HashMap<SnapshotId, Arc<dyn ServeSnapshot>>>,
    next_snapshot: AtomicU64,
    max_snapshots: usize,
    /// The replication feed: epoch-keyed recent versions replicas sync
    /// from ([`Request::Publish`]/[`Request::PullDiff`]/
    /// [`Request::FullSync`]).
    feed: VersionFeed,
    /// Open-connection registry (`try_clone` handles), kept so shutdown
    /// can unblock workers parked in a blocking read.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    requests: AtomicU64,
    stop: AtomicBool,
}

/// A running server; dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the accept loop and joins every
/// worker.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

/// Binds `config.addr` and serves `backend` until the handle is dropped.
///
/// # Errors
///
/// Any [`io::Error`] from binding the listener or spawning the accept
/// thread (e.g. the address is in use or privileged).
///
/// # Examples
///
/// ```
/// use pathcopy_server::{backend, Client, ServerConfig};
///
/// let server = pathcopy_server::spawn(
///     backend::by_name("sharded_map_8").unwrap(),
///     ServerConfig::default(),
/// )
/// .unwrap();
/// let mut client = Client::connect(server.addr()).unwrap();
/// assert_eq!(client.insert(1, 10).unwrap(), None);
/// assert_eq!(client.get(1).unwrap(), Some(10));
/// server.shutdown();
/// ```
pub fn spawn(backend: Box<dyn ServeBackend>, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        backend,
        snapshots: Mutex::new(HashMap::new()),
        next_snapshot: AtomicU64::new(0),
        max_snapshots: config.max_snapshots,
        feed: VersionFeed::configured(config.feed_capacity, config.feed_start, config.feed_sink),
        conns: Mutex::new(HashMap::new()),
        next_conn: AtomicU64::new(0),
        requests: AtomicU64::new(0),
        stop: AtomicBool::new(false),
    });
    let accept_shared = Arc::clone(&shared);
    let workers = config.workers;
    let accept = std::thread::Builder::new()
        .name("pathcopy-server-accept".to_string())
        .spawn(move || accept_loop(listener, accept_shared, workers))?;
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

impl ServerHandle {
    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests served so far, across all connections.
    pub fn requests_served(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// The served engine, for in-process inspection (demos, tests).
    pub fn backend(&self) -> &dyn ServeBackend {
        self.shared.backend.as_ref()
    }

    /// Stops accepting, unblocks and joins every connection worker, and
    /// returns once the server is fully down. Also performed on drop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock workers parked in a read on an open connection.
        for (_, conn) in self.shared.conns.lock().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Unblock the accept call itself with a wake connection. An
        // unspecified bind address (0.0.0.0 / ::) is not connectable on
        // every platform, so aim the wake at loopback on the bound port;
        // a short timeout keeps shutdown from hanging on an unreachable
        // interface.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            match wake {
                SocketAddr::V4(_) => wake.set_ip(std::net::Ipv4Addr::LOCALHOST.into()),
                SocketAddr::V6(_) => wake.set_ip(std::net::Ipv6Addr::LOCALHOST.into()),
            }
        }
        let _ = TcpStream::connect_timeout(&wake, std::time::Duration::from_millis(500));
        let _ = accept.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, workers: usize) {
    let pool = ThreadPool::new(workers);
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().insert(id, clone);
        }
        let shared = Arc::clone(&shared);
        pool.execute(move || {
            handle_connection(stream, &shared);
            shared.conns.lock().remove(&id);
        });
    }
    // Connections registered after shutdown's drain still need their
    // sockets closed, or the pool join below would wait on their reads.
    for (_, conn) in shared.conns.lock().drain() {
        let _ = conn.shutdown(Shutdown::Both);
    }
    drop(pool); // joins the workers
}

/// One connection's blocking request/response loop.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match read_request(&mut reader) {
            Ok(None) => return, // clean close
            Ok(Some(req)) => {
                let resp = handle_request(shared, req);
                let sent = match write_response(&mut writer, &resp) {
                    Ok(()) => true,
                    // The reply overflowed the frame cap; nothing hit the
                    // stream, so substitute a TooLarge error and keep the
                    // connection — the client can page the request.
                    Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                        write_response(&mut writer, &Response::Error(WireError::TooLarge)).is_ok()
                    }
                    Err(_) => false,
                };
                if !sent || writer.flush().is_err() {
                    return;
                }
            }
            // Transport failure (peer reset, shutdown): nothing to say.
            Err(ProtoError::Io(_)) => return,
            // Framing/decoding failure: tell the peer, then drop the
            // connection — the stream position can no longer be trusted.
            Err(_) => {
                let _ = write_response(&mut writer, &Response::Error(WireError::Malformed));
                let _ = writer.flush();
                return;
            }
        }
    }
}

/// Resolves an optional snapshot id: `None` takes a fresh coherent
/// snapshot, `Some` looks up the version table.
fn resolve_snapshot(
    shared: &Shared,
    id: Option<SnapshotId>,
) -> Result<Arc<dyn ServeSnapshot>, WireError> {
    match id {
        None => Ok(shared.backend.snapshot()),
        Some(id) => shared
            .snapshots
            .lock()
            .get(&id)
            .cloned()
            .ok_or(WireError::UnknownSnapshot(id)),
    }
}

fn handle_request(shared: &Shared, req: Request) -> Response {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    match req {
        Request::Get { key } => Response::Got(shared.backend.get(key)),
        Request::Insert { key, value } => Response::Inserted(shared.backend.insert(key, value)),
        Request::Remove { key } => Response::Removed(shared.backend.remove(key)),
        Request::Cas { key, expected, new } => {
            Response::CasApplied(shared.backend.cas(key, expected, new))
        }
        Request::Batch { ops, guarded } => {
            if guarded {
                match shared.backend.transact_guarded(&ops) {
                    Ok(results) => Response::Batch(results),
                    Err(failed) => Response::BatchAborted(failed),
                }
            } else {
                Response::Batch(shared.backend.transact(&ops))
            }
        }
        Request::Snapshot => {
            let mut table = shared.snapshots.lock();
            if table.len() >= shared.max_snapshots {
                return Response::Error(WireError::SnapshotLimit(shared.max_snapshots as u64));
            }
            let snap = shared.backend.snapshot();
            let id = shared.next_snapshot.fetch_add(1, Ordering::Relaxed) + 1;
            table.insert(id, snap);
            Response::SnapshotTaken(id)
        }
        Request::Range {
            snapshot,
            lo,
            hi,
            limit,
        } => match resolve_snapshot(shared, snapshot) {
            Err(e) => Response::Error(e),
            Ok(snap) => {
                let (entries, complete) = snap.range(lo, hi, limit as usize);
                Response::Entries { entries, complete }
            }
        },
        Request::Diff { from, to } => {
            let old = match resolve_snapshot(shared, Some(from)) {
                Ok(s) => s,
                Err(e) => return Response::Error(e),
            };
            let new = match resolve_snapshot(shared, to) {
                Ok(s) => s,
                Err(e) => return Response::Error(e),
            };
            match old.diff(new.as_ref()) {
                Some(diff) => Response::Diff(diff),
                None => Response::Error(WireError::SnapshotMismatch),
            }
        }
        Request::Release { snapshot } => {
            Response::Released(shared.snapshots.lock().remove(&snapshot).is_some())
        }
        Request::Publish => Response::Published(shared.feed.publish(shared.backend.snapshot())),
        Request::Subscribe => Response::FeedInfo(shared.feed.info()),
        Request::PullDiff { from } => {
            let Some(from_snap) = shared.feed.get(from) else {
                return Response::Error(WireError::EpochRetired(shared.feed.info().oldest));
            };
            // `from` is retained, so the feed is non-empty and has a head.
            let (to, head) = shared.feed.head().expect("non-empty feed");
            if to == from {
                return Response::EpochDiff {
                    to,
                    entries: Vec::new(),
                };
            }
            match from_snap.diff(head.as_ref()) {
                // A diff entry encodes to at least 17 bytes, so a reply
                // that cannot possibly fit the frame cap is refused here,
                // before encoding a multi-megabyte body just to discard
                // it (the client falls back to a chunked FullSync).
                Some(entries) if entries.len() as u64 * 17 > MAX_FRAME_LEN as u64 => {
                    Response::Error(WireError::TooLarge)
                }
                Some(entries) => Response::EpochDiff { to, entries },
                None => Response::Error(WireError::SnapshotMismatch),
            }
        }
        Request::FullSync {
            epoch,
            after,
            limit,
        } => {
            let (epoch, snap) = match epoch {
                // A fresh sync serves the current head, publishing a new
                // epoch only when the feed is empty. Reusing the head
                // keeps concurrent bootstraps on one shared pin —
                // publishing per bootstrap would retire rival pins and
                // could livelock restarts on a tiny ring — and the
                // replica lands exactly on a feed version either way,
                // catching up to later writes with diffs.
                None => match shared.feed.head() {
                    Some((e, snap)) => (e, snap),
                    None => {
                        let snap = shared.backend.snapshot();
                        (shared.feed.publish(Arc::clone(&snap)), snap)
                    }
                },
                Some(e) => match shared.feed.get(e) {
                    Some(snap) => (e, snap),
                    None => {
                        return Response::Error(WireError::EpochRetired(shared.feed.info().oldest))
                    }
                },
            };
            let page = if limit == 0 {
                SYNC_PAGE_MAX_ENTRIES
            } else {
                limit.min(SYNC_PAGE_MAX_ENTRIES)
            };
            let lo = match after {
                None => std::ops::Bound::Unbounded,
                Some(k) => std::ops::Bound::Excluded(k),
            };
            let (entries, complete) = snap.range(lo, std::ops::Bound::Unbounded, page as usize);
            Response::SyncPage {
                epoch,
                entries,
                done: complete,
            }
        }
        Request::Stats => {
            let s = shared.backend.stats();
            Response::Stats(WireStats {
                ops: s.ops,
                attempts: s.attempts,
                cas_failures: s.cas_failures,
                noop_updates: s.noop_updates,
                reads: s.reads,
                frozen_installs: s.frozen_installs,
                freeze_retries: s.freeze_retries,
                len: shared.backend.len() as u64,
                snapshots: shared.snapshots.lock().len() as u64,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ShardedServe;
    use crate::client::Client;
    use pathcopy_concurrent::BatchOp;

    fn sharded_server() -> ServerHandle {
        spawn(
            Box::new(ShardedServe::with_shards(8)),
            ServerConfig::default(),
        )
        .expect("bind ephemeral port")
    }

    #[test]
    fn point_ops_roundtrip_over_loopback() {
        let server = sharded_server();
        let mut c = Client::connect(server.addr()).unwrap();
        assert_eq!(c.insert(1, 10).unwrap(), None);
        assert_eq!(c.insert(1, 11).unwrap(), Some(10));
        assert_eq!(c.get(1).unwrap(), Some(11));
        assert!(c.cas(1, Some(11), Some(12)).unwrap());
        assert!(!c.cas(1, Some(11), Some(13)).unwrap());
        assert_eq!(c.remove(1).unwrap(), Some(12));
        assert_eq!(c.get(1).unwrap(), None);
        server.shutdown();
    }

    #[test]
    fn snapshot_table_serves_all_connections() {
        let server = sharded_server();
        let mut a = Client::connect(server.addr()).unwrap();
        let mut b = Client::connect(server.addr()).unwrap();
        for k in 0..32 {
            a.insert(k, k * 10).unwrap();
        }
        let snap = a.snapshot().unwrap();
        // The other connection can read the pinned version by id.
        let (entries, complete) = b.range(Some(snap), .., 0).unwrap();
        assert_eq!(entries.len(), 32);
        assert!(complete);
        // Release from the second connection, too.
        assert!(b.release(snap).unwrap());
        assert!(!a.release(snap).unwrap(), "double release reports absence");
        let err = a.range(Some(snap), .., 0).unwrap_err();
        assert!(matches!(
            err,
            crate::client::ClientError::Server(WireError::UnknownSnapshot(_))
        ));
        server.shutdown();
    }

    #[test]
    fn range_limit_reports_truncation() {
        let server = sharded_server();
        let mut c = Client::connect(server.addr()).unwrap();
        for k in 0..100 {
            c.insert(k, k).unwrap();
        }
        let (page, complete) = c.range(None, .., 10).unwrap();
        assert_eq!(page.len(), 10);
        assert!(!complete);
        assert!(page.windows(2).all(|w| w[0].0 < w[1].0), "ordered");
        let (rest, complete) = c.range(None, 90.., 0).unwrap();
        assert_eq!(rest.len(), 10);
        assert!(complete);
        server.shutdown();
    }

    #[test]
    fn stats_count_ops_and_snapshots() {
        let server = sharded_server();
        let mut c = Client::connect(server.addr()).unwrap();
        for k in 0..10 {
            c.insert(k, k).unwrap();
        }
        let _snap = c.snapshot().unwrap();
        let stats = c.stats().unwrap();
        assert!(stats.ops >= 10);
        assert_eq!(stats.len, 10);
        assert_eq!(stats.snapshots, 1);
        assert!(server.requests_served() >= 12);
        server.shutdown();
    }

    #[test]
    fn snapshot_table_is_capped() {
        let server = spawn(
            Box::new(ShardedServe::with_shards(2)),
            ServerConfig {
                max_snapshots: 3,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        let ids: Vec<_> = (0..3).map(|_| c.snapshot().unwrap()).collect();
        let err = c.snapshot().unwrap_err();
        assert!(matches!(
            err,
            crate::client::ClientError::Server(WireError::SnapshotLimit(3))
        ));
        assert!(c.release(ids[0]).unwrap(), "release frees a slot");
        c.snapshot().unwrap();
        server.shutdown();
    }

    #[test]
    fn feed_publish_pull_diff_and_retirement_over_the_wire() {
        let server = spawn(
            Box::new(ShardedServe::with_shards(8)),
            ServerConfig {
                feed_capacity: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut c = Client::connect(server.addr()).unwrap();

        let info = c.feed_info().unwrap();
        assert_eq!((info.head, info.oldest, info.capacity), (0, 0, 2));

        c.insert(1, 10).unwrap();
        let e1 = c.publish().unwrap();
        assert_eq!(e1, 1);

        // At the head: the diff is empty.
        let (to, diff) = c.pull_diff(e1).unwrap();
        assert_eq!(to, e1);
        assert!(diff.is_empty());

        c.insert(1, 11).unwrap();
        c.insert(2, 20).unwrap();
        let e2 = c.publish().unwrap();
        let (to, diff) = c.pull_diff(e1).unwrap();
        assert_eq!(to, e2);
        assert_eq!(diff.len(), 2, "changed + added");

        // Capacity 2: a third publish retires e1.
        c.insert(3, 30).unwrap();
        let _e3 = c.publish().unwrap();
        let err = c.pull_diff(e1).unwrap_err();
        assert!(matches!(
            err,
            crate::client::ClientError::Server(WireError::EpochRetired(oldest)) if oldest == e2
        ));
        server.shutdown();
    }

    #[test]
    fn full_sync_pages_are_bounded_and_pinned() {
        let server = sharded_server();
        let mut c = Client::connect(server.addr()).unwrap();
        for k in 0..100 {
            c.insert(k, k * 2).unwrap();
        }
        // First page pins a fresh epoch.
        let (epoch, page1, done) = c.full_sync_page(None, None, 32).unwrap();
        assert_eq!(page1.len(), 32);
        assert!(!done);
        // Writes after the pin must not leak into later pages.
        c.insert(1000, 1).unwrap();
        c.remove(page1.last().unwrap().0 + 1).unwrap();
        let mut all = page1.clone();
        let mut after = Some(page1.last().unwrap().0);
        loop {
            let (e, page, done) = c.full_sync_page(Some(epoch), after, 32).unwrap();
            assert_eq!(e, epoch);
            all.extend_from_slice(&page);
            if done {
                break;
            }
            after = Some(page.last().unwrap().0);
        }
        assert_eq!(all.len(), 100, "exactly the pinned version's entries");
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "ordered pages");
        assert_eq!(all, (0..100).map(|k| (k, k * 2)).collect::<Vec<_>>());
        server.shutdown();
    }

    #[test]
    fn guarded_batch_over_the_wire_aborts_cleanly() {
        let server = sharded_server();
        let mut c = Client::connect(server.addr()).unwrap();
        c.insert(1, 10).unwrap();
        let aborted = c
            .batch_guarded(&[
                BatchOp::Insert(2, 20),
                BatchOp::Cas {
                    key: 1,
                    expected: Some(99),
                    new: Some(100),
                },
            ])
            .unwrap()
            .unwrap_err();
        assert_eq!(aborted, vec![1]);
        assert_eq!(c.get(2).unwrap(), None, "abort left no partial writes");

        let committed = c
            .batch_guarded(&[
                BatchOp::Insert(2, 20),
                BatchOp::Cas {
                    key: 1,
                    expected: Some(10),
                    new: Some(11),
                },
            ])
            .unwrap()
            .expect("guards match");
        assert_eq!(committed.len(), 2);
        assert_eq!(c.get(1).unwrap(), Some(11));
        server.shutdown();
    }

    #[test]
    fn client_wire_bytes_count_both_directions() {
        let server = sharded_server();
        let mut c = Client::connect(server.addr()).unwrap();
        let before = c.wire_bytes();
        assert_eq!(before.total(), 0);
        c.insert(1, 10).unwrap();
        let after = c.wire_bytes();
        assert!(after.sent > 0 && after.received > 0);
        // A 100-entry range moves visibly more than a point op.
        for k in 0..100 {
            c.insert(k, k).unwrap();
        }
        let before_scan = c.wire_bytes();
        c.range(None, .., 0).unwrap();
        let scan = c.wire_bytes().since(&before_scan);
        assert!(
            scan.received > 100 * 16,
            "scan reply bytes ({}) must cover the entries",
            scan.received
        );
        server.shutdown();
    }

    #[test]
    fn malformed_frame_gets_error_then_close() {
        use std::io::{Read as _, Write as _};
        let server = sharded_server();
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        // A framed body with a bogus request tag.
        let body = [crate::proto::PROTO_VERSION, 0xEE];
        raw.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
        raw.write_all(&body).unwrap();
        let resp = crate::proto::read_response(&mut raw).unwrap();
        assert_eq!(resp, Response::Error(WireError::Malformed));
        // The server then closes the stream.
        let mut rest = Vec::new();
        assert_eq!(raw.read_to_end(&mut rest).unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn shutdown_unblocks_parked_connections() {
        let server = sharded_server();
        let mut c = Client::connect(server.addr()).unwrap();
        c.insert(1, 1).unwrap();
        // `c` stays connected with its worker parked in a read; shutdown
        // must not hang on it.
        server.shutdown();
        assert!(c.get(1).is_err(), "connection is dead after shutdown");
    }

    #[test]
    fn more_connections_than_workers_are_served_in_turn() {
        let server = spawn(
            Box::new(ShardedServe::with_shards(4)),
            ServerConfig::with_workers(2),
        )
        .unwrap();
        // Sequential connect/use/drop cycles: each frees its worker for
        // the next, so 6 connections pass through 2 workers.
        for round in 0..6 {
            let mut c = Client::connect(server.addr()).unwrap();
            assert_eq!(c.insert(round, round).unwrap(), None);
        }
        let mut c = Client::connect(server.addr()).unwrap();
        assert_eq!(c.stats().unwrap().len, 6);
        server.shutdown();
    }
}
