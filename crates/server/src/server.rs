//! The TCP server: an event-driven core, a backend work pool, and the
//! named-snapshot version table.
//!
//! [`spawn`] binds a listener (an ephemeral loopback port by default)
//! and starts one event-loop thread (the private `event` module) that
//! owns every connection nonblockingly; decoded requests run on a
//! [`ThreadPool`](crate::pool::ThreadPool) of `workers` threads, so
//! connection count and execution parallelism are independent knobs —
//! thousands of mostly-idle connections cost fds and buffers, not
//! threads. The server is generic over its engine through
//! `Box<dyn ServeBackend>` — any backend of the registry
//! ([`crate::backend::backends`]) can be served unchanged.
//!
//! The **version table** is what makes the serving layer more than a
//! remote hash map: a [`Request::Snapshot`] pins a coherent snapshot
//! under a fresh [`SnapshotId`], and later [`Request::Range`] /
//! [`Request::Diff`] calls — from *any* connection — read that frozen
//! version while writers race ahead. This is the paper's O(1)-snapshot
//! property exposed over the network: pinning a version costs an `Arc`
//! clone per shard root, never a copy of the data, and holding one never
//! blocks a writer.
//!
//! Shutdown ([`ServerHandle::shutdown`], also run on drop) is
//! deterministic: the stop flag is raised, a byte on the self-wake pipe
//! returns the event loop from its poll, and the loop's teardown closes
//! every connection socket and joins the pool.

use std::collections::HashMap;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;
use pathcopy_concurrent::{BatchOp, BatchResult};
use pathcopy_core::{ByteCounters, ByteCountersSnapshot};
use pathcopy_trace::{Flight, TraceContext, TraceRecorder};

use crate::backend::{ServeBackend, ServeSnapshot};
use crate::event::{Completions, EventLoop, PushHub, Tunables};
use crate::feed::{FeedSink, VersionFeed};
use crate::metrics::{MetricsSource, ServerMetrics};
use crate::proto::{
    Epoch, Request, Response, ServerGauges, SnapshotId, StageSummary, WireError, WireStats,
    MAX_FRAME_LEN, SYNC_PAGE_MAX_ENTRIES,
};

/// Tunables for [`spawn`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Address to bind; the default is an ephemeral loopback port
    /// (`127.0.0.1:0`), read back via [`ServerHandle::addr`].
    pub addr: SocketAddr,
    /// Backend worker threads — the execution parallelism for request
    /// handling. Connections are multiplexed on the event loop and are
    /// **not** bounded by this (see [`ServerConfig::max_conns`]).
    pub workers: usize,
    /// Maximum accepts drained per listener readiness wake. Bounds how
    /// long an accept storm can monopolize one loop iteration before
    /// established connections get service again.
    pub backlog: usize,
    /// Maximum simultaneous connections; accepts beyond the cap are
    /// refused (the socket is closed immediately after the handshake).
    pub max_conns: usize,
    /// Per-connection bound on in-flight (dispatched, unanswered)
    /// requests. A pipelined client pushing past it gets an immediate
    /// [`WireError::Busy`] for the excess request — admission control
    /// instead of unbounded server-side queueing. Lock-step clients
    /// (at most one request in flight) never trip it.
    pub queue_depth: usize,
    /// Capacity of the version table. Every pinned snapshot keeps an
    /// entire map version alive under write churn, and nothing but an
    /// explicit [`Request::Release`] unpins one (snapshots deliberately
    /// outlive their connection), so the table is capped: a
    /// [`Request::Snapshot`] beyond the cap is refused with
    /// [`WireError::SnapshotLimit`].
    pub max_snapshots: usize,
    /// How many published epochs the replication feed retains
    /// ([`Request::Publish`]; min 1). A replica whose applied epoch is
    /// retired from the ring must bootstrap again via
    /// [`Request::FullSync`], so this bounds how far a replica may lag
    /// while still catching up with cheap diffs.
    pub feed_capacity: usize,
    /// First epoch the feed will assign (min 1; the default). A primary
    /// recovered from a durable log passes `log head + 1` so epoch
    /// numbers are never reused for different states.
    pub feed_start: Epoch,
    /// Optional observer of every published epoch, called under the
    /// feed lock ([`FeedSink`]) — the attachment point for
    /// `pathcopy-durable`'s `FeedPersister`. `None` (the default) keeps
    /// the feed purely in memory.
    pub feed_sink: Option<Arc<dyn FeedSink>>,
    /// Whether the event loop records per-stage latency histograms
    /// (queue wait, execute, write/flush — per request tag), scrapeable
    /// via [`Request::Metrics`]. On by default; with `false` every
    /// recorder is the disabled variant and the hot path pays a branch,
    /// not a clock read or an atomic (see `pathcopy-metrics`).
    pub metrics: bool,
    /// Optional flight recorder for distributed request tracing
    /// ([`Request::TraceDump`]). When set, requests arriving with a
    /// wire trace context get per-stage spans (queue wait, execute,
    /// write/flush — plus fsync and push fan-out through the feed
    /// hooks) recorded into this ring; `None` (the default) disables
    /// tracing entirely and every trace call is branch-only.
    pub trace: Option<Arc<Flight>>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("addr", &self.addr)
            .field("workers", &self.workers)
            .field("backlog", &self.backlog)
            .field("max_conns", &self.max_conns)
            .field("queue_depth", &self.queue_depth)
            .field("max_snapshots", &self.max_snapshots)
            .field("feed_capacity", &self.feed_capacity)
            .field("feed_start", &self.feed_start)
            .field(
                "feed_sink",
                &self.feed_sink.as_ref().map(|_| "dyn FeedSink"),
            )
            .field("metrics", &self.metrics)
            .field("trace", &self.trace.as_ref().map(|f| f.node()))
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 4,
            backlog: 64,
            max_conns: 4096,
            queue_depth: 64,
            max_snapshots: 1024,
            feed_capacity: 64,
            feed_start: 1,
            feed_sink: None,
            metrics: true,
            trace: None,
        }
    }
}

impl ServerConfig {
    /// A builder starting from [`Default::default`] — the idiomatic way
    /// to set several knobs:
    ///
    /// ```
    /// use pathcopy_server::ServerConfig;
    ///
    /// let config = ServerConfig::builder()
    ///     .workers(8)
    ///     .max_conns(10_000)
    ///     .queue_depth(32)
    ///     .build();
    /// assert_eq!(config.workers, 8);
    /// ```
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: Self::default(),
        }
    }

    /// [`Default::default`] with a different worker count — shorthand
    /// for `ServerConfig::builder().workers(n).build()`, kept because
    /// it is what almost every test and tool wants.
    pub fn with_workers(workers: usize) -> Self {
        Self::builder().workers(workers).build()
    }
}

/// Builder for [`ServerConfig`]; see [`ServerConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Sets the bind address ([`ServerConfig::addr`]).
    pub fn addr(mut self, addr: SocketAddr) -> Self {
        self.config.addr = addr;
        self
    }

    /// Sets the backend worker-thread count ([`ServerConfig::workers`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the per-wake accept burst ([`ServerConfig::backlog`]).
    pub fn backlog(mut self, backlog: usize) -> Self {
        self.config.backlog = backlog;
        self
    }

    /// Sets the simultaneous-connection cap
    /// ([`ServerConfig::max_conns`]).
    pub fn max_conns(mut self, max_conns: usize) -> Self {
        self.config.max_conns = max_conns;
        self
    }

    /// Sets the per-connection in-flight bound
    /// ([`ServerConfig::queue_depth`]).
    pub fn queue_depth(mut self, queue_depth: usize) -> Self {
        self.config.queue_depth = queue_depth;
        self
    }

    /// Sets the version-table cap ([`ServerConfig::max_snapshots`]).
    pub fn max_snapshots(mut self, max_snapshots: usize) -> Self {
        self.config.max_snapshots = max_snapshots;
        self
    }

    /// Sets the feed ring capacity ([`ServerConfig::feed_capacity`]).
    pub fn feed_capacity(mut self, feed_capacity: usize) -> Self {
        self.config.feed_capacity = feed_capacity;
        self
    }

    /// Sets the first epoch the feed assigns
    /// ([`ServerConfig::feed_start`]).
    pub fn feed_start(mut self, feed_start: Epoch) -> Self {
        self.config.feed_start = feed_start;
        self
    }

    /// Attaches a publish observer ([`ServerConfig::feed_sink`]).
    pub fn feed_sink(mut self, sink: Arc<dyn FeedSink>) -> Self {
        self.config.feed_sink = Some(sink);
        self
    }

    /// Enables or disables per-stage latency tracing
    /// ([`ServerConfig::metrics`]).
    pub fn metrics(mut self, metrics: bool) -> Self {
        self.config.metrics = metrics;
        self
    }

    /// Attaches a trace flight recorder ([`ServerConfig::trace`]).
    pub fn trace(mut self, flight: Arc<Flight>) -> Self {
        self.config.trace = Some(flight);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> ServerConfig {
        self.config
    }
}

/// State shared by the event loop and every pool worker.
pub(crate) struct Shared {
    backend: Box<dyn ServeBackend>,
    /// The version table: named snapshot handles pinned by
    /// [`Request::Snapshot`], readable from any connection until
    /// released.
    snapshots: Mutex<HashMap<SnapshotId, Arc<dyn ServeSnapshot>>>,
    next_snapshot: AtomicU64,
    max_snapshots: usize,
    /// The replication feed: epoch-keyed recent versions replicas sync
    /// from ([`Request::Publish`]/[`Request::PullDiff`]/
    /// [`Request::FullSync`]).
    pub(crate) feed: VersionFeed,
    pub(crate) requests: AtomicU64,
    /// Requests refused at admission control with [`WireError::Busy`].
    pub(crate) shed: AtomicU64,
    /// Gauge of currently open connections, maintained by the loop.
    pub(crate) open_conns: AtomicU64,
    /// Server-side wire byte counters, maintained by the loop on every
    /// socket read and write.
    pub(crate) wire: ByteCounters,
    /// The push fan-out registry; also the feed's [`EpochFanout`](
    /// crate::feed) hook.
    pub(crate) push: Arc<PushHub>,
    /// Per-stage latency tracing ([`Request::Metrics`]); every recorder
    /// is disabled when [`ServerConfig::metrics`] is `false`.
    pub(crate) metrics: Arc<ServerMetrics>,
    /// Distributed-trace span recording ([`Request::TraceDump`]);
    /// disabled unless [`ServerConfig::trace`] supplied a flight
    /// recorder.
    pub(crate) trace: TraceRecorder,
    pub(crate) stop: AtomicBool,
}

impl Shared {
    /// Assembles the scrapeable process gauges ([`Request::Gauges`]).
    fn gauges(&self) -> ServerGauges {
        let wire = self.wire.snapshot();
        ServerGauges {
            requests: self.requests.load(Ordering::Relaxed),
            requests_shed: self.shed.load(Ordering::Relaxed),
            open_conns: self.open_conns.load(Ordering::Relaxed),
            wire_sent: wire.sent,
            wire_received: wire.received,
            subscribers: self.push.subscriber_count(),
            pushes: self.push.pushes.load(Ordering::Relaxed),
            push_demotions: self.push.demotions.load(Ordering::Relaxed),
            feed_head: self.feed.info().head,
        }
    }
}

/// A running server; dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the event loop and joins every
/// worker.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    /// Write end of the loop's self-wake pipe, poked on shutdown.
    wake: UnixStream,
    thread: Option<JoinHandle<()>>,
}

/// Binds `config.addr` and serves `backend` until the handle is dropped.
///
/// # Errors
///
/// Any [`io::Error`] from binding the listener or spawning the accept
/// thread (e.g. the address is in use or privileged).
///
/// # Examples
///
/// ```
/// use pathcopy_server::{backend, Client, ServerConfig};
///
/// let server = pathcopy_server::spawn(
///     backend::by_name("sharded_map_8").unwrap(),
///     ServerConfig::default(),
/// )
/// .unwrap();
/// let mut client = Client::connect(server.addr()).unwrap();
/// assert_eq!(client.insert(1, 10).unwrap(), None);
/// assert_eq!(client.get(1).unwrap(), Some(10));
/// server.shutdown();
/// ```
pub fn spawn(backend: Box<dyn ServeBackend>, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr)?;
    let addr = listener.local_addr()?;
    // The self-wake pipe: pool workers (and shutdown) poke the write
    // end, the event loop polls the read end.
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    let handle_wake = wake_tx.try_clone()?;
    let completions = Arc::new(Completions::new(wake_tx));
    let push = Arc::new(PushHub::new(Arc::clone(&completions)));
    let shared = Arc::new(Shared {
        backend,
        snapshots: Mutex::new(HashMap::new()),
        next_snapshot: AtomicU64::new(0),
        max_snapshots: config.max_snapshots,
        feed: VersionFeed::configured(config.feed_capacity, config.feed_start, config.feed_sink),
        requests: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        open_conns: AtomicU64::new(0),
        wire: ByteCounters::new(),
        push: Arc::clone(&push),
        metrics: Arc::new(ServerMetrics::new(config.metrics)),
        trace: config
            .trace
            .map_or(TraceRecorder::Disabled, TraceRecorder::Enabled),
        stop: AtomicBool::new(false),
    });
    shared.feed.set_fanout(push);
    let event_loop = EventLoop::new(
        listener,
        wake_rx,
        Arc::clone(&shared),
        completions,
        config.workers,
        Tunables {
            backlog: config.backlog,
            max_conns: config.max_conns,
            queue_depth: config.queue_depth,
        },
    )?;
    let thread = std::thread::Builder::new()
        .name("pathcopy-server-loop".to_string())
        .spawn(move || event_loop.run())?;
    Ok(ServerHandle {
        addr,
        shared,
        wake: handle_wake,
        thread: Some(thread),
    })
}

impl ServerHandle {
    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests served so far, across all connections. Shed
    /// requests ([`requests_shed`](Self::requests_shed)) are not
    /// served and not counted here.
    pub fn requests_served(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// Requests refused at admission control with [`WireError::Busy`]
    /// because their connection was already at
    /// [`ServerConfig::queue_depth`] in-flight requests.
    pub fn requests_shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Currently open connections (a gauge, momentarily stale by one
    /// event-loop iteration).
    pub fn open_connections(&self) -> u64 {
        self.shared.open_conns.load(Ordering::Relaxed)
    }

    /// The served engine, for in-process inspection (demos, tests).
    pub fn backend(&self) -> &dyn ServeBackend {
        self.shared.backend.as_ref()
    }

    /// Server-side wire byte counters: everything written to and read
    /// from all connections. The exact-accounting counterpart of
    /// [`Client::wire_bytes`](crate::client::Client::wire_bytes) — the
    /// fan-out tests prove primary egress independent of leaf count by
    /// comparing these across topologies.
    pub fn wire_bytes(&self) -> ByteCountersSnapshot {
        self.shared.wire.snapshot()
    }

    /// The scrapeable process gauges, identical to what
    /// [`Request::Gauges`] answers over the wire.
    pub fn gauges(&self) -> ServerGauges {
        self.shared.gauges()
    }

    /// The per-stage latency rows, identical to what
    /// [`Request::Metrics`] answers over the wire. Empty when the
    /// server was spawned with [`ServerConfig::metrics`] off and no
    /// source has been registered.
    pub fn metrics_report(&self) -> Vec<StageSummary> {
        self.shared.metrics.report()
    }

    /// Adds an external histogram source (a durable persister, a push
    /// replica relaying through this server) to this server's
    /// [`Request::Metrics`] scrapes.
    pub fn register_metrics_source(&self, source: Arc<dyn MetricsSource>) {
        self.shared.metrics.register_source(source);
    }

    /// Mirrors the served backend's **current** state into the feed
    /// under `epoch` — an upstream's epoch number, not this feed's next
    /// in sequence. This is how a relay republishes each applied epoch
    /// so its own subscribers and watermarked reads see the primary's
    /// epoch sequence; see [`VersionFeed::publish_at`]. Returns `false`
    /// if `epoch` is already behind this feed.
    pub fn publish_at(&self, epoch: Epoch) -> bool {
        self.shared
            .feed
            .publish_at(epoch, self.shared.backend.snapshot())
    }

    /// [`publish_at`](Self::publish_at) carrying the trace context of
    /// the upstream push being mirrored, so the relay's own push
    /// fan-out re-serves the epoch under the same distributed trace.
    pub fn publish_at_traced(&self, epoch: Epoch, trace: Option<&TraceContext>) -> bool {
        self.shared
            .feed
            .publish_at_traced(epoch, self.shared.backend.snapshot(), trace)
    }

    /// This node's trace flight recorder, when one was configured
    /// ([`ServerConfig::trace`]).
    pub fn flight(&self) -> Option<&Arc<Flight>> {
        self.shared.trace.flight()
    }

    /// Stops the event loop, closes every connection, joins the worker
    /// pool, and returns once the server is fully down. Also performed
    /// on drop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::SeqCst);
        // A byte on the self-wake pipe returns the loop from its poll;
        // it checks the stop flag and tears down.
        let _ = (&self.wake).write(&[1u8]);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Resolves an optional snapshot id: `None` takes a fresh coherent
/// snapshot, `Some` looks up the version table.
fn resolve_snapshot(
    shared: &Shared,
    id: Option<SnapshotId>,
) -> Result<Arc<dyn ServeSnapshot>, WireError> {
    match id {
        None => Ok(shared.backend.snapshot()),
        Some(id) => shared
            .snapshots
            .lock()
            .get(&id)
            .cloned()
            .ok_or(WireError::UnknownSnapshot(id)),
    }
}

/// Executes one request against the shared state — the dispatch every
/// pool worker runs. Pure request→response; framing, ordering, and
/// admission control all live in the event loop. `trace` is the
/// context to propagate into downstream stages (the durable sink and
/// the push fan-out) — for a traced request the event loop passes the
/// child of its own execute span, so downstream spans parent
/// correctly; `None` for untraced requests.
pub(crate) fn handle_request(
    shared: &Shared,
    req: Request,
    trace: Option<&TraceContext>,
) -> Response {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    match req {
        Request::Get { key } => Response::Got(shared.backend.get(key)),
        Request::Insert { key, value } => Response::Inserted(shared.backend.insert(key, value)),
        Request::Remove { key } => Response::Removed(shared.backend.remove(key)),
        Request::Cas { key, expected, new } => {
            Response::CasApplied(shared.backend.cas(key, expected, new))
        }
        Request::Batch { ops, guarded } => {
            if guarded {
                match shared.backend.transact_guarded(&ops) {
                    Ok(results) => Response::Batch(results),
                    Err(failed) => Response::BatchAborted(failed),
                }
            } else {
                Response::Batch(shared.backend.transact(&ops))
            }
        }
        Request::Snapshot => {
            let mut table = shared.snapshots.lock();
            if table.len() >= shared.max_snapshots {
                return Response::Error(WireError::SnapshotLimit(shared.max_snapshots as u64));
            }
            let snap = shared.backend.snapshot();
            let id = shared.next_snapshot.fetch_add(1, Ordering::Relaxed) + 1;
            table.insert(id, snap);
            Response::SnapshotTaken(id)
        }
        Request::Range {
            snapshot,
            lo,
            hi,
            limit,
        } => match resolve_snapshot(shared, snapshot) {
            Err(e) => Response::Error(e),
            Ok(snap) => {
                let (entries, complete) = snap.range(lo, hi, limit as usize);
                Response::Entries { entries, complete }
            }
        },
        Request::Diff { from, to } => {
            let old = match resolve_snapshot(shared, Some(from)) {
                Ok(s) => s,
                Err(e) => return Response::Error(e),
            };
            let new = match resolve_snapshot(shared, to) {
                Ok(s) => s,
                Err(e) => return Response::Error(e),
            };
            match old.diff(new.as_ref()) {
                Some(diff) => Response::Diff(diff),
                None => Response::Error(WireError::SnapshotMismatch),
            }
        }
        Request::Release { snapshot } => {
            Response::Released(shared.snapshots.lock().remove(&snapshot).is_some())
        }
        // The snapshot is taken under the feed lock (`publish_with`),
        // not before it: an epoch number observed after a write
        // completes must name a snapshot containing that write, or
        // WriteAt watermarks would lie.
        Request::Publish => Response::Published(
            shared
                .feed
                .publish_with_traced(|| shared.backend.snapshot(), trace),
        ),
        Request::Subscribe => Response::FeedInfo(shared.feed.info()),
        Request::PullDiff { from } => {
            let Some(from_snap) = shared.feed.get(from) else {
                return Response::Error(WireError::EpochRetired(shared.feed.info().oldest));
            };
            // `from` is retained, so the feed is non-empty and has a head.
            let (to, head) = shared.feed.head().expect("non-empty feed");
            if to == from {
                return Response::EpochDiff {
                    to,
                    entries: Vec::new(),
                };
            }
            match from_snap.diff(head.as_ref()) {
                // A diff entry encodes to at least 17 bytes, so a reply
                // that cannot possibly fit the frame cap is refused here,
                // before encoding a multi-megabyte body just to discard
                // it (the client falls back to a chunked FullSync).
                Some(entries) if entries.len() as u64 * 17 > MAX_FRAME_LEN as u64 => {
                    Response::Error(WireError::TooLarge)
                }
                Some(entries) => Response::EpochDiff { to, entries },
                None => Response::Error(WireError::SnapshotMismatch),
            }
        }
        Request::FullSync {
            epoch,
            after,
            limit,
        } => {
            let (epoch, snap) = match epoch {
                // A fresh sync serves the current head, publishing a new
                // epoch only when the feed is empty. Reusing the head
                // keeps concurrent bootstraps on one shared pin —
                // publishing per bootstrap would retire rival pins and
                // could livelock restarts on a tiny ring — and the
                // replica lands exactly on a feed version either way,
                // catching up to later writes with diffs.
                None => match shared.feed.head() {
                    Some((e, snap)) => (e, snap),
                    None => {
                        let snap = shared.backend.snapshot();
                        (shared.feed.publish(Arc::clone(&snap)), snap)
                    }
                },
                Some(e) => match shared.feed.get(e) {
                    Some(snap) => (e, snap),
                    None => {
                        return Response::Error(WireError::EpochRetired(shared.feed.info().oldest))
                    }
                },
            };
            let page = if limit == 0 {
                SYNC_PAGE_MAX_ENTRIES
            } else {
                limit.min(SYNC_PAGE_MAX_ENTRIES)
            };
            let lo = match after {
                None => std::ops::Bound::Unbounded,
                Some(k) => std::ops::Bound::Excluded(k),
            };
            let (entries, complete) = snap.range(lo, std::ops::Bound::Unbounded, page as usize);
            Response::SyncPage {
                epoch,
                entries,
                done: complete,
            }
        }
        // Registration is connection state, so SubscribePush is handled
        // inline by the event loop and never reaches a worker; seeing it
        // here means a caller bypassed the loop.
        Request::SubscribePush { .. } => Response::Error(WireError::Malformed),
        Request::GetAt {
            key,
            min_epoch,
            wait_ms,
        } => {
            // Bounded wait for the feed to reach the caller's session
            // watermark. The wait parks a pool worker, so it is clamped
            // hard; a load-bearing deployment sizes `workers` for it.
            let deadline = std::time::Instant::now()
                + std::time::Duration::from_millis(wait_ms.min(1000) as u64);
            loop {
                let head = shared.feed.info().head;
                if head >= min_epoch {
                    return Response::GotAt {
                        value: shared.backend.get(key),
                        epoch: head,
                    };
                }
                if std::time::Instant::now() >= deadline {
                    return Response::Error(WireError::Stale(head));
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        Request::WriteAt { op } => {
            let result = match op {
                BatchOp::Get(k) => BatchResult::Got(shared.backend.get(k)),
                BatchOp::Insert(k, v) => BatchResult::Inserted(shared.backend.insert(k, v)),
                BatchOp::Remove(k) => BatchResult::Removed(shared.backend.remove(k)),
                BatchOp::Cas { key, expected, new } => {
                    BatchResult::Cas(shared.backend.cas(key, expected, new))
                }
            };
            // Read *after* the write: `publish_with` snapshots under
            // the feed lock, so every epoch from this number on
            // contains the write — the session watermark.
            Response::WroteAt {
                result,
                watermark: shared.feed.next_epoch(),
            }
        }
        Request::Gauges => Response::Gauges(shared.gauges()),
        Request::Metrics => Response::Metrics(shared.metrics.report()),
        Request::ResetMetrics => {
            shared.metrics.reset_all();
            Response::MetricsReset
        }
        Request::TraceDump => match shared.trace.flight() {
            Some(flight) => Response::TraceDump {
                node: flight.node().to_string(),
                spans: flight.dump(),
            },
            // Tracing disabled: an empty dump, not an error, so a
            // cluster-wide collection pass needn't special-case
            // untraced nodes.
            None => Response::TraceDump {
                node: String::new(),
                spans: Vec::new(),
            },
        },
        Request::Stats => {
            let s = shared.backend.stats();
            Response::Stats(WireStats {
                ops: s.ops,
                attempts: s.attempts,
                cas_failures: s.cas_failures,
                noop_updates: s.noop_updates,
                reads: s.reads,
                frozen_installs: s.frozen_installs,
                freeze_retries: s.freeze_retries,
                len: shared.backend.len() as u64,
                snapshots: shared.snapshots.lock().len() as u64,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ShardedServe;
    use crate::client::Client;
    use pathcopy_concurrent::BatchOp;
    use std::net::TcpStream;

    fn sharded_server() -> ServerHandle {
        spawn(
            Box::new(ShardedServe::with_shards(8)),
            ServerConfig::default(),
        )
        .expect("bind ephemeral port")
    }

    #[test]
    fn point_ops_roundtrip_over_loopback() {
        let server = sharded_server();
        let mut c = Client::connect(server.addr()).unwrap();
        assert_eq!(c.insert(1, 10).unwrap(), None);
        assert_eq!(c.insert(1, 11).unwrap(), Some(10));
        assert_eq!(c.get(1).unwrap(), Some(11));
        assert!(c.cas(1, Some(11), Some(12)).unwrap());
        assert!(!c.cas(1, Some(11), Some(13)).unwrap());
        assert_eq!(c.remove(1).unwrap(), Some(12));
        assert_eq!(c.get(1).unwrap(), None);
        server.shutdown();
    }

    #[test]
    fn snapshot_table_serves_all_connections() {
        let server = sharded_server();
        let mut a = Client::connect(server.addr()).unwrap();
        let mut b = Client::connect(server.addr()).unwrap();
        for k in 0..32 {
            a.insert(k, k * 10).unwrap();
        }
        let snap = a.snapshot().unwrap();
        // The other connection can read the pinned version by id.
        let (entries, complete) = b.range(Some(snap), .., 0).unwrap();
        assert_eq!(entries.len(), 32);
        assert!(complete);
        // Release from the second connection, too.
        assert!(b.release(snap).unwrap());
        assert!(!a.release(snap).unwrap(), "double release reports absence");
        let err = a.range(Some(snap), .., 0).unwrap_err();
        assert!(matches!(
            err,
            crate::client::ClientError::Server(WireError::UnknownSnapshot(_))
        ));
        server.shutdown();
    }

    #[test]
    fn range_limit_reports_truncation() {
        let server = sharded_server();
        let mut c = Client::connect(server.addr()).unwrap();
        for k in 0..100 {
            c.insert(k, k).unwrap();
        }
        let (page, complete) = c.range(None, .., 10).unwrap();
        assert_eq!(page.len(), 10);
        assert!(!complete);
        assert!(page.windows(2).all(|w| w[0].0 < w[1].0), "ordered");
        let (rest, complete) = c.range(None, 90.., 0).unwrap();
        assert_eq!(rest.len(), 10);
        assert!(complete);
        server.shutdown();
    }

    #[test]
    fn stats_count_ops_and_snapshots() {
        let server = sharded_server();
        let mut c = Client::connect(server.addr()).unwrap();
        for k in 0..10 {
            c.insert(k, k).unwrap();
        }
        let _snap = c.snapshot().unwrap();
        let stats = c.stats().unwrap();
        assert!(stats.ops >= 10);
        assert_eq!(stats.len, 10);
        assert_eq!(stats.snapshots, 1);
        assert!(server.requests_served() >= 12);
        server.shutdown();
    }

    #[test]
    fn snapshot_table_is_capped() {
        let server = spawn(
            Box::new(ShardedServe::with_shards(2)),
            ServerConfig {
                max_snapshots: 3,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        let ids: Vec<_> = (0..3).map(|_| c.snapshot().unwrap()).collect();
        let err = c.snapshot().unwrap_err();
        assert!(matches!(
            err,
            crate::client::ClientError::Server(WireError::SnapshotLimit(3))
        ));
        assert!(c.release(ids[0]).unwrap(), "release frees a slot");
        c.snapshot().unwrap();
        server.shutdown();
    }

    #[test]
    fn feed_publish_pull_diff_and_retirement_over_the_wire() {
        let server = spawn(
            Box::new(ShardedServe::with_shards(8)),
            ServerConfig {
                feed_capacity: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut c = Client::connect(server.addr()).unwrap();

        let info = c.feed_info().unwrap();
        assert_eq!((info.head, info.oldest, info.capacity), (0, 0, 2));

        c.insert(1, 10).unwrap();
        let e1 = c.publish().unwrap();
        assert_eq!(e1, 1);

        // At the head: the diff is empty.
        let (to, diff) = c.pull_diff(e1).unwrap();
        assert_eq!(to, e1);
        assert!(diff.is_empty());

        c.insert(1, 11).unwrap();
        c.insert(2, 20).unwrap();
        let e2 = c.publish().unwrap();
        let (to, diff) = c.pull_diff(e1).unwrap();
        assert_eq!(to, e2);
        assert_eq!(diff.len(), 2, "changed + added");

        // Capacity 2: a third publish retires e1.
        c.insert(3, 30).unwrap();
        let _e3 = c.publish().unwrap();
        let err = c.pull_diff(e1).unwrap_err();
        assert!(matches!(
            err,
            crate::client::ClientError::Server(WireError::EpochRetired(oldest)) if oldest == e2
        ));
        server.shutdown();
    }

    #[test]
    fn full_sync_pages_are_bounded_and_pinned() {
        let server = sharded_server();
        let mut c = Client::connect(server.addr()).unwrap();
        for k in 0..100 {
            c.insert(k, k * 2).unwrap();
        }
        // First page pins a fresh epoch.
        let (epoch, page1, done) = c.full_sync_page(None, None, 32).unwrap();
        assert_eq!(page1.len(), 32);
        assert!(!done);
        // Writes after the pin must not leak into later pages.
        c.insert(1000, 1).unwrap();
        c.remove(page1.last().unwrap().0 + 1).unwrap();
        let mut all = page1.clone();
        let mut after = Some(page1.last().unwrap().0);
        loop {
            let (e, page, done) = c.full_sync_page(Some(epoch), after, 32).unwrap();
            assert_eq!(e, epoch);
            all.extend_from_slice(&page);
            if done {
                break;
            }
            after = Some(page.last().unwrap().0);
        }
        assert_eq!(all.len(), 100, "exactly the pinned version's entries");
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "ordered pages");
        assert_eq!(all, (0..100).map(|k| (k, k * 2)).collect::<Vec<_>>());
        server.shutdown();
    }

    #[test]
    fn guarded_batch_over_the_wire_aborts_cleanly() {
        let server = sharded_server();
        let mut c = Client::connect(server.addr()).unwrap();
        c.insert(1, 10).unwrap();
        let aborted = c
            .batch_guarded(&[
                BatchOp::Insert(2, 20),
                BatchOp::Cas {
                    key: 1,
                    expected: Some(99),
                    new: Some(100),
                },
            ])
            .unwrap()
            .unwrap_err();
        assert_eq!(aborted, vec![1]);
        assert_eq!(c.get(2).unwrap(), None, "abort left no partial writes");

        let committed = c
            .batch_guarded(&[
                BatchOp::Insert(2, 20),
                BatchOp::Cas {
                    key: 1,
                    expected: Some(10),
                    new: Some(11),
                },
            ])
            .unwrap()
            .expect("guards match");
        assert_eq!(committed.len(), 2);
        assert_eq!(c.get(1).unwrap(), Some(11));
        server.shutdown();
    }

    #[test]
    fn client_wire_bytes_count_both_directions() {
        let server = sharded_server();
        let mut c = Client::connect(server.addr()).unwrap();
        let before = c.wire_bytes();
        assert_eq!(before.total(), 0);
        c.insert(1, 10).unwrap();
        let after = c.wire_bytes();
        assert!(after.sent > 0 && after.received > 0);
        // A 100-entry range moves visibly more than a point op.
        for k in 0..100 {
            c.insert(k, k).unwrap();
        }
        let before_scan = c.wire_bytes();
        c.range(None, .., 0).unwrap();
        let scan = c.wire_bytes().since(&before_scan);
        assert!(
            scan.received > 100 * 16,
            "scan reply bytes ({}) must cover the entries",
            scan.received
        );
        server.shutdown();
    }

    #[test]
    fn malformed_frame_gets_error_then_close() {
        use std::io::{Read as _, Write as _};
        let server = sharded_server();
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        // A framed body with a bogus request tag.
        let body = [crate::proto::PROTO_VERSION, 0xEE];
        raw.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
        raw.write_all(&body).unwrap();
        let resp = crate::proto::read_response(&mut raw).unwrap();
        assert_eq!(resp, Response::Error(WireError::Malformed));
        // The server then closes the stream.
        let mut rest = Vec::new();
        assert_eq!(raw.read_to_end(&mut rest).unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn shutdown_unblocks_parked_connections() {
        let server = sharded_server();
        let mut c = Client::connect(server.addr()).unwrap();
        c.insert(1, 1).unwrap();
        // `c` stays connected with its worker parked in a read; shutdown
        // must not hang on it.
        server.shutdown();
        assert!(c.get(1).is_err(), "connection is dead after shutdown");
    }

    #[test]
    fn more_connections_than_workers_are_served_in_turn() {
        let server = spawn(
            Box::new(ShardedServe::with_shards(4)),
            ServerConfig::with_workers(2),
        )
        .unwrap();
        // Sequential connect/use/drop cycles: each frees its worker for
        // the next, so 6 connections pass through 2 workers.
        for round in 0..6 {
            let mut c = Client::connect(server.addr()).unwrap();
            assert_eq!(c.insert(round, round).unwrap(), None);
        }
        let mut c = Client::connect(server.addr()).unwrap();
        assert_eq!(c.stats().unwrap().len, 6);
        server.shutdown();
    }
}
