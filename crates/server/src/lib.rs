//! # pathcopy-server
//!
//! The network serving layer over the path-copying engine: a
//! length-prefixed binary [wire protocol](proto) whose v3 envelope
//! carries a correlation id so multiple requests can be in flight per
//! connection, an event-driven nonblocking TCP [server] (a single
//! readiness loop over a hand-rolled `epoll`/`poll(2)` shim multiplexes
//! every connection; a [thread pool](pool) executes the backend work),
//! a pipelined [client] ([`Session::submit`] → [`Ticket::wait`], with
//! the blocking [`Client`] as the serial facade), and the primary side
//! of the replication subsystem (the [version feed](feed) replicas sync
//! from; the replica engine and the `loadgen` traffic generator live in
//! `pathcopy-replica`). Everything is `std::net` plus two raw syscalls
//! — the workspace builds offline, so there is no async runtime and no
//! `libc` crate, in the same spirit as the `shims/` crates.
//!
//! Because connections are multiplexed rather than pinned to threads,
//! idle connections are nearly free ([`ServerConfig::max_conns`]
//! bounds them, not the worker count), and overload is shed explicitly:
//! past [`ServerConfig::queue_depth`] in-flight requests on one
//! connection the server answers [`WireError::Busy`] instead of
//! stalling the socket — surfaced client-side as
//! [`ClientError::Busy`].
//!
//! Why a server is the natural front-end for this engine: the paper's
//! construction gives lock-free point writes *plus* O(1) coherent
//! snapshots, which is exactly the split a read-heavy serving system
//! wants. A [`proto::Request::Snapshot`] pins a
//! frozen version in the server's table for pennies; later
//! [`Range`](proto::Request::Range) scans and
//! [`Diff`](proto::Request::Diff)s — from any connection — read that
//! version undisturbed while writers race ahead, and cross-shard
//! [`Batch`](proto::Request::Batch)es commit all-or-nothing through
//! [`ShardedTreapMap::transact`](pathcopy_concurrent::ShardedTreapMap::transact).
//!
//! The server is engine-agnostic: it holds a
//! [`Box<dyn ServeBackend>`](backend::ServeBackend), and
//! [`backend::backends`] adapts every map of the
//! `pathcopy_concurrent::registry` — so the treap, the sharded map at
//! any shard count, and the locked baseline are all servable unchanged.
//!
//! ```
//! use pathcopy_server::{backend, Client, ServerConfig};
//!
//! // An in-process server on an ephemeral loopback port.
//! let server = pathcopy_server::spawn(
//!     backend::by_name("sharded_map_8").unwrap(),
//!     ServerConfig::default(),
//! )
//! .unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! client.insert(1, 10).unwrap();
//! let snap = client.snapshot().unwrap(); // pinned, O(1)
//! client.insert(1, 99).unwrap();
//! let (entries, _) = client.range(Some(snap), .., 0).unwrap();
//! assert_eq!(entries, vec![(1, 10)]); // the pinned version is immutable
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod client;
mod event;
pub mod feed;
pub mod metrics;
mod poll;
pub mod pool;
pub mod proto;
pub mod server;

pub use backend::{ServeBackend, ServeSnapshot};
pub use client::{Client, ClientError, PushFrame, Session, SessionToken, Subscription, Ticket};
pub use feed::{FeedSink, VersionFeed};
pub use metrics::{render_text, MetricsSource, ServerMetrics};
// Tracing types clients and operators need, re-exported so depending on
// `pathcopy-trace` directly is optional.
pub use pathcopy_trace::{
    render_trace, trace_ids, Flight, SpanRecord, TraceContext, TraceRecorder,
};
pub use proto::{
    Epoch, FeedInfo, Framed, ProtoError, Request, RequestId, Response, ServerGauges, SnapshotId,
    StageSummary, WireError, WireStats, MAX_FRAME_LEN, PROTO_TRACE_FLAG, PROTO_V2, PROTO_VERSION,
    PUSH_ID_BASE,
};
pub use server::{spawn, ServerConfig, ServerConfigBuilder, ServerHandle};
