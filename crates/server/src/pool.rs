//! A small hand-rolled thread pool for the accept loop.
//!
//! The build image is offline, so there is no tokio and no rayon; the
//! server follows the same philosophy as the workspace's `shims/`: the
//! minimal dependency-free mechanism that does the job. Jobs are boxed
//! closures pushed through an `mpsc` channel guarded by a mutex (the
//! classic shared-receiver pool); dropping the pool closes the channel
//! and joins every worker, so server shutdown deterministically waits
//! for in-flight connections to drain.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing boxed jobs.
pub struct ThreadPool {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `size` workers (minimum 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("pathcopy-server-worker-{i}"))
                    .spawn(move || loop {
                        // Holding the lock only for the recv keeps job
                        // pickup serialized but execution parallel.
                        let job = match receiver.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => return,
                        };
                        match job {
                            // A panicking job must not take its worker
                            // with it — the pool's capacity would shrink
                            // silently until the server stops serving.
                            Ok(job) => {
                                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            }
                            // Channel closed: the pool is shutting down.
                            Err(_) => return,
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Queues `job` for execution on some worker.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool alive")
            .send(Box::new(job))
            .expect("workers alive");
    }
}

impl Drop for ThreadPool {
    /// Closes the job channel and joins every worker; queued jobs run to
    /// completion first.
    fn drop(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_jobs_run_and_drop_joins() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(4);
            assert_eq!(pool.size(), 4);
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Drop waits for the queue to drain.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_size_rounds_up_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.store(7, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn panicking_job_does_not_kill_its_worker() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("job blew up"));
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        // The single worker must survive to run this.
        pool.execute(move || {
            d.store(1, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn jobs_run_concurrently_across_workers() {
        use std::sync::Barrier;
        let pool = ThreadPool::new(2);
        let barrier = Arc::new(Barrier::new(2));
        // Both jobs block on the same barrier: they can only finish if
        // they run on two workers at once.
        for _ in 0..2 {
            let barrier = Arc::clone(&barrier);
            pool.execute(move || {
                barrier.wait();
            });
        }
        drop(pool); // joins — would deadlock if the pool were serial
    }
}
