//! A minimal readiness facility for the event-driven server core:
//! `epoll(7)` on Linux, `poll(2)` elsewhere on unix — with **no `libc`
//! crate**.
//!
//! The build image is offline, so in the spirit of the workspace's
//! `shims/`, the two or three syscalls the event loop needs are
//! declared directly as `extern "C"` symbols: on every unix target,
//! `std` already links the platform C library, so `epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `poll` and `close` are present at link
//! time, and errno travels through [`io::Error::last_os_error`].
//!
//! [`Poller`] is the small common interface: register a file
//! descriptor under a `u64` token with a read/write interest, then
//! [`wait`](Poller::wait) for [`PollEvent`]s. Both backends are
//! **level-triggered**, so a handler that does not fully drain a ready
//! socket is re-notified on the next wait — the event loop can stay
//! simple and correct rather than chase edge-triggered starvation
//! bugs. The fallback backend rebuilds a `pollfd` array per wait from
//! its registration table; that is O(fds) per wake, which is exactly
//! what `epoll` exists to fix, but it keeps non-Linux unix hosts
//! working with identical semantics.

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollEvent {
    /// The token the fd was registered under.
    pub(crate) token: u64,
    /// The fd has bytes to read (or a pending accept), or the peer
    /// hung up (reading then observes EOF/reset — level-triggered, so
    /// folding hangup into readability loses nothing).
    pub(crate) readable: bool,
    /// The fd can accept more bytes without blocking.
    pub(crate) writable: bool,
}

/// Read/write interest for a registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    pub(crate) read: bool,
    pub(crate) write: bool,
}

impl Interest {
    pub(crate) const READ: Interest = Interest {
        read: true,
        write: false,
    };
}

pub(crate) use imp::Poller;

#[cfg(target_os = "linux")]
mod imp {
    use super::{Interest, PollEvent};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;

    // The kernel ABI packs epoll_event on x86-64 (matching the 32-bit
    // layout); other architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0x80000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// The Linux backend: one epoll instance owning its fd.
    pub(crate) struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes no pointers; the flag is the
            // kernel's own EPOLL_CLOEXEC constant.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, ev: Option<EpollEvent>) -> io::Result<()> {
            let mut ev = ev;
            let ptr = ev
                .as_mut()
                .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is null (DEL, where the kernel ignores it)
            // or points at a live stack EpollEvent for the call's
            // duration; `self.epfd` is the epoll fd this Poller owns.
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, ptr) })?;
            Ok(())
        }

        pub(crate) fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Some(event_of(token, interest)))
        }

        pub(crate) fn reregister(
            &self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Some(event_of(token, interest)))
        }

        pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        /// Blocks until at least one registered fd is ready (no
        /// timeout), appending the notifications to `out`.
        pub(crate) fn wait(&self, out: &mut Vec<PollEvent>) -> io::Result<()> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let n = loop {
                // SAFETY: `buf` is a live array of `buf.len()` events;
                // the kernel writes at most `maxevents` entries.
                match cvt(unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, -1)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let events = ev.events;
                let token = ev.data;
                out.push(PollEvent {
                    token,
                    // Error/hangup surfaces as readability: the next
                    // read returns 0 or the real error.
                    readable: events & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: `self.epfd` is a valid fd this Poller opened and
            // exclusively owns; nothing uses it after drop.
            let _ = unsafe { close(self.epfd) };
        }
    }

    fn event_of(token: u64, interest: Interest) -> EpollEvent {
        let mut events = 0;
        if interest.read {
            events |= EPOLLIN;
        }
        if interest.write {
            events |= EPOLLOUT;
        }
        EpollEvent {
            events,
            data: token,
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{Interest, PollEvent};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::sync::Mutex;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// The portable unix backend: a registration table rebuilt into a
    /// `pollfd` array on every wait.
    pub(crate) struct Poller {
        fds: Mutex<HashMap<RawFd, (u64, Interest)>>,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Mutex::new(HashMap::new()),
            })
        }

        pub(crate) fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.fds.lock().unwrap().insert(fd, (token, interest));
            Ok(())
        }

        pub(crate) fn reregister(
            &self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            self.fds.lock().unwrap().insert(fd, (token, interest));
            Ok(())
        }

        pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.fds.lock().unwrap().remove(&fd);
            Ok(())
        }

        pub(crate) fn wait(&self, out: &mut Vec<PollEvent>) -> io::Result<()> {
            let (mut pollfds, tokens): (Vec<PollFd>, Vec<u64>) = {
                let fds = self.fds.lock().unwrap();
                fds.iter()
                    .map(|(&fd, &(token, interest))| {
                        let mut events = 0;
                        if interest.read {
                            events |= POLLIN;
                        }
                        if interest.write {
                            events |= POLLOUT;
                        }
                        (
                            PollFd {
                                fd,
                                events,
                                revents: 0,
                            },
                            token,
                        )
                    })
                    .unzip()
            };
            loop {
                // SAFETY: `pollfds` is a live array of `len()` entries
                // for the duration of the call.
                let ret = unsafe { poll(pollfds.as_mut_ptr(), pollfds.len() as c_ulong, -1) };
                if ret >= 0 {
                    break;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
            for (pfd, &token) in pollfds.iter().zip(&tokens) {
                let revents = pfd.revents;
                if revents == 0 {
                    continue;
                }
                out.push(PollEvent {
                    token,
                    readable: revents & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: revents & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_after_peer_writes() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let mut byte = [0u8; 1];
        let mut b2 = &b;
        assert_eq!(b2.read(&mut byte).unwrap(), 1);
    }

    #[test]
    fn write_interest_fires_and_can_be_dropped() {
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        // An idle socket with write interest is immediately writable
        // (level-triggered).
        poller
            .register(
                a.as_raw_fd(),
                1,
                Interest {
                    read: true,
                    write: true,
                },
            )
            .unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
        // Dropping write interest must stop the storm; prove the
        // reregister call itself is accepted.
        poller.reregister(a.as_raw_fd(), 1, Interest::READ).unwrap();
        poller.deregister(a.as_raw_fd()).unwrap();
    }

    #[test]
    fn hangup_surfaces_as_readable() {
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 9, Interest::READ).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller.wait(&mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 9 && e.readable));
        let mut buf = [0u8; 8];
        let mut b2 = &b;
        assert_eq!(b2.read(&mut buf).unwrap(), 0, "EOF after hangup");
    }
}
