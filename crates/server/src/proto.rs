//! The wire protocol: length-prefixed, version-tagged binary frames.
//!
//! Every message travels as one frame. Version 3 (the current version)
//! adds a correlation id to the envelope so multiple requests can be in
//! flight on one connection:
//!
//! ```text
//! v3:        [len: u32 LE] [version: u8 = 3] [request_id: u64 LE] [tag: u8] [payload ...]
//! v3+trace:  [len: u32 LE] [version: u8 = 3|0x80] [request_id: u64 LE] [trace: 17 bytes] [tag: u8] [payload ...]
//! v2:        [len: u32 LE] [version: u8 = 2] [tag: u8] [payload ...]
//! ```
//!
//! where `len` counts everything after itself (version byte included).
//! The trace extension is optional per frame: setting
//! [`PROTO_TRACE_FLAG`] on the version byte inserts a 17-byte
//! [`TraceContext`] (trace id `u64`, parent span `u64`, flags `u8`)
//! between the request id and the tag. Untraced frames are
//! byte-identical to plain v3, so v2 peers and durable logs written
//! before tracing existed stay decodable, and tracing costs zero wire
//! bytes when off.
//! The server echoes each request's `request_id` on its response and may
//! complete pipelined requests **in any order**; clients match replies
//! to requests by id, never by arrival order. Version-2 frames (no id)
//! are still decoded for legacy peers — they carry an implicit id of
//! `0` and are answered in kind, but such peers must stay lock-step
//! (one request in flight), as v2 has no way to correlate reordered
//! replies.
//!
//! Integers are fixed-width little-endian; `Option`s and `Bound`s carry a
//! one-byte discriminant; vectors a `u32` length. There is no serde and
//! no reflection — [`Request`] and [`Response`] encode and decode
//! themselves explicitly, and [`decode`](Request::decode) rejects short
//! frames ([`ProtoError::Truncated`]), unknown discriminants
//! ([`ProtoError::BadTag`]), version mismatches
//! ([`ProtoError::BadVersion`]) and frames with unconsumed trailing bytes
//! ([`ProtoError::TrailingBytes`]), so a corrupted or hostile peer can
//! never smuggle a half-parsed message through.
//!
//! Batch operations and results are the engine's own
//! [`BatchOp`]/[`BatchResult`] and map diffs are
//! [`DiffEntry`] — the protocol serializes the
//! same types [`ShardedTreapMap::transact`](pathcopy_concurrent::ShardedTreapMap::transact)
//! and [`MapSnapshot::diff`](pathcopy_core::MapSnapshot::diff) speak, so
//! the client API maps onto the engine API without translation layers.

use std::io::{self, Read, Write};
use std::ops::Bound;

use pathcopy_concurrent::{BatchOp, BatchResult};
use pathcopy_core::DiffEntry;
use pathcopy_trace::{SpanRecord, TraceContext};

/// Protocol version carried in every frame; peers reject anything that
/// is neither this nor [`PROTO_V2`].
///
/// Version 3 added the `request_id` correlation field to the envelope
/// (pipelining) and the [`WireError::Busy`] admission-control error.
/// Version 2 added the replication feed frames
/// ([`Request::Publish`]/[`Request::Subscribe`]/[`Request::PullDiff`]/
/// [`Request::FullSync`]) and the guarded flag on [`Request::Batch`].
pub const PROTO_VERSION: u8 = 3;

/// The previous protocol version, still accepted by every decoder. A v2
/// frame has no `request_id` field; it decodes with an implicit id of
/// `0` and the server answers it in v2 framing.
pub const PROTO_V2: u8 = 2;

/// Version-byte flag marking a v3 frame that carries a 17-byte
/// [`TraceContext`] between its request id and its tag
/// (`3 | 0x80 = 0x83` on the wire). Only v3 frames may set it — a
/// legacy v2 envelope has nowhere to put the context, so traced
/// propagation simply stops at a v2 hop. Decoders that predate tracing
/// reject the flagged byte as [`ProtoError::BadVersion`], which is the
/// correct failure: the sender only sets the flag when the operator
/// turned tracing on across the fleet.
pub const PROTO_TRACE_FLAG: u8 = 0x80;

/// Correlation id carried in every v3 frame. Ids are chosen by the
/// client (monotonically, per connection) and echoed verbatim by the
/// server; `0` is what a legacy v2 frame decodes to. Ids with
/// [`PUSH_ID_BASE`] set are reserved for server-initiated frames.
pub type RequestId = u64;

/// The server-initiated half of the id space. A [`Response::Push`]
/// answers no request, so it cannot echo a client-chosen id; instead it
/// carries `PUSH_ID_BASE | epoch`, which can never collide with a
/// ticket because clients allocate ids by incrementing from `1` (an
/// id with the top bit set would take ~292 years of back-to-back
/// requests to reach). A session's demux loop routes ids in this
/// namespace to its push channel instead of a waiter.
pub const PUSH_ID_BASE: RequestId = 1 << 63;

/// A decoded frame body together with its envelope fields — which
/// protocol version it arrived in and its correlation id. Produced by
/// [`Request::decode_enveloped`]/[`Response::decode_enveloped`]; the
/// server uses `version` to answer each request in the framing it
/// arrived in, and clients use `request_id` to match pipelined replies
/// to tickets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Framed<T> {
    /// The envelope version the frame used ([`PROTO_VERSION`] or
    /// [`PROTO_V2`]).
    pub version: u8,
    /// The correlation id (`0` for v2 frames, which carry none).
    pub request_id: RequestId,
    /// The trace context, when the frame's version byte carried
    /// [`PROTO_TRACE_FLAG`]; `None` for untraced frames.
    pub trace: Option<TraceContext>,
    /// The decoded message.
    pub msg: T,
}

/// Upper bound on the frame body length; larger length prefixes are
/// rejected before any allocation, so a corrupt peer cannot trigger a
/// multi-gigabyte read buffer.
pub const MAX_FRAME_LEN: u32 = 16 << 20;

/// Identifier of a named snapshot held in the server's version table.
pub type SnapshotId = u64;

/// Position in the primary's monotone version feed. Epoch `0` is never
/// issued — it means "nothing published yet" (or, replica-side, "nothing
/// applied yet").
pub type Epoch = u64;

/// Maximum number of entries the server packs into one
/// [`Response::SyncPage`]. At 16 bytes per entry a page stays around
/// 1 MiB — far below [`MAX_FRAME_LEN`] — so a [`Request::FullSync`]
/// bootstrap of an arbitrarily large map never trips the frame cap; the
/// replica just pulls more pages.
pub const SYNC_PAGE_MAX_ENTRIES: u32 = 65_536;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Look up one key.
    Get {
        /// The key to read.
        key: i64,
    },
    /// Insert or overwrite one key.
    Insert {
        /// The key to write.
        key: i64,
        /// The value to store.
        value: i64,
    },
    /// Remove one key.
    Remove {
        /// The key to remove.
        key: i64,
    },
    /// Atomic compare-and-set on one key.
    Cas {
        /// The key to compare and set.
        key: i64,
        /// Value the key must currently hold (`None` = absent).
        expected: Option<i64>,
        /// Value to store on match (`None` removes the key).
        new: Option<i64>,
    },
    /// An atomic multi-key batch, applied through the backend's
    /// transaction machinery (cross-shard two-phase commit on the
    /// sharded map).
    Batch {
        /// The operations, applied in order.
        ops: Vec<BatchOp<i64, i64>>,
        /// Sinfonia-style guarded mini-transaction flag: when set, a
        /// failing [`BatchOp::Cas`] guard aborts the **whole batch**
        /// (zero writes, answered with [`Response::BatchAborted`])
        /// instead of just reporting `Cas(false)` while the rest
        /// commits.
        guarded: bool,
    },
    /// Take a coherent snapshot and pin it in the server's version table;
    /// the reply names it with a [`SnapshotId`] for later [`Request::Range`]
    /// and [`Request::Diff`] calls.
    Snapshot,
    /// Ordered key-range scan.
    Range {
        /// Named snapshot to scan, or `None` to scan a fresh coherent
        /// snapshot taken just for this request.
        snapshot: Option<SnapshotId>,
        /// Lower key bound.
        lo: Bound<i64>,
        /// Upper key bound.
        hi: Bound<i64>,
        /// Maximum number of entries to return (`0` = unlimited).
        limit: u32,
    },
    /// Difference between two snapshots, in ascending key order.
    Diff {
        /// The older named snapshot.
        from: SnapshotId,
        /// The newer named snapshot, or `None` for a fresh snapshot taken
        /// now — "what changed since `from`".
        to: Option<SnapshotId>,
    },
    /// Drop a named snapshot from the version table.
    Release {
        /// The snapshot to drop.
        snapshot: SnapshotId,
    },
    /// Read the backend's operation statistics and the server's
    /// version-table size.
    Stats,
    /// Publish the current state as the next epoch of the server's
    /// version feed (a capped ring of recent snapshots replicas sync
    /// from). Replied with [`Response::Published`].
    Publish,
    /// Read the feed's bounds — head epoch, oldest retained epoch, ring
    /// capacity — without changing anything. Replied with
    /// [`Response::FeedInfo`]. This is how a replica sizes its lag.
    Subscribe,
    /// Ask for everything that changed between published epoch `from`
    /// and the feed head, as one pruned snapshot-to-snapshot diff.
    /// Replied with [`Response::EpochDiff`], or
    /// [`WireError::EpochRetired`] if `from` has fallen out of the ring
    /// (the replica lags too far and must [`Request::FullSync`]).
    PullDiff {
        /// The epoch the replica has applied.
        from: Epoch,
    },
    /// One page of a full-state bootstrap. The first call passes
    /// `epoch: None` — the server serves the current feed head
    /// (publishing a fresh epoch only when the feed is empty, so
    /// concurrent bootstraps share one pin) — and follow-up calls pass
    /// the returned epoch plus the last key received, so the whole map
    /// streams out of **one** frozen version in bounded segments (never
    /// more than [`SYNC_PAGE_MAX_ENTRIES`] entries each, so no page can
    /// trip [`MAX_FRAME_LEN`]).
    FullSync {
        /// The epoch being paged, or `None` to start a fresh sync.
        epoch: Option<Epoch>,
        /// Resume strictly after this key (`None` = from the start).
        after: Option<i64>,
        /// Client's page-size preference (`0` = server default); the
        /// server clamps it to [`SYNC_PAGE_MAX_ENTRIES`].
        limit: u32,
    },
    /// Register this connection for push delivery: from now on the
    /// server sends every published epoch's diff as an unsolicited
    /// [`Response::Push`] frame (id `PUSH_ID_BASE | epoch`). Answered
    /// with [`Response::SubscribeAck`]; if `from` names a retained
    /// epoch behind the head, one catch-up `Push` covering
    /// `from → head` precedes any live pushes. Requires the v3
    /// envelope — a v2 peer has no way to tell a push from a reply,
    /// so the server refuses with [`WireError::Malformed`].
    SubscribePush {
        /// The epoch the subscriber has applied (`0` = nothing yet).
        from: Epoch,
    },
    /// Session-consistent point read: serve `key` only from an epoch
    /// at or past `min_epoch`, waiting up to `wait_ms` for the feed to
    /// catch up. Replied with [`Response::GotAt`] once the feed head
    /// reaches the watermark, or [`WireError::Stale`] (carrying the
    /// current head) if it does not in time — the client can then
    /// retry here or fall back to the primary. This is how a client
    /// gets read-your-writes through any replica, no sticky routing.
    GetAt {
        /// The key to read.
        key: i64,
        /// The caller's session watermark: the oldest epoch this read
        /// is allowed to observe (`0` = any).
        min_epoch: Epoch,
        /// How long the server may hold the read waiting for the feed
        /// to reach `min_epoch` (clamped server-side; `0` = don't
        /// wait, answer immediately).
        wait_ms: u32,
    },
    /// A single write that reports the epoch watermark it is visible
    /// at, so the writer can thread the watermark through subsequent
    /// [`Request::GetAt`] reads. Replied with [`Response::WroteAt`].
    WriteAt {
        /// The write to apply ([`BatchOp::Get`] is permitted but
        /// pointless — use [`Request::GetAt`]).
        op: BatchOp<i64, i64>,
    },
    /// Read the server's process gauges — request/shed/connection
    /// counters, wire byte counters, and push fan-out counters —
    /// without touching the backend. Replied with
    /// [`Response::Gauges`]. This is the scrape endpoint loadgen and
    /// tests use instead of process-local handles.
    Gauges,
    /// Read the server's latency histograms — per-stage, per-request-tag
    /// percentile summaries from the event loop's tracing recorders plus
    /// any registered sources (durable persister, push replicas).
    /// Replied with [`Response::Metrics`]; the reply is empty when the
    /// server runs with metrics disabled.
    Metrics,
    /// Zero every since-boot latency histogram — the event loop's
    /// per-tag stage recorders and every registered source (durable
    /// persister, push replicas) — so the next [`Request::Metrics`]
    /// scrape starts a fresh window. Idempotent: resetting an
    /// already-empty server is a no-op. Gauges ([`Request::Gauges`])
    /// are **not** reset — they are lifetime counters. Replied with
    /// [`Response::MetricsReset`].
    ResetMetrics,
    /// Dump this node's trace flight recorder: every span currently in
    /// the ring plus every pinned slow-request span. Replied with
    /// [`Response::TraceDump`] (empty when tracing is disabled).
    /// Read-only — dumping does not clear the ring.
    TraceDump,
}

/// A server-to-client message; variants mirror [`Request`] one-to-one
/// plus [`Response::Error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Get`]: the value, if present.
    Got(Option<i64>),
    /// Reply to [`Request::Insert`]: the previous value, if any.
    Inserted(Option<i64>),
    /// Reply to [`Request::Remove`]: the removed value, if any.
    Removed(Option<i64>),
    /// Reply to [`Request::Cas`]: whether the comparison matched and the
    /// write was applied.
    CasApplied(bool),
    /// Reply to [`Request::Batch`]: one result per op, in batch order.
    Batch(Vec<BatchResult<i64>>),
    /// Reply to [`Request::Snapshot`]: the new snapshot's id.
    SnapshotTaken(SnapshotId),
    /// Reply to [`Request::Range`].
    Entries {
        /// The entries, in ascending key order.
        entries: Vec<(i64, i64)>,
        /// `false` if the scan stopped at the requested limit with more
        /// entries remaining.
        complete: bool,
    },
    /// Reply to [`Request::Diff`].
    Diff(Vec<DiffEntry<i64, i64>>),
    /// Reply to [`Request::Release`]: whether the snapshot existed.
    Released(bool),
    /// Reply to [`Request::Stats`].
    Stats(WireStats),
    /// Reply to a guarded [`Request::Batch`] whose guards failed: the
    /// whole batch aborted (zero writes). Carries the batch indices of
    /// the failed [`BatchOp::Cas`] guards, ascending.
    BatchAborted(Vec<u32>),
    /// Reply to [`Request::Publish`]: the epoch just published.
    Published(Epoch),
    /// Reply to [`Request::Subscribe`].
    FeedInfo(FeedInfo),
    /// Reply to [`Request::PullDiff`]: everything that changed between
    /// the requested epoch and `to` (the feed head), in ascending key
    /// order. Empty when the replica is already at the head.
    EpochDiff {
        /// The epoch the diff brings the replica up to.
        to: Epoch,
        /// The changes, in ascending key order.
        entries: Vec<DiffEntry<i64, i64>>,
    },
    /// Reply to [`Request::FullSync`]: one bounded page of the pinned
    /// epoch's entries.
    SyncPage {
        /// The epoch being paged (pass it back for the next page).
        epoch: Epoch,
        /// The page's entries, in ascending key order.
        entries: Vec<(i64, i64)>,
        /// `true` if this page ends the epoch's state.
        done: bool,
    },
    /// Reply to [`Request::SubscribePush`]: the feed's bounds at
    /// registration time. Any catch-up or live [`Response::Push`]
    /// frames follow on the same connection.
    SubscribeAck(FeedInfo),
    /// A server-initiated frame (no request answers it; its id is
    /// `PUSH_ID_BASE | epoch`): the diff between two published epochs,
    /// pushed to every subscriber when `epoch` is published. Apply it
    /// only when `from` equals your applied epoch — a diff applied
    /// over any other base silently corrupts keys the diff reverts —
    /// otherwise treat the gap as lag and catch up via
    /// [`Request::PullDiff`].
    Push {
        /// The epoch this diff starts from (`0` = from the empty map).
        from: Epoch,
        /// The epoch this diff brings a subscriber up to.
        epoch: Epoch,
        /// The changes, in ascending key order.
        entries: Vec<DiffEntry<i64, i64>>,
    },
    /// Reply to [`Request::GetAt`]: the value as of an epoch at or
    /// past the requested watermark.
    GotAt {
        /// The value, if present.
        value: Option<i64>,
        /// The feed head the read was served at — the caller's new
        /// session watermark (monotonic reads: thread it into the next
        /// [`Request::GetAt`]).
        epoch: Epoch,
    },
    /// Reply to [`Request::WriteAt`]: the write's result plus the
    /// epoch watermark that makes it visible.
    WroteAt {
        /// The result of the single op.
        result: BatchResult<i64>,
        /// The first epoch that will contain this write once
        /// published — read-your-writes holds on any replica whose
        /// feed has reached it.
        watermark: Epoch,
    },
    /// Reply to [`Request::Gauges`].
    Gauges(ServerGauges),
    /// Reply to [`Request::Metrics`]: one percentile summary per
    /// (stage, request-tag) pair that has recorded at least one sample,
    /// in ascending (stage, tag) order. Empty when metrics are disabled.
    Metrics(Vec<StageSummary>),
    /// Reply to [`Request::ResetMetrics`]: every histogram was zeroed.
    MetricsReset,
    /// Reply to [`Request::TraceDump`]: the node's name plus every span
    /// its flight recorder currently holds (ring + pinned), each a
    /// fixed 56-byte record. Span timestamps are nanoseconds since the
    /// node's own recorder start — cross-node stitching aligns on span
    /// parentage and epoch numbers, never on clocks.
    TraceDump {
        /// The reporting node's name (as configured in its recorder).
        node: String,
        /// The spans, in the recorder's dump order (sorted by trace id,
        /// then start time).
        spans: Vec<SpanRecord>,
    },
    /// The request could not be served.
    Error(WireError),
}

/// Bounds of the server's version feed, carried by
/// [`Response::FeedInfo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FeedInfo {
    /// Newest published epoch (`0` = nothing published yet).
    pub head: Epoch,
    /// Oldest epoch still retained in the ring (`0` = empty feed).
    pub oldest: Epoch,
    /// Ring capacity: how many epochs the primary retains.
    pub capacity: u64,
}

/// Backend and server statistics carried by [`Response::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Completed update operations.
    pub ops: u64,
    /// Total CAS-loop attempts across all updates.
    pub attempts: u64,
    /// Failed root CASes.
    pub cas_failures: u64,
    /// Updates that changed nothing and skipped the CAS.
    pub noop_updates: u64,
    /// Read-only operations.
    pub reads: u64,
    /// Roots installed through the multi-shard freeze hook.
    pub frozen_installs: u64,
    /// Backed-out freeze passes of cross-shard commits.
    pub freeze_retries: u64,
    /// Entry count (weakly consistent on sharded backends).
    pub len: u64,
    /// Named snapshots currently pinned in the server's version table.
    pub snapshots: u64,
}

/// Server process gauges carried by [`Response::Gauges`] — scrapeable
/// counters about the serving process itself, as opposed to
/// [`WireStats`] which describes the backend map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerGauges {
    /// Requests executed (successful or errored), excluding shed ones.
    pub requests: u64,
    /// Requests shed by per-connection admission control
    /// ([`WireError::Busy`]).
    pub requests_shed: u64,
    /// Connections currently open.
    pub open_conns: u64,
    /// Bytes the server has written to all connections.
    pub wire_sent: u64,
    /// Bytes the server has read from all connections.
    pub wire_received: u64,
    /// Connections currently registered for push delivery.
    pub subscribers: u64,
    /// Push frames enqueued to subscribers since startup.
    pub pushes: u64,
    /// Subscribers demoted (unregistered) because their outbox was
    /// full when a push arrived; they must catch up via
    /// [`Request::PullDiff`] and resubscribe.
    pub push_demotions: u64,
    /// Newest published epoch of the version feed (`0` = none).
    pub feed_head: u64,
}

/// One latency-histogram summary carried by [`Response::Metrics`]: the
/// fixed percentile set of one pipeline stage, optionally split by the
/// request tag that went through it.
///
/// `stage` bytes are the `pathcopy_metrics::Stage` discriminants
/// (1 queue_wait, 2 execute, 3 write_flush, 4 append_fsync,
/// 5 push_apply, 6 epoch_lag); unknown values must be skipped, not
/// rejected, so servers can add stages without breaking old scrapers.
/// Values are nanoseconds for every stage except `epoch_lag`, which
/// counts epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageSummary {
    /// Which pipeline stage this summarises.
    pub stage: u8,
    /// Request tag the samples belong to (`0` = the stage is not split
    /// by tag).
    pub tag: u8,
    /// Number of recorded samples.
    pub count: u64,
    /// Wrapping sum of all samples (for mean reconstruction).
    pub sum: u64,
    /// 50th percentile.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest recorded sample.
    pub max: u64,
    /// Request id of the exemplar — the request that produced (a sample
    /// within the gating race of) `max`. `0` when no tagged sample has
    /// been recorded.
    pub exemplar_id: u64,
    /// Trace id of the exemplar's trace context (`0` = untraced).
    pub exemplar_trace: u64,
}

/// Error replies a server can send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// A [`Request::Range`]/[`Request::Diff`]/[`Request::Release`] named
    /// a snapshot id that is not in the version table (never issued, or
    /// already released).
    UnknownSnapshot(SnapshotId),
    /// The two snapshots of a [`Request::Diff`] come from incompatible
    /// backends and cannot be diffed.
    SnapshotMismatch,
    /// The server could not decode the request frame.
    Malformed,
    /// The reply would exceed [`MAX_FRAME_LEN`] and was not sent; nothing
    /// was written, so the connection stays usable — page with
    /// [`Request::Range`]'s `limit`, or diff nearer snapshots.
    TooLarge,
    /// The server's version table is full (the payload is the cap);
    /// [`Request::Release`] unused snapshots to free slots.
    SnapshotLimit(u64),
    /// A [`Request::PullDiff`]/[`Request::FullSync`] named an epoch no
    /// longer retained in the feed ring (the payload is the oldest epoch
    /// still available; `0` = the feed is empty). The replica lagged
    /// past the ring and must fall back to a fresh [`Request::FullSync`].
    EpochRetired(Epoch),
    /// The connection already has `queue_depth` requests in flight (the
    /// payload is the bound) and this one was shed without being
    /// executed. Admission control, not failure: in-flight requests are
    /// unaffected and the connection stays usable — wait for some
    /// replies, then resubmit.
    Busy(u64),
    /// A [`Request::GetAt`] watermark was not reached within its wait
    /// budget; the payload is the feed head the server is actually at.
    /// The read was **not** served — retry here later, or read from a
    /// fresher replica or the primary.
    Stale(Epoch),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnknownSnapshot(id) => write!(f, "unknown snapshot id {id}"),
            WireError::SnapshotMismatch => write!(f, "snapshots are not diffable"),
            WireError::Malformed => write!(f, "malformed request frame"),
            WireError::TooLarge => write!(
                f,
                "reply would exceed the {MAX_FRAME_LEN}-byte frame cap; page the request"
            ),
            WireError::SnapshotLimit(cap) => {
                write!(f, "version table full ({cap} snapshots); release some")
            }
            WireError::EpochRetired(oldest) => {
                write!(
                    f,
                    "epoch retired from the feed (oldest retained: {oldest}); full-sync"
                )
            }
            WireError::Busy(depth) => {
                write!(
                    f,
                    "connection at its queue-depth bound ({depth} in flight); request shed"
                )
            }
            WireError::Stale(head) => {
                write!(
                    f,
                    "feed still behind the requested watermark (head: {head}); read not served"
                )
            }
        }
    }
}

/// Why a frame failed to decode (or to be read off the wire).
#[derive(Debug)]
pub enum ProtoError {
    /// The frame ended before the message did.
    Truncated,
    /// The frame's version byte is neither [`PROTO_VERSION`] nor
    /// [`PROTO_V2`].
    BadVersion(u8),
    /// An unknown discriminant byte.
    BadTag {
        /// Which discriminant was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// The message decoded but left unconsumed bytes in the frame.
    TrailingBytes {
        /// Number of leftover bytes.
        extra: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge(u32),
    /// The underlying transport failed.
    Io(io::Error),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame truncated mid-message"),
            ProtoError::BadVersion(v) => {
                write!(
                    f,
                    "protocol version {v} (expected {PROTO_VERSION} or {PROTO_V2})"
                )
            }
            ProtoError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            ProtoError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after message")
            }
            ProtoError::FrameTooLarge(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_opt_i64(out: &mut Vec<u8>, v: Option<i64>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_i64(out, x);
        }
    }
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_u64(out, x);
        }
    }
}

/// Writes the 17-byte trace-context extension: trace id, parent span,
/// flags. Layout is [`TraceContext::WIRE_BYTES`].
fn put_trace_ctx(out: &mut Vec<u8>, ctx: &TraceContext) {
    put_u64(out, ctx.trace_id);
    put_u64(out, ctx.parent_span);
    out.push(ctx.flags);
}

fn put_bound(out: &mut Vec<u8>, b: Bound<i64>) {
    match b {
        Bound::Unbounded => out.push(0),
        Bound::Included(k) => {
            out.push(1);
            put_i64(out, k);
        }
        Bound::Excluded(k) => {
            out.push(2);
            put_i64(out, k);
        }
    }
}

fn put_batch_op(out: &mut Vec<u8>, op: &BatchOp<i64, i64>) {
    match op {
        BatchOp::Get(k) => {
            out.push(0);
            put_i64(out, *k);
        }
        BatchOp::Insert(k, v) => {
            out.push(1);
            put_i64(out, *k);
            put_i64(out, *v);
        }
        BatchOp::Remove(k) => {
            out.push(2);
            put_i64(out, *k);
        }
        BatchOp::Cas { key, expected, new } => {
            out.push(3);
            put_i64(out, *key);
            put_opt_i64(out, *expected);
            put_opt_i64(out, *new);
        }
    }
}

fn put_batch_result(out: &mut Vec<u8>, r: &BatchResult<i64>) {
    match r {
        BatchResult::Got(v) => {
            out.push(0);
            put_opt_i64(out, *v);
        }
        BatchResult::Inserted(v) => {
            out.push(1);
            put_opt_i64(out, *v);
        }
        BatchResult::Removed(v) => {
            out.push(2);
            put_opt_i64(out, *v);
        }
        BatchResult::Cas(ok) => {
            out.push(3);
            put_bool(out, *ok);
        }
    }
}

fn put_diff_entry(out: &mut Vec<u8>, e: &DiffEntry<i64, i64>) {
    match e {
        DiffEntry::Added(k, v) => {
            out.push(0);
            put_i64(out, *k);
            put_i64(out, *v);
        }
        DiffEntry::Removed(k, v) => {
            out.push(1);
            put_i64(out, *k);
            put_i64(out, *v);
        }
        DiffEntry::Changed(k, old, new) => {
            out.push(2);
            put_i64(out, *k);
            put_i64(out, *old);
            put_i64(out, *new);
        }
    }
}

/// A bounds-checked read cursor over one frame body.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn bool(&mut self) -> Result<bool, ProtoError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(ProtoError::BadTag { what: "bool", tag }),
        }
    }

    fn opt_i64(&mut self) -> Result<Option<i64>, ProtoError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.i64()?)),
            tag => Err(ProtoError::BadTag {
                what: "option",
                tag,
            }),
        }
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, ProtoError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            tag => Err(ProtoError::BadTag {
                what: "option",
                tag,
            }),
        }
    }

    fn trace_ctx(&mut self) -> Result<TraceContext, ProtoError> {
        Ok(TraceContext {
            trace_id: self.u64()?,
            parent_span: self.u64()?,
            flags: self.u8()?,
        })
    }

    fn bound(&mut self) -> Result<Bound<i64>, ProtoError> {
        match self.u8()? {
            0 => Ok(Bound::Unbounded),
            1 => Ok(Bound::Included(self.i64()?)),
            2 => Ok(Bound::Excluded(self.i64()?)),
            tag => Err(ProtoError::BadTag { what: "bound", tag }),
        }
    }

    /// Reads a `u32` element count, sanity-bounded by the bytes actually
    /// remaining so a corrupt count cannot pre-allocate gigabytes.
    fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, ProtoError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes) > self.buf.len() - self.pos {
            return Err(ProtoError::Truncated);
        }
        Ok(n)
    }

    fn batch_op(&mut self) -> Result<BatchOp<i64, i64>, ProtoError> {
        match self.u8()? {
            0 => Ok(BatchOp::Get(self.i64()?)),
            1 => Ok(BatchOp::Insert(self.i64()?, self.i64()?)),
            2 => Ok(BatchOp::Remove(self.i64()?)),
            3 => Ok(BatchOp::Cas {
                key: self.i64()?,
                expected: self.opt_i64()?,
                new: self.opt_i64()?,
            }),
            tag => Err(ProtoError::BadTag {
                what: "batch op",
                tag,
            }),
        }
    }

    fn batch_result(&mut self) -> Result<BatchResult<i64>, ProtoError> {
        match self.u8()? {
            0 => Ok(BatchResult::Got(self.opt_i64()?)),
            1 => Ok(BatchResult::Inserted(self.opt_i64()?)),
            2 => Ok(BatchResult::Removed(self.opt_i64()?)),
            3 => Ok(BatchResult::Cas(self.bool()?)),
            tag => Err(ProtoError::BadTag {
                what: "batch result",
                tag,
            }),
        }
    }

    fn diff_entry(&mut self) -> Result<DiffEntry<i64, i64>, ProtoError> {
        match self.u8()? {
            0 => Ok(DiffEntry::Added(self.i64()?, self.i64()?)),
            1 => Ok(DiffEntry::Removed(self.i64()?, self.i64()?)),
            2 => Ok(DiffEntry::Changed(self.i64()?, self.i64()?, self.i64()?)),
            tag => Err(ProtoError::BadTag {
                what: "diff entry",
                tag,
            }),
        }
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            })
        }
    }
}

/// Reads the envelope head off a frame body: the version byte, the
/// request id for v3 (v2 frames carry none and get id `0`), and the
/// trace context when the version byte carries [`PROTO_TRACE_FLAG`].
/// The reported version is always the *base* version (the flag is
/// stripped), so "answer in the framing the request arrived in" keeps
/// working unchanged.
fn read_envelope(cur: &mut Cur<'_>) -> Result<(u8, RequestId, Option<TraceContext>), ProtoError> {
    match cur.u8()? {
        PROTO_VERSION => Ok((PROTO_VERSION, cur.u64()?, None)),
        v if v == PROTO_VERSION | PROTO_TRACE_FLAG => {
            let id = cur.u64()?;
            let ctx = cur.trace_ctx()?;
            Ok((PROTO_VERSION, id, Some(ctx)))
        }
        PROTO_V2 => Ok((PROTO_V2, 0, None)),
        v => Err(ProtoError::BadVersion(v)),
    }
}

// ---------------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------------

impl Request {
    /// Serializes the message into a v3 frame body with request id `0`
    /// (version + id + tag + payload, without the length prefix).
    /// Lock-step callers that never pipeline can use the zero id
    /// everywhere; pipelined sessions use
    /// [`encode_with_id`](Self::encode_with_id).
    pub fn encode(&self, out: &mut Vec<u8>) {
        self.encode_with_id(0, out);
    }

    /// Serializes the message into a v3 frame body carrying `id`, the
    /// correlation id the server will echo on its reply.
    pub fn encode_with_id(&self, id: RequestId, out: &mut Vec<u8>) {
        out.push(PROTO_VERSION);
        put_u64(out, id);
        self.encode_tail(out);
    }

    /// Serializes the message into a v3 frame body carrying `id` and a
    /// trace context (version byte `3 | `[`PROTO_TRACE_FLAG`]). This is
    /// how a tracing client stamps the root of a distributed trace onto
    /// a request.
    pub fn encode_traced(&self, id: RequestId, ctx: &TraceContext, out: &mut Vec<u8>) {
        out.push(PROTO_VERSION | PROTO_TRACE_FLAG);
        put_u64(out, id);
        put_trace_ctx(out, ctx);
        self.encode_tail(out);
    }

    /// Serializes the message in the legacy v2 framing (no request id).
    /// Interop aid for talking to pre-v3 servers and for tests proving
    /// v2 frames stay decodable; new code pipelines with
    /// [`encode_with_id`](Self::encode_with_id).
    pub fn encode_v2(&self, out: &mut Vec<u8>) {
        out.push(PROTO_V2);
        self.encode_tail(out);
    }

    /// Tag + payload, shared by every envelope version.
    fn encode_tail(&self, out: &mut Vec<u8>) {
        match self {
            Request::Get { key } => {
                out.push(1);
                put_i64(out, *key);
            }
            Request::Insert { key, value } => {
                out.push(2);
                put_i64(out, *key);
                put_i64(out, *value);
            }
            Request::Remove { key } => {
                out.push(3);
                put_i64(out, *key);
            }
            Request::Cas { key, expected, new } => {
                out.push(4);
                put_i64(out, *key);
                put_opt_i64(out, *expected);
                put_opt_i64(out, *new);
            }
            Request::Batch { ops, guarded } => {
                out.push(5);
                put_bool(out, *guarded);
                put_u32(out, ops.len() as u32);
                for op in ops {
                    put_batch_op(out, op);
                }
            }
            Request::Snapshot => out.push(6),
            Request::Range {
                snapshot,
                lo,
                hi,
                limit,
            } => {
                out.push(7);
                put_opt_u64(out, *snapshot);
                put_bound(out, *lo);
                put_bound(out, *hi);
                put_u32(out, *limit);
            }
            Request::Diff { from, to } => {
                out.push(8);
                put_u64(out, *from);
                put_opt_u64(out, *to);
            }
            Request::Release { snapshot } => {
                out.push(9);
                put_u64(out, *snapshot);
            }
            Request::Stats => out.push(10),
            Request::Publish => out.push(11),
            Request::Subscribe => out.push(12),
            Request::PullDiff { from } => {
                out.push(13);
                put_u64(out, *from);
            }
            Request::FullSync {
                epoch,
                after,
                limit,
            } => {
                out.push(14);
                put_opt_u64(out, *epoch);
                put_opt_i64(out, *after);
                put_u32(out, *limit);
            }
            Request::SubscribePush { from } => {
                out.push(15);
                put_u64(out, *from);
            }
            Request::GetAt {
                key,
                min_epoch,
                wait_ms,
            } => {
                out.push(16);
                put_i64(out, *key);
                put_u64(out, *min_epoch);
                put_u32(out, *wait_ms);
            }
            Request::WriteAt { op } => {
                out.push(17);
                put_batch_op(out, op);
            }
            Request::Gauges => out.push(18),
            Request::Metrics => out.push(19),
            Request::ResetMetrics => out.push(20),
            Request::TraceDump => out.push(21),
        }
    }

    /// The request's wire tag byte — the key the server's per-tag stage
    /// histograms are indexed by.
    #[must_use]
    pub fn tag_byte(&self) -> u8 {
        match self {
            Request::Get { .. } => 1,
            Request::Insert { .. } => 2,
            Request::Remove { .. } => 3,
            Request::Cas { .. } => 4,
            Request::Batch { .. } => 5,
            Request::Snapshot => 6,
            Request::Range { .. } => 7,
            Request::Diff { .. } => 8,
            Request::Release { .. } => 9,
            Request::Stats => 10,
            Request::Publish => 11,
            Request::Subscribe => 12,
            Request::PullDiff { .. } => 13,
            Request::FullSync { .. } => 14,
            Request::SubscribePush { .. } => 15,
            Request::GetAt { .. } => 16,
            Request::WriteAt { .. } => 17,
            Request::Gauges => 18,
            Request::Metrics => 19,
            Request::ResetMetrics => 20,
            Request::TraceDump => 21,
        }
    }

    /// The variant name for a request wire tag, for labelling metrics in
    /// human-readable output. `None` for tags this version doesn't know.
    #[must_use]
    pub fn tag_name(tag: u8) -> Option<&'static str> {
        Some(match tag {
            1 => "Get",
            2 => "Insert",
            3 => "Remove",
            4 => "Cas",
            5 => "Batch",
            6 => "Snapshot",
            7 => "Range",
            8 => "Diff",
            9 => "Release",
            10 => "Stats",
            11 => "Publish",
            12 => "Subscribe",
            13 => "PullDiff",
            14 => "FullSync",
            15 => "SubscribePush",
            16 => "GetAt",
            17 => "WriteAt",
            18 => "Gauges",
            19 => "Metrics",
            20 => "ResetMetrics",
            21 => "TraceDump",
            _ => return None,
        })
    }

    /// Parses a frame body produced by [`encode`](Self::encode) (or a
    /// legacy v2 body), rejecting bad versions, unknown tags,
    /// truncation, and trailing bytes. The envelope fields are
    /// discarded; use [`decode_enveloped`](Self::decode_enveloped) when
    /// the request id matters.
    ///
    /// # Errors
    ///
    /// [`ProtoError::BadVersion`], [`ProtoError::BadTag`],
    /// [`ProtoError::Truncated`], or [`ProtoError::TrailingBytes`] —
    /// never a panic, whatever the input bytes.
    pub fn decode(body: &[u8]) -> Result<Self, ProtoError> {
        Self::decode_enveloped(body).map(|f| f.msg)
    }

    /// Parses a frame body keeping its envelope: the version it used
    /// (v3 or legacy v2) and its correlation id. This is the server's
    /// entry point — it must echo the id and answer in the same
    /// version.
    ///
    /// # Errors
    ///
    /// As [`decode`](Self::decode).
    pub fn decode_enveloped(body: &[u8]) -> Result<Framed<Self>, ProtoError> {
        let mut cur = Cur::new(body);
        let (version, request_id, trace) = read_envelope(&mut cur)?;
        let msg = Self::decode_tail(&mut cur)?;
        cur.finish()?;
        Ok(Framed {
            version,
            request_id,
            trace,
            msg,
        })
    }

    /// Tag + payload, shared by every envelope version.
    fn decode_tail(cur: &mut Cur<'_>) -> Result<Self, ProtoError> {
        let req = match cur.u8()? {
            1 => Request::Get { key: cur.i64()? },
            2 => Request::Insert {
                key: cur.i64()?,
                value: cur.i64()?,
            },
            3 => Request::Remove { key: cur.i64()? },
            4 => Request::Cas {
                key: cur.i64()?,
                expected: cur.opt_i64()?,
                new: cur.opt_i64()?,
            },
            5 => {
                let guarded = cur.bool()?;
                let n = cur.seq_len(9)?;
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    ops.push(cur.batch_op()?);
                }
                Request::Batch { ops, guarded }
            }
            6 => Request::Snapshot,
            7 => Request::Range {
                snapshot: cur.opt_u64()?,
                lo: cur.bound()?,
                hi: cur.bound()?,
                limit: cur.u32()?,
            },
            8 => Request::Diff {
                from: cur.u64()?,
                to: cur.opt_u64()?,
            },
            9 => Request::Release {
                snapshot: cur.u64()?,
            },
            10 => Request::Stats,
            11 => Request::Publish,
            12 => Request::Subscribe,
            13 => Request::PullDiff { from: cur.u64()? },
            14 => Request::FullSync {
                epoch: cur.opt_u64()?,
                after: cur.opt_i64()?,
                limit: cur.u32()?,
            },
            15 => Request::SubscribePush { from: cur.u64()? },
            16 => Request::GetAt {
                key: cur.i64()?,
                min_epoch: cur.u64()?,
                wait_ms: cur.u32()?,
            },
            17 => Request::WriteAt {
                op: cur.batch_op()?,
            },
            18 => Request::Gauges,
            19 => Request::Metrics,
            20 => Request::ResetMetrics,
            21 => Request::TraceDump,
            tag => {
                return Err(ProtoError::BadTag {
                    what: "request",
                    tag,
                })
            }
        };
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Response
// ---------------------------------------------------------------------------

impl Response {
    /// Serializes the message into a v3 frame body with request id `0`
    /// (version + id + tag + payload, without the length prefix). The
    /// durable log stores exactly these bodies, so recovery decodes
    /// with the same [`decode`](Self::decode) the wire uses.
    pub fn encode(&self, out: &mut Vec<u8>) {
        self.encode_with_id(0, out);
    }

    /// Serializes the message into a v3 frame body echoing `id`, the
    /// correlation id of the request being answered.
    pub fn encode_with_id(&self, id: RequestId, out: &mut Vec<u8>) {
        out.push(PROTO_VERSION);
        put_u64(out, id);
        self.encode_tail(out);
    }

    /// Serializes the message into a v3 frame body echoing `id` and
    /// carrying a trace context (version byte
    /// `3 | `[`PROTO_TRACE_FLAG`]). The server uses it on
    /// [`Response::Push`] frames so a traced publish propagates its
    /// context down the push tree to every subscriber.
    pub fn encode_traced(&self, id: RequestId, ctx: &TraceContext, out: &mut Vec<u8>) {
        out.push(PROTO_VERSION | PROTO_TRACE_FLAG);
        put_u64(out, id);
        put_trace_ctx(out, ctx);
        self.encode_tail(out);
    }

    /// Serializes the message in the legacy v2 framing (no request id);
    /// the server answers v2 requests with it.
    pub fn encode_v2(&self, out: &mut Vec<u8>) {
        out.push(PROTO_V2);
        self.encode_tail(out);
    }

    /// Tag + payload, shared by every envelope version.
    fn encode_tail(&self, out: &mut Vec<u8>) {
        match self {
            Response::Got(v) => {
                out.push(1);
                put_opt_i64(out, *v);
            }
            Response::Inserted(v) => {
                out.push(2);
                put_opt_i64(out, *v);
            }
            Response::Removed(v) => {
                out.push(3);
                put_opt_i64(out, *v);
            }
            Response::CasApplied(ok) => {
                out.push(4);
                put_bool(out, *ok);
            }
            Response::Batch(results) => {
                out.push(5);
                put_u32(out, results.len() as u32);
                for r in results {
                    put_batch_result(out, r);
                }
            }
            Response::SnapshotTaken(id) => {
                out.push(6);
                put_u64(out, *id);
            }
            Response::Entries { entries, complete } => {
                out.push(7);
                put_u32(out, entries.len() as u32);
                for (k, v) in entries {
                    put_i64(out, *k);
                    put_i64(out, *v);
                }
                put_bool(out, *complete);
            }
            Response::Diff(entries) => {
                out.push(8);
                put_u32(out, entries.len() as u32);
                for e in entries {
                    put_diff_entry(out, e);
                }
            }
            Response::Released(existed) => {
                out.push(9);
                put_bool(out, *existed);
            }
            Response::Stats(s) => {
                out.push(10);
                put_u64(out, s.ops);
                put_u64(out, s.attempts);
                put_u64(out, s.cas_failures);
                put_u64(out, s.noop_updates);
                put_u64(out, s.reads);
                put_u64(out, s.frozen_installs);
                put_u64(out, s.freeze_retries);
                put_u64(out, s.len);
                put_u64(out, s.snapshots);
            }
            Response::Error(e) => {
                out.push(11);
                match e {
                    WireError::UnknownSnapshot(id) => {
                        out.push(0);
                        put_u64(out, *id);
                    }
                    WireError::SnapshotMismatch => out.push(1),
                    WireError::Malformed => out.push(2),
                    WireError::TooLarge => out.push(3),
                    WireError::SnapshotLimit(cap) => {
                        out.push(4);
                        put_u64(out, *cap);
                    }
                    WireError::EpochRetired(oldest) => {
                        out.push(5);
                        put_u64(out, *oldest);
                    }
                    WireError::Busy(depth) => {
                        out.push(6);
                        put_u64(out, *depth);
                    }
                    WireError::Stale(head) => {
                        out.push(7);
                        put_u64(out, *head);
                    }
                }
            }
            Response::BatchAborted(failed) => {
                out.push(12);
                put_u32(out, failed.len() as u32);
                for i in failed {
                    put_u32(out, *i);
                }
            }
            Response::Published(epoch) => {
                out.push(13);
                put_u64(out, *epoch);
            }
            Response::FeedInfo(info) => {
                out.push(14);
                put_u64(out, info.head);
                put_u64(out, info.oldest);
                put_u64(out, info.capacity);
            }
            Response::EpochDiff { to, entries } => {
                out.push(15);
                put_u64(out, *to);
                put_u32(out, entries.len() as u32);
                for e in entries {
                    put_diff_entry(out, e);
                }
            }
            Response::SyncPage {
                epoch,
                entries,
                done,
            } => {
                out.push(16);
                put_u64(out, *epoch);
                put_u32(out, entries.len() as u32);
                for (k, v) in entries {
                    put_i64(out, *k);
                    put_i64(out, *v);
                }
                put_bool(out, *done);
            }
            Response::SubscribeAck(info) => {
                out.push(17);
                put_u64(out, info.head);
                put_u64(out, info.oldest);
                put_u64(out, info.capacity);
            }
            Response::Push {
                from,
                epoch,
                entries,
            } => {
                out.push(18);
                put_u64(out, *from);
                put_u64(out, *epoch);
                put_u32(out, entries.len() as u32);
                for e in entries {
                    put_diff_entry(out, e);
                }
            }
            Response::GotAt { value, epoch } => {
                out.push(19);
                put_opt_i64(out, *value);
                put_u64(out, *epoch);
            }
            Response::WroteAt { result, watermark } => {
                out.push(20);
                put_batch_result(out, result);
                put_u64(out, *watermark);
            }
            Response::Gauges(g) => {
                out.push(21);
                put_u64(out, g.requests);
                put_u64(out, g.requests_shed);
                put_u64(out, g.open_conns);
                put_u64(out, g.wire_sent);
                put_u64(out, g.wire_received);
                put_u64(out, g.subscribers);
                put_u64(out, g.pushes);
                put_u64(out, g.push_demotions);
                put_u64(out, g.feed_head);
            }
            Response::Metrics(rows) => {
                out.push(22);
                put_u32(out, rows.len() as u32);
                for r in rows {
                    out.push(r.stage);
                    out.push(r.tag);
                    put_u64(out, r.count);
                    put_u64(out, r.sum);
                    put_u64(out, r.p50);
                    put_u64(out, r.p90);
                    put_u64(out, r.p99);
                    put_u64(out, r.p999);
                    put_u64(out, r.max);
                    put_u64(out, r.exemplar_id);
                    put_u64(out, r.exemplar_trace);
                }
            }
            Response::MetricsReset => out.push(23),
            Response::TraceDump { node, spans } => {
                out.push(24);
                let name = node.as_bytes();
                put_u32(out, name.len() as u32);
                out.extend_from_slice(name);
                put_u32(out, spans.len() as u32);
                for s in spans {
                    for w in s.to_words() {
                        put_u64(out, w);
                    }
                }
            }
        }
    }

    /// Parses a frame body produced by [`encode`](Self::encode) (or a
    /// legacy v2 body), with the same strictness as
    /// [`Request::decode`]. The envelope fields are discarded; a
    /// pipelined client uses
    /// [`decode_enveloped`](Self::decode_enveloped) to route the reply
    /// to its ticket.
    ///
    /// # Errors
    ///
    /// As [`Request::decode`].
    pub fn decode(body: &[u8]) -> Result<Self, ProtoError> {
        Self::decode_enveloped(body).map(|f| f.msg)
    }

    /// Parses a frame body keeping its envelope — the version it used
    /// and the request id it answers.
    ///
    /// # Errors
    ///
    /// As [`Request::decode`].
    pub fn decode_enveloped(body: &[u8]) -> Result<Framed<Self>, ProtoError> {
        let mut cur = Cur::new(body);
        let (version, request_id, trace) = read_envelope(&mut cur)?;
        let msg = Self::decode_tail(&mut cur)?;
        cur.finish()?;
        Ok(Framed {
            version,
            request_id,
            trace,
            msg,
        })
    }

    /// Tag + payload, shared by every envelope version.
    fn decode_tail(cur: &mut Cur<'_>) -> Result<Self, ProtoError> {
        let resp = match cur.u8()? {
            1 => Response::Got(cur.opt_i64()?),
            2 => Response::Inserted(cur.opt_i64()?),
            3 => Response::Removed(cur.opt_i64()?),
            4 => Response::CasApplied(cur.bool()?),
            5 => {
                let n = cur.seq_len(2)?;
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    results.push(cur.batch_result()?);
                }
                Response::Batch(results)
            }
            6 => Response::SnapshotTaken(cur.u64()?),
            7 => {
                let n = cur.seq_len(16)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push((cur.i64()?, cur.i64()?));
                }
                Response::Entries {
                    entries,
                    complete: cur.bool()?,
                }
            }
            8 => {
                let n = cur.seq_len(17)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(cur.diff_entry()?);
                }
                Response::Diff(entries)
            }
            9 => Response::Released(cur.bool()?),
            10 => Response::Stats(WireStats {
                ops: cur.u64()?,
                attempts: cur.u64()?,
                cas_failures: cur.u64()?,
                noop_updates: cur.u64()?,
                reads: cur.u64()?,
                frozen_installs: cur.u64()?,
                freeze_retries: cur.u64()?,
                len: cur.u64()?,
                snapshots: cur.u64()?,
            }),
            11 => Response::Error(match cur.u8()? {
                0 => WireError::UnknownSnapshot(cur.u64()?),
                1 => WireError::SnapshotMismatch,
                2 => WireError::Malformed,
                3 => WireError::TooLarge,
                4 => WireError::SnapshotLimit(cur.u64()?),
                5 => WireError::EpochRetired(cur.u64()?),
                6 => WireError::Busy(cur.u64()?),
                7 => WireError::Stale(cur.u64()?),
                tag => return Err(ProtoError::BadTag { what: "error", tag }),
            }),
            12 => {
                let n = cur.seq_len(4)?;
                let mut failed = Vec::with_capacity(n);
                for _ in 0..n {
                    failed.push(cur.u32()?);
                }
                Response::BatchAborted(failed)
            }
            13 => Response::Published(cur.u64()?),
            14 => Response::FeedInfo(FeedInfo {
                head: cur.u64()?,
                oldest: cur.u64()?,
                capacity: cur.u64()?,
            }),
            15 => {
                let to = cur.u64()?;
                let n = cur.seq_len(17)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(cur.diff_entry()?);
                }
                Response::EpochDiff { to, entries }
            }
            16 => {
                let epoch = cur.u64()?;
                let n = cur.seq_len(16)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push((cur.i64()?, cur.i64()?));
                }
                Response::SyncPage {
                    epoch,
                    entries,
                    done: cur.bool()?,
                }
            }
            17 => Response::SubscribeAck(FeedInfo {
                head: cur.u64()?,
                oldest: cur.u64()?,
                capacity: cur.u64()?,
            }),
            18 => {
                let from = cur.u64()?;
                let epoch = cur.u64()?;
                let n = cur.seq_len(17)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(cur.diff_entry()?);
                }
                Response::Push {
                    from,
                    epoch,
                    entries,
                }
            }
            19 => Response::GotAt {
                value: cur.opt_i64()?,
                epoch: cur.u64()?,
            },
            20 => Response::WroteAt {
                result: cur.batch_result()?,
                watermark: cur.u64()?,
            },
            21 => Response::Gauges(ServerGauges {
                requests: cur.u64()?,
                requests_shed: cur.u64()?,
                open_conns: cur.u64()?,
                wire_sent: cur.u64()?,
                wire_received: cur.u64()?,
                subscribers: cur.u64()?,
                pushes: cur.u64()?,
                push_demotions: cur.u64()?,
                feed_head: cur.u64()?,
            }),
            22 => {
                let n = cur.seq_len(2 + 9 * 8)?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(StageSummary {
                        stage: cur.u8()?,
                        tag: cur.u8()?,
                        count: cur.u64()?,
                        sum: cur.u64()?,
                        p50: cur.u64()?,
                        p90: cur.u64()?,
                        p99: cur.u64()?,
                        p999: cur.u64()?,
                        max: cur.u64()?,
                        exemplar_id: cur.u64()?,
                        exemplar_trace: cur.u64()?,
                    });
                }
                Response::Metrics(rows)
            }
            23 => Response::MetricsReset,
            24 => {
                let name_len = cur.seq_len(1)?;
                let node = String::from_utf8(cur.take(name_len)?.to_vec()).map_err(|_| {
                    ProtoError::BadTag {
                        what: "node name",
                        tag: 0,
                    }
                })?;
                let n = cur.seq_len(7 * 8)?;
                let mut spans = Vec::with_capacity(n);
                for _ in 0..n {
                    let mut w = [0u64; 7];
                    for word in &mut w {
                        *word = cur.u64()?;
                    }
                    spans.push(SpanRecord::from_words(w));
                }
                Response::TraceDump { node, spans }
            }
            tag => {
                return Err(ProtoError::BadTag {
                    what: "response",
                    tag,
                })
            }
        };
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame. The caller flushes.
///
/// A body over [`MAX_FRAME_LEN`] fails with [`io::ErrorKind::InvalidData`]
/// **before any byte is written**, so the stream stays at a frame
/// boundary and the caller can send a substitute message (the server
/// answers [`WireError::TooLarge`]).
fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME_LEN as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {} bytes exceeds MAX_FRAME_LEN", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

/// Reads one length-prefixed frame body. `Ok(None)` means the peer
/// closed the connection cleanly at a frame boundary.
fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut len_buf = [0u8; 4];
    // Hand-rolled read_exact for the prefix so a clean EOF before the
    // first byte is distinguishable from EOF mid-prefix.
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(ProtoError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::FrameTooLarge(len));
    }
    if len < 2 {
        // A valid body always has at least a version and a tag byte.
        return Err(ProtoError::Truncated);
    }
    let mut body = vec![0u8; len as usize];
    match r.read_exact(&mut body) {
        Ok(()) => Ok(Some(body)),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(ProtoError::Truncated),
        Err(e) => Err(ProtoError::Io(e)),
    }
}

/// Writes one request frame with request id `0` (the caller flushes
/// buffered writers).
///
/// # Errors
///
/// Any [`io::Error`] from the underlying writer.
pub fn write_request<W: Write>(w: &mut W, req: &Request) -> io::Result<()> {
    write_request_with_id(w, 0, req)
}

/// Writes one request frame carrying `id`, the correlation id a
/// pipelined session matches the reply by (the caller flushes buffered
/// writers).
///
/// # Errors
///
/// Any [`io::Error`] from the underlying writer.
pub fn write_request_with_id<W: Write>(w: &mut W, id: RequestId, req: &Request) -> io::Result<()> {
    let mut body = Vec::with_capacity(40);
    req.encode_with_id(id, &mut body);
    write_frame(w, &body)
}

/// [`write_request_with_id`] with an optional trace context: with
/// `Some`, the envelope carries the context (version byte
/// `3 | `[`PROTO_TRACE_FLAG`]); with `None` the frame is byte-identical
/// to the untraced form.
///
/// # Errors
///
/// Any [`io::Error`] from the underlying writer.
pub fn write_request_traced<W: Write>(
    w: &mut W,
    id: RequestId,
    req: &Request,
    trace: Option<&TraceContext>,
) -> io::Result<()> {
    let mut body = Vec::with_capacity(60);
    match trace {
        Some(ctx) => req.encode_traced(id, ctx, &mut body),
        None => req.encode_with_id(id, &mut body),
    }
    write_frame(w, &body)
}

/// Reads one request frame; `Ok(None)` on clean connection close.
///
/// # Errors
///
/// [`ProtoError::Io`] from the transport,
/// [`ProtoError::FrameTooLarge`] for an oversized length prefix,
/// [`ProtoError::Truncated`] for a connection cut mid-frame, and any
/// [`Request::decode`] error for a malformed body.
pub fn read_request<R: Read>(r: &mut R) -> Result<Option<Request>, ProtoError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(body) => Request::decode(&body).map(Some),
    }
}

/// Reads one request frame keeping its envelope (version + request id);
/// `Ok(None)` on clean connection close. What a server loop reads.
///
/// # Errors
///
/// As [`read_request`].
pub fn read_request_enveloped<R: Read>(r: &mut R) -> Result<Option<Framed<Request>>, ProtoError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(body) => Request::decode_enveloped(&body).map(Some),
    }
}

/// Writes one response frame with request id `0` (the caller flushes
/// buffered writers).
///
/// # Errors
///
/// Any [`io::Error`] from the underlying writer.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> io::Result<()> {
    let mut body = Vec::with_capacity(64);
    resp.encode(&mut body);
    write_frame(w, &body)
}

/// Writes one response frame echoing `id` (the caller flushes buffered
/// writers). What a v3 server — or a test mocking one — answers a
/// pipelined request with.
///
/// # Errors
///
/// Any [`io::Error`] from the underlying writer.
pub fn write_response_with_id<W: Write>(
    w: &mut W,
    id: RequestId,
    resp: &Response,
) -> io::Result<()> {
    let mut body = Vec::with_capacity(72);
    resp.encode_with_id(id, &mut body);
    write_frame(w, &body)
}

/// Encodes `resp` as one complete frame — length prefix included — in
/// the envelope `version` the request arrived in, echoing `id` on v3
/// frames (v2 has no id field). A body over [`MAX_FRAME_LEN`] is
/// replaced in place by [`WireError::TooLarge`] with the same envelope,
/// so the result is always sendable and the stream always stays at a
/// frame boundary. This is what the event-driven server queues on each
/// connection's write buffer.
pub fn response_frame(resp: &Response, version: u8, id: RequestId) -> Vec<u8> {
    fn encode_versioned(resp: &Response, version: u8, id: RequestId, out: &mut Vec<u8>) {
        if version == PROTO_V2 {
            resp.encode_v2(out);
        } else {
            resp.encode_with_id(id, out);
        }
    }
    let mut frame = vec![0u8; 4];
    encode_versioned(resp, version, id, &mut frame);
    if frame.len() - 4 > MAX_FRAME_LEN as usize {
        frame.truncate(4);
        encode_versioned(
            &Response::Error(WireError::TooLarge),
            version,
            id,
            &mut frame,
        );
    }
    let len = (frame.len() - 4) as u32;
    frame[..4].copy_from_slice(&len.to_le_bytes());
    frame
}

/// [`response_frame`] with an optional trace context. With
/// `Some(ctx)` on a v3 envelope the frame carries the 17-byte trace
/// extension ([`PROTO_TRACE_FLAG`]); with `None` — or on a v2 envelope,
/// which has nowhere to put it — the output is byte-identical to
/// [`response_frame`].
pub fn response_frame_traced(
    resp: &Response,
    version: u8,
    id: RequestId,
    trace: Option<&TraceContext>,
) -> Vec<u8> {
    fn encode_versioned(
        resp: &Response,
        version: u8,
        id: RequestId,
        trace: Option<&TraceContext>,
        out: &mut Vec<u8>,
    ) {
        match trace {
            Some(ctx) if version != PROTO_V2 => resp.encode_traced(id, ctx, out),
            _ if version == PROTO_V2 => resp.encode_v2(out),
            _ => resp.encode_with_id(id, out),
        }
    }
    let mut frame = vec![0u8; 4];
    encode_versioned(resp, version, id, trace, &mut frame);
    if frame.len() - 4 > MAX_FRAME_LEN as usize {
        frame.truncate(4);
        encode_versioned(
            &Response::Error(WireError::TooLarge),
            version,
            id,
            trace,
            &mut frame,
        );
    }
    let len = (frame.len() - 4) as u32;
    frame[..4].copy_from_slice(&len.to_le_bytes());
    frame
}

/// Reads one response frame. A close mid-conversation is an error — the
/// client was owed a reply.
///
/// # Errors
///
/// As [`read_request`], plus [`ProtoError::Io`] with
/// [`io::ErrorKind::UnexpectedEof`] if the connection closes where a
/// reply was due.
pub fn read_response<R: Read>(r: &mut R) -> Result<Response, ProtoError> {
    match read_frame(r)? {
        None => Err(ProtoError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed while awaiting a response",
        ))),
        Some(body) => Response::decode(&body),
    }
}

/// Reads one response frame keeping its envelope — what a pipelined
/// session's demux loop reads to route each reply to its ticket.
/// `Ok(None)` means the peer closed cleanly at a frame boundary (a
/// session with nothing in flight treats that as normal teardown).
///
/// # Errors
///
/// As [`read_request`].
pub fn read_response_enveloped<R: Read>(r: &mut R) -> Result<Option<Framed<Response>>, ProtoError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(body) => Response::decode_enveloped(&body).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &Request) -> Request {
        let mut buf = Vec::new();
        write_request(&mut buf, req).unwrap();
        let mut r = &buf[..];
        let back = read_request(&mut r).unwrap().unwrap();
        assert!(r.is_empty(), "frame fully consumed");
        back
    }

    fn roundtrip_response(resp: &Response) -> Response {
        let mut buf = Vec::new();
        write_response(&mut buf, resp).unwrap();
        let mut r = &buf[..];
        let back = read_response(&mut r).unwrap();
        assert!(r.is_empty(), "frame fully consumed");
        back
    }

    #[test]
    fn request_roundtrips() {
        let reqs = [
            Request::Get { key: -7 },
            Request::Insert { key: 1, value: 2 },
            Request::Remove { key: i64::MIN },
            Request::Cas {
                key: 3,
                expected: Some(i64::MAX),
                new: None,
            },
            Request::Batch {
                ops: vec![
                    BatchOp::Get(1),
                    BatchOp::Insert(2, 20),
                    BatchOp::Remove(3),
                    BatchOp::Cas {
                        key: 4,
                        expected: None,
                        new: Some(40),
                    },
                ],
                guarded: false,
            },
            Request::Batch {
                ops: vec![BatchOp::Cas {
                    key: 4,
                    expected: Some(1),
                    new: None,
                }],
                guarded: true,
            },
            Request::Snapshot,
            Request::Range {
                snapshot: Some(9),
                lo: Bound::Included(-5),
                hi: Bound::Excluded(5),
                limit: 128,
            },
            Request::Range {
                snapshot: None,
                lo: Bound::Unbounded,
                hi: Bound::Unbounded,
                limit: 0,
            },
            Request::Diff {
                from: 1,
                to: Some(2),
            },
            Request::Diff { from: 3, to: None },
            Request::Release { snapshot: 11 },
            Request::Stats,
            Request::Publish,
            Request::Subscribe,
            Request::PullDiff { from: 17 },
            Request::FullSync {
                epoch: None,
                after: None,
                limit: 0,
            },
            Request::FullSync {
                epoch: Some(9),
                after: Some(-3),
                limit: 4096,
            },
            Request::SubscribePush { from: 0 },
            Request::SubscribePush { from: 41 },
            Request::GetAt {
                key: -9,
                min_epoch: 17,
                wait_ms: 250,
            },
            Request::WriteAt {
                op: BatchOp::Insert(5, 50),
            },
            Request::WriteAt {
                op: BatchOp::Cas {
                    key: 6,
                    expected: Some(1),
                    new: None,
                },
            },
            Request::Gauges,
            Request::Metrics,
            Request::ResetMetrics,
            Request::TraceDump,
        ];
        for req in reqs {
            assert_eq!(roundtrip_request(&req), req);
        }
    }

    #[test]
    fn tag_byte_matches_the_encoder() {
        let reqs = [
            Request::Get { key: 1 },
            Request::Batch {
                ops: vec![],
                guarded: false,
            },
            Request::Publish,
            Request::Gauges,
            Request::Metrics,
            Request::ResetMetrics,
            Request::TraceDump,
        ];
        for req in reqs {
            let mut body = Vec::new();
            req.encode(&mut body);
            // Tag sits after the 1-byte version and 8-byte request id.
            assert_eq!(body[9], req.tag_byte(), "{req:?}");
            assert!(Request::tag_name(req.tag_byte()).is_some());
        }
        assert_eq!(Request::tag_name(0), None);
        assert_eq!(Request::tag_name(22), None);
    }

    #[test]
    fn response_roundtrips() {
        let resps = [
            Response::Got(Some(4)),
            Response::Inserted(None),
            Response::Removed(Some(-1)),
            Response::CasApplied(true),
            Response::Batch(vec![
                BatchResult::Got(None),
                BatchResult::Inserted(Some(1)),
                BatchResult::Removed(None),
                BatchResult::Cas(false),
            ]),
            Response::SnapshotTaken(42),
            Response::Entries {
                entries: vec![(1, 10), (2, 20)],
                complete: false,
            },
            Response::Diff(vec![
                DiffEntry::Added(1, 10),
                DiffEntry::Removed(2, 20),
                DiffEntry::Changed(3, 30, 31),
            ]),
            Response::Released(true),
            Response::Stats(WireStats {
                ops: 1,
                attempts: 2,
                cas_failures: 3,
                noop_updates: 4,
                reads: 5,
                frozen_installs: 6,
                freeze_retries: 7,
                len: 8,
                snapshots: 9,
            }),
            Response::BatchAborted(vec![0, 3, 7]),
            Response::Published(12),
            Response::FeedInfo(FeedInfo {
                head: 12,
                oldest: 5,
                capacity: 8,
            }),
            Response::EpochDiff {
                to: 12,
                entries: vec![DiffEntry::Added(1, 10), DiffEntry::Removed(2, 20)],
            },
            Response::EpochDiff {
                to: 3,
                entries: vec![],
            },
            Response::SyncPage {
                epoch: 12,
                entries: vec![(1, 10), (2, 20)],
                done: true,
            },
            Response::SubscribeAck(FeedInfo {
                head: 7,
                oldest: 3,
                capacity: 8,
            }),
            Response::Push {
                from: 6,
                epoch: 7,
                entries: vec![DiffEntry::Added(1, 10), DiffEntry::Changed(2, 20, 21)],
            },
            Response::Push {
                from: 0,
                epoch: 1,
                entries: vec![],
            },
            Response::GotAt {
                value: Some(-4),
                epoch: 19,
            },
            Response::GotAt {
                value: None,
                epoch: 0,
            },
            Response::WroteAt {
                result: BatchResult::Inserted(None),
                watermark: 21,
            },
            Response::Gauges(ServerGauges {
                requests: 1,
                requests_shed: 2,
                open_conns: 3,
                wire_sent: 4,
                wire_received: 5,
                subscribers: 6,
                pushes: 7,
                push_demotions: 8,
                feed_head: 9,
            }),
            Response::Metrics(vec![]),
            Response::Metrics(vec![
                StageSummary {
                    stage: 1,
                    tag: 1,
                    count: 100,
                    sum: 12_345,
                    p50: 10,
                    p90: 20,
                    p99: 30,
                    p999: 40,
                    max: 50,
                    exemplar_id: 77,
                    exemplar_trace: 0xDEAD,
                },
                StageSummary {
                    stage: 6,
                    tag: 0,
                    count: 7,
                    sum: 7,
                    p50: 1,
                    p90: 1,
                    p99: 1,
                    p999: 1,
                    max: 1,
                    exemplar_id: 0,
                    exemplar_trace: 0,
                },
            ]),
            Response::MetricsReset,
            Response::TraceDump {
                node: String::new(),
                spans: vec![],
            },
            Response::TraceDump {
                node: "relay-1".to_string(),
                spans: vec![
                    SpanRecord {
                        trace_id: 9,
                        span_id: 2,
                        parent_span: 1,
                        kind: 2,
                        tag: 11,
                        flags: 1,
                        epoch: 40,
                        start_ns: 1_000,
                        dur_ns: 250,
                    },
                    SpanRecord {
                        trace_id: u64::MAX,
                        span_id: u64::MAX,
                        parent_span: 0,
                        kind: 5,
                        tag: 0,
                        flags: 3,
                        epoch: u64::MAX,
                        start_ns: u64::MAX,
                        dur_ns: u64::MAX,
                    },
                ],
            },
            Response::Error(WireError::UnknownSnapshot(77)),
            Response::Error(WireError::SnapshotMismatch),
            Response::Error(WireError::Malformed),
            Response::Error(WireError::TooLarge),
            Response::Error(WireError::SnapshotLimit(512)),
            Response::Error(WireError::EpochRetired(4)),
            Response::Error(WireError::Busy(64)),
            Response::Error(WireError::Stale(13)),
        ];
        for resp in resps {
            assert_eq!(roundtrip_response(&resp), resp);
        }
    }

    #[test]
    fn clean_eof_is_none_mid_frame_is_truncated() {
        let mut empty: &[u8] = &[];
        assert!(matches!(read_request(&mut empty), Ok(None)));

        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Stats).unwrap();
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            assert!(
                matches!(read_request(&mut r), Err(ProtoError::Truncated)),
                "cut at {cut} must be Truncated"
            );
        }
    }

    #[test]
    fn bad_version_and_bad_tag_are_rejected() {
        let err = Request::decode(&[PROTO_VERSION + 1, 1]).unwrap_err();
        assert!(matches!(err, ProtoError::BadVersion(_)));

        // v3 envelope: version, 8 id bytes, then a bogus tag.
        let mut body = vec![PROTO_VERSION];
        put_u64(&mut body, 7);
        body.push(0xEE);
        let err = Request::decode(&body).unwrap_err();
        assert!(matches!(
            err,
            ProtoError::BadTag {
                what: "request",
                ..
            }
        ));

        let err = Response::decode(&body).unwrap_err();
        assert!(matches!(
            err,
            ProtoError::BadTag {
                what: "response",
                ..
            }
        ));

        // A v3 frame cut inside the id field is truncation, not a tag.
        assert!(matches!(
            Request::decode(&[PROTO_VERSION, 1, 2, 3]),
            Err(ProtoError::Truncated)
        ));
    }

    #[test]
    fn envelope_carries_the_request_id_both_ways() {
        for id in [0u64, 1, 42, u64::MAX] {
            let mut body = Vec::new();
            Request::Get { key: 9 }.encode_with_id(id, &mut body);
            let framed = Request::decode_enveloped(&body).unwrap();
            assert_eq!(framed.version, PROTO_VERSION);
            assert_eq!(framed.request_id, id);
            assert_eq!(framed.msg, Request::Get { key: 9 });

            let mut body = Vec::new();
            Response::Got(Some(-3)).encode_with_id(id, &mut body);
            let framed = Response::decode_enveloped(&body).unwrap();
            assert_eq!(framed.request_id, id);
            assert_eq!(framed.msg, Response::Got(Some(-3)));
        }
    }

    #[test]
    fn legacy_v2_frames_still_decode_with_id_zero() {
        let req = Request::Insert { key: 1, value: 2 };
        let mut body = Vec::new();
        req.encode_v2(&mut body);
        assert_eq!(body[0], PROTO_V2);
        let framed = Request::decode_enveloped(&body).unwrap();
        assert_eq!((framed.version, framed.request_id), (PROTO_V2, 0));
        assert_eq!(framed.msg, req);

        let resp = Response::Inserted(None);
        let mut body = Vec::new();
        resp.encode_v2(&mut body);
        let framed = Response::decode_enveloped(&body).unwrap();
        assert_eq!((framed.version, framed.request_id), (PROTO_V2, 0));
        assert_eq!(framed.msg, resp);
    }

    #[test]
    fn traced_envelope_roundtrips_and_untraced_stays_byte_identical() {
        let ctx = TraceContext {
            trace_id: 0xAB_CD,
            parent_span: 42,
            flags: TraceContext::SAMPLED | TraceContext::SLOW,
        };
        let mut body = Vec::new();
        Request::Publish.encode_traced(7, &ctx, &mut body);
        assert_eq!(body[0], PROTO_VERSION | PROTO_TRACE_FLAG);
        assert_eq!(body.len(), 1 + 8 + TraceContext::WIRE_BYTES + 1);
        let framed = Request::decode_enveloped(&body).unwrap();
        // The flag is stripped: downstream "answer in the arriving
        // version" logic sees plain v3.
        assert_eq!(framed.version, PROTO_VERSION);
        assert_eq!(framed.request_id, 7);
        assert_eq!(framed.trace, Some(ctx));
        assert_eq!(framed.msg, Request::Publish);

        let frame = response_frame_traced(&Response::Published(9), PROTO_VERSION, 3, Some(&ctx));
        let framed = Response::decode_enveloped(&frame[4..]).unwrap();
        assert_eq!(framed.trace, Some(ctx));
        assert_eq!(framed.msg, Response::Published(9));

        // No context → byte-identical to the untraced encoder, so
        // tracing-off costs nothing on the wire.
        let plain = response_frame_traced(&Response::Published(9), PROTO_VERSION, 3, None);
        assert_eq!(
            plain,
            response_frame(&Response::Published(9), PROTO_VERSION, 3)
        );

        // A v2 envelope has nowhere to put the context: it is dropped,
        // not smuggled, and the legacy peer decodes a plain v2 frame.
        let v2 = response_frame_traced(&Response::Published(9), PROTO_V2, 3, Some(&ctx));
        assert_eq!(v2, response_frame(&Response::Published(9), PROTO_V2, 3));
        assert_eq!(Response::decode_enveloped(&v2[4..]).unwrap().trace, None);
    }

    #[test]
    fn busy_error_roundtrips() {
        let resp = Response::Error(WireError::Busy(64));
        let mut body = Vec::new();
        resp.encode_with_id(5, &mut body);
        let framed = Response::decode_enveloped(&body).unwrap();
        assert_eq!(framed.request_id, 5);
        assert_eq!(framed.msg, resp);
    }

    #[test]
    fn response_frame_is_versioned_and_substitutes_too_large() {
        // v3: the id comes back; v2: no id field at all.
        let frame = response_frame(&Response::Got(None), PROTO_VERSION, 9);
        let body = &frame[4..];
        let framed = Response::decode_enveloped(body).unwrap();
        assert_eq!((framed.version, framed.request_id), (PROTO_VERSION, 9));

        let frame = response_frame(&Response::Got(None), PROTO_V2, 9);
        let framed = Response::decode_enveloped(&frame[4..]).unwrap();
        assert_eq!((framed.version, framed.request_id), (PROTO_V2, 0));

        // An overflowing body becomes TooLarge with the same envelope.
        let huge = Response::Entries {
            entries: vec![(0, 0); (MAX_FRAME_LEN as usize / 16) + 1],
            complete: true,
        };
        let frame = response_frame(&huge, PROTO_VERSION, 7);
        let framed = Response::decode_enveloped(&frame[4..]).unwrap();
        assert_eq!(framed.request_id, 7);
        assert_eq!(framed.msg, Response::Error(WireError::TooLarge));
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap());
        assert_eq!(len as usize, frame.len() - 4);
    }

    #[test]
    fn push_ids_live_outside_the_client_namespace() {
        // Clients allocate ids upward from 1; push ids set the top bit,
        // so the two namespaces can never collide in practice.
        for epoch in [1u64, 42, u64::MAX >> 1] {
            let id = PUSH_ID_BASE | epoch;
            assert_ne!(id & PUSH_ID_BASE, 0);
            assert_eq!(id & !PUSH_ID_BASE, epoch);
            let mut body = Vec::new();
            Response::Push {
                from: epoch - 1,
                epoch,
                entries: vec![],
            }
            .encode_with_id(id, &mut body);
            let framed = Response::decode_enveloped(&body).unwrap();
            assert_eq!(framed.request_id, id);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = Vec::new();
        Request::Get { key: 5 }.encode(&mut body);
        body.push(0);
        assert!(matches!(
            Request::decode(&body),
            Err(ProtoError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut r = &buf[..];
        assert!(matches!(
            read_request(&mut r),
            Err(ProtoError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn oversized_reply_body_fails_before_any_byte_is_written() {
        // ~1.1M entries at 16 bytes each overflow the 16 MiB frame cap.
        let huge = Response::Entries {
            entries: vec![(0, 0); (MAX_FRAME_LEN as usize / 16) + 1],
            complete: true,
        };
        let mut buf = Vec::new();
        let err = write_response(&mut buf, &huge).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(buf.is_empty(), "stream must stay at a frame boundary");
    }

    #[test]
    fn corrupt_sequence_length_is_truncated_not_oom() {
        // A Batch frame claiming u32::MAX ops with a near-empty payload
        // must fail cleanly instead of attempting a giant allocation.
        let mut body = vec![PROTO_VERSION];
        put_u64(&mut body, 0); // request id
        body.push(5); // Batch
        body.push(0); // guarded: false
        put_u32(&mut body, u32::MAX);
        assert!(matches!(Request::decode(&body), Err(ProtoError::Truncated)));
    }

    #[test]
    fn sync_page_cap_fits_the_frame_cap_with_room() {
        // The chunking invariant: a maximal SyncPage must encode well
        // under MAX_FRAME_LEN (satellite: FullSync bootstrap can never
        // trip the frame cap, however big the map).
        let page = Response::SyncPage {
            epoch: u64::MAX,
            entries: vec![(i64::MIN, i64::MAX); SYNC_PAGE_MAX_ENTRIES as usize],
            done: false,
        };
        let mut body = Vec::new();
        page.encode(&mut body);
        assert!(
            (body.len() as u32) < MAX_FRAME_LEN / 4,
            "maximal sync page ({} bytes) too close to the frame cap",
            body.len()
        );
    }
}
