//! The unified concurrent-collection trait family.
//!
//! Every backend in `pathcopy-concurrent` — the single-root UC trees, the
//! sharded map/set, and the lock-based baselines — exposes the same
//! divergent-looking inherent API; these traits are the one stable
//! abstraction boundary over all of them, so benchmarks, oracle tests,
//! and applications are written once and run against every backend.
//!
//! * [`ConcurrentMap`] / [`ConcurrentSet`] — linearizable point
//!   operations plus [`compute`](ConcurrentMap::compute) and statistics.
//!   Both traits are object safe, so backends can live behind
//!   `Box<dyn ConcurrentSet<i64>>` in registries and harnesses.
//! * [`Snapshottable`] — the paper's headline capability as a
//!   first-class handle: `snapshot()` returns a cheap (`O(1)` on
//!   single-root backends), immutable, `Send + Sync` view.
//! * [`MapSnapshot`] / [`SetSnapshot`] — what a snapshot can do:
//!   **lazy** in-order iteration ([`iter`](MapSnapshot::iter),
//!   [`range`](MapSnapshot::range) return real iterators over the
//!   persistent tree, never an intermediate `Vec`), exact
//!   [`len`](MapSnapshot::len), point reads, and snapshot-to-snapshot
//!   [`diff`](MapSnapshot::diff) that exploits shared-subtree pointer
//!   equality to skip unchanged regions — the canonical path-copying
//!   trick, giving sublinear diffs between nearby versions.

use std::ops::{Bound, RangeBounds};

use crate::stats::StatsSnapshot;

/// One entry of a snapshot-to-snapshot map diff, in ascending key order.
///
/// `old.diff(&new)` describes how to get from `old` to `new`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffEntry<K, V> {
    /// The key is present in the newer snapshot only.
    Added(K, V),
    /// The key is present in the older snapshot only.
    Removed(K, V),
    /// The key is present in both snapshots with different values
    /// (`Changed(key, old_value, new_value)`).
    Changed(K, V, V),
}

impl<K, V> DiffEntry<K, V> {
    /// The key this entry concerns.
    pub fn key(&self) -> &K {
        match self {
            DiffEntry::Added(k, _) | DiffEntry::Removed(k, _) | DiffEntry::Changed(k, _, _) => k,
        }
    }
}

/// One entry of a snapshot-to-snapshot set diff, in ascending key order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetDiffEntry<K> {
    /// The key is present in the newer snapshot only.
    Added(K),
    /// The key is present in the older snapshot only.
    Removed(K),
}

impl<K> SetDiffEntry<K> {
    /// The key this entry concerns.
    pub fn key(&self) -> &K {
        match self {
            SetDiffEntry::Added(k) | SetDiffEntry::Removed(k) => k,
        }
    }

    /// Converts a unit-valued map diff into a set diff — the shared
    /// plumbing for set snapshots implemented over `Map<K, ()>`.
    /// `Changed` cannot occur for unit values.
    pub fn from_unit_diff(diff: Vec<DiffEntry<K, ()>>) -> Vec<SetDiffEntry<K>> {
        diff.into_iter()
            .map(|e| match e {
                DiffEntry::Added(k, ()) => SetDiffEntry::Added(k),
                DiffEntry::Removed(k, ()) => SetDiffEntry::Removed(k),
                DiffEntry::Changed(..) => unreachable!("unit values never change"),
            })
            .collect()
    }
}

/// A linearizable concurrent ordered map.
///
/// Object safe: registries and harnesses may hold backends as
/// `Box<dyn ConcurrentMap<K, V>>`.
pub trait ConcurrentMap<K, V>: Send + Sync {
    /// Inserts `key -> value`, returning the previous value if any.
    fn insert(&self, key: K, value: V) -> Option<V>;

    /// Removes `key`, returning its value if present.
    fn remove(&self, key: &K) -> Option<V>;

    /// Looks up `key`, cloning the value out.
    fn get(&self, key: &K) -> Option<V>;

    /// `true` if `key` is present.
    fn contains_key(&self, key: &K) -> bool;

    /// Number of entries. On sharded backends this is a weakly
    /// consistent per-shard sum — see the backend's documentation; use a
    /// snapshot's [`MapSnapshot::len`] for an exact count.
    fn len(&self) -> usize;

    /// `true` if the map has no entries (same caveat as
    /// [`len`](Self::len)).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Atomically applies `f` to the value at `key` (`None` if absent)
    /// and stores its result (`None` removes the key). Returns the
    /// previous value. `f` may run several times under contention and
    /// must be a pure function of the value it is given.
    fn compute(&self, key: &K, f: &dyn Fn(Option<&V>) -> Option<V>) -> Option<V>;

    /// Attempt/retry statistics accumulated by this backend. Lock-based
    /// backends without counters return an empty snapshot.
    fn stats_snapshot(&self) -> StatsSnapshot {
        StatsSnapshot::empty()
    }
}

/// A linearizable concurrent set.
///
/// Object safe: registries and harnesses may hold backends as
/// `Box<dyn ConcurrentSet<K>>`.
pub trait ConcurrentSet<K>: Send + Sync {
    /// Inserts `key`; `true` if the set changed.
    fn insert(&self, key: K) -> bool;

    /// Removes `key`; `true` if the set changed.
    fn remove(&self, key: &K) -> bool;

    /// `true` if `key` is present.
    fn contains(&self, key: &K) -> bool;

    /// Number of keys (weakly consistent on sharded backends; use a
    /// snapshot's [`SetSnapshot::len`] for an exact count).
    fn len(&self) -> usize;

    /// `true` if the set has no keys (same caveat as [`len`](Self::len)).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempt/retry statistics accumulated by this backend. Lock-based
    /// backends without counters return an empty snapshot.
    fn stats_snapshot(&self) -> StatsSnapshot {
        StatsSnapshot::empty()
    }
}

/// A structure that can hand out cheap immutable point-in-time views.
///
/// The snapshot is a first-class handle: `Clone + Send + Sync`, valid
/// forever, and never blocks (or is blocked by) writers. On single-root
/// backends taking it is O(1); on the sharded backends it is a validated
/// double scan over the shard roots (lock-free, coherent).
pub trait Snapshottable {
    /// The snapshot handle type. See [`MapSnapshot`] / [`SetSnapshot`]
    /// for what it supports.
    type Snapshot: Clone + Send + Sync;

    /// Takes a consistent point-in-time snapshot.
    fn snapshot(&self) -> Self::Snapshot;
}

/// Read operations of an immutable map snapshot.
///
/// Iteration is **lazy**: [`iter`](Self::iter) and
/// [`range`](Self::range) walk the persistent tree directly and never
/// materialize an intermediate `Vec`.
pub trait MapSnapshot<K, V>: Send + Sync {
    /// Lazy in-order iterator over a key range of the snapshot.
    type Range<'a>: Iterator<Item = (&'a K, &'a V)>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    /// Looks up `key` at snapshot time.
    fn get(&self, key: &K) -> Option<&V>;

    /// Exact number of entries at snapshot time.
    fn len(&self) -> usize;

    /// Lazy in-order iterator over the entries whose keys lie between
    /// the two bounds. Prefer the [`range`](Self::range) convenience.
    fn range_by(&self, lo: Bound<&K>, hi: Bound<&K>) -> Self::Range<'_>;

    /// Difference between this (older) snapshot and `newer`, in
    /// ascending key order. Implementations prune pointer-identical
    /// shared subtrees, so the cost is proportional to the *change*
    /// between the versions (plus the boundary search paths), not the
    /// total size.
    fn diff(&self, newer: &Self) -> Vec<DiffEntry<K, V>>;

    /// `true` if `key` was present at snapshot time.
    fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// `true` if the snapshot holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lazy in-order iterator over every entry.
    fn iter(&self) -> Self::Range<'_> {
        self.range_by(Bound::Unbounded, Bound::Unbounded)
    }

    /// Lazy in-order iterator over the entries in `range`
    /// (e.g. `snap.range(10..20)`).
    fn range<R: RangeBounds<K>>(&self, range: R) -> Self::Range<'_> {
        self.range_by(range.start_bound(), range.end_bound())
    }
}

/// Read operations of an immutable set snapshot.
///
/// Iteration is **lazy**, exactly as in [`MapSnapshot`].
pub trait SetSnapshot<K>: Send + Sync {
    /// Lazy ascending iterator over a key range of the snapshot.
    type Range<'a>: Iterator<Item = &'a K>
    where
        Self: 'a,
        K: 'a;

    /// `true` if `key` was present at snapshot time.
    fn contains(&self, key: &K) -> bool;

    /// Exact number of keys at snapshot time.
    fn len(&self) -> usize;

    /// Lazy ascending iterator over the keys between the two bounds.
    /// Prefer the [`range`](Self::range) convenience.
    fn range_by(&self, lo: Bound<&K>, hi: Bound<&K>) -> Self::Range<'_>;

    /// Difference between this (older) snapshot and `newer`, in
    /// ascending key order, pruning shared subtrees as in
    /// [`MapSnapshot::diff`].
    fn diff(&self, newer: &Self) -> Vec<SetDiffEntry<K>>;

    /// `true` if the snapshot holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lazy ascending iterator over every key.
    fn iter(&self) -> Self::Range<'_> {
        self.range_by(Bound::Unbounded, Bound::Unbounded)
    }

    /// Lazy ascending iterator over the keys in `range`.
    fn range<R: RangeBounds<K>>(&self, range: R) -> Self::Range<'_> {
        self.range_by(range.start_bound(), range.end_bound())
    }
}
