//! Operation statistics for the universal construction.
//!
//! The model in the paper predicts that with `P` processes nearly every
//! successful operation is preceded by `P − 1` failed attempts (Fig. 4).
//! These counters let the harness check that prediction on the real
//! implementation: `attempts / ops` should approach `P` under write-only
//! contention.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crossbeam_utils::CachePadded;

/// Upper bound on the attempt histogram; attempts beyond this land in the
/// last bucket.
pub const MAX_TRACKED_ATTEMPTS: usize = 64;

/// Shared, thread-safe counters describing UC behaviour.
///
/// All counters are monotonically increasing and updated with relaxed
/// atomics — they are diagnostics, not synchronization.
#[derive(Debug)]
pub struct UcStats {
    ops: CachePadded<AtomicU64>,
    attempts: CachePadded<AtomicU64>,
    cas_failures: CachePadded<AtomicU64>,
    noop_updates: CachePadded<AtomicU64>,
    reads: CachePadded<AtomicU64>,
    frozen_installs: CachePadded<AtomicU64>,
    freeze_retries: CachePadded<AtomicU64>,
    /// `attempt_hist[k]` counts operations that needed exactly `k + 1`
    /// attempts (last bucket: `>= MAX_TRACKED_ATTEMPTS`).
    attempt_hist: Box<[AtomicU64]>,
}

impl Default for UcStats {
    fn default() -> Self {
        Self::new()
    }
}

impl UcStats {
    /// Creates a zeroed statistics block.
    pub fn new() -> Self {
        let hist = (0..MAX_TRACKED_ATTEMPTS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        UcStats {
            ops: CachePadded::new(AtomicU64::new(0)),
            attempts: CachePadded::new(AtomicU64::new(0)),
            cas_failures: CachePadded::new(AtomicU64::new(0)),
            noop_updates: CachePadded::new(AtomicU64::new(0)),
            reads: CachePadded::new(AtomicU64::new(0)),
            frozen_installs: CachePadded::new(AtomicU64::new(0)),
            freeze_retries: CachePadded::new(AtomicU64::new(0)),
            attempt_hist: hist,
        }
    }

    /// Records one completed update that needed `attempts` attempts, of
    /// which `attempts - 1` ended in a failed CAS.
    pub fn record_update(&self, attempts: u64, was_noop: bool) {
        debug_assert!(attempts >= 1);
        self.ops.fetch_add(1, Relaxed);
        self.attempts.fetch_add(attempts, Relaxed);
        self.cas_failures.fetch_add(attempts - 1, Relaxed);
        if was_noop {
            self.noop_updates.fetch_add(1, Relaxed);
        }
        let bucket = ((attempts - 1) as usize).min(MAX_TRACKED_ATTEMPTS - 1);
        self.attempt_hist[bucket].fetch_add(1, Relaxed);
    }

    /// Records one read-only operation.
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Relaxed);
    }

    /// Records one root installed through the freeze hook (a
    /// multi-object commit), as opposed to the plain CAS loop.
    pub fn record_frozen_install(&self) {
        self.frozen_installs.fetch_add(1, Relaxed);
    }

    /// Records one backed-out freeze pass: a multi-object commit found
    /// this root moved by a concurrent update between copying and
    /// freezing, unfroze everything, and had to rebuild and retry.
    pub fn record_freeze_retry(&self) {
        self.freeze_retries.fetch_add(1, Relaxed);
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            ops: self.ops.load(Relaxed),
            attempts: self.attempts.load(Relaxed),
            cas_failures: self.cas_failures.load(Relaxed),
            noop_updates: self.noop_updates.load(Relaxed),
            reads: self.reads.load(Relaxed),
            frozen_installs: self.frozen_installs.load(Relaxed),
            freeze_retries: self.freeze_retries.load(Relaxed),
            attempt_hist: self.attempt_hist.iter().map(|c| c.load(Relaxed)).collect(),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.ops.store(0, Relaxed);
        self.attempts.store(0, Relaxed);
        self.cas_failures.store(0, Relaxed);
        self.noop_updates.store(0, Relaxed);
        self.reads.store(0, Relaxed);
        self.frozen_installs.store(0, Relaxed);
        self.freeze_retries.store(0, Relaxed);
        for c in self.attempt_hist.iter() {
            c.store(0, Relaxed);
        }
    }
}

/// Plain-data copy of [`UcStats`] counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Completed update operations.
    pub ops: u64,
    /// Total attempts across all updates (>= `ops`).
    pub attempts: u64,
    /// Failed CASes (`attempts - ops` when every attempt ends in a CAS).
    pub cas_failures: u64,
    /// Updates that turned out to change nothing and skipped the CAS.
    pub noop_updates: u64,
    /// Read-only operations.
    pub reads: u64,
    /// Roots installed through the freeze hook (multi-object commits);
    /// `0` means every update went through the plain lock-free CAS loop.
    pub frozen_installs: u64,
    /// Backed-out freeze passes: a multi-object commit lost the race to a
    /// concurrent per-key update on one of its roots and had to unfreeze,
    /// rebuild, and retry. High values mean heavy contention on the
    /// multi-shard freeze window.
    pub freeze_retries: u64,
    /// `attempt_hist[k]` = operations that took exactly `k + 1` attempts.
    pub attempt_hist: Vec<u64>,
}

impl Default for StatsSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl StatsSnapshot {
    /// An all-zero snapshot — what backends without counters (the
    /// lock-based baselines) report through
    /// [`crate::api::ConcurrentMap::stats_snapshot`].
    pub fn empty() -> Self {
        StatsSnapshot {
            ops: 0,
            attempts: 0,
            cas_failures: 0,
            noop_updates: 0,
            reads: 0,
            frozen_installs: 0,
            freeze_retries: 0,
            attempt_hist: vec![0; MAX_TRACKED_ATTEMPTS],
        }
    }

    /// Mean number of attempts per update (1.0 = no contention).
    pub fn mean_attempts(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.attempts as f64 / self.ops as f64
        }
    }

    /// Fraction of updates that committed on the first try.
    pub fn first_try_rate(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.attempt_hist[0] as f64 / self.ops as f64
        }
    }
}

/// Shared, thread-safe transfer accounting: bytes sent and received over
/// some channel (a client connection, a replication stream).
///
/// Like [`UcStats`], the counters are monotonic relaxed atomics —
/// diagnostics, not synchronization. The replication layer uses a block
/// of these to prove that snapshot-diff catch-up moves O(changes) bytes
/// while a full resync moves O(n).
#[derive(Debug, Default)]
pub struct ByteCounters {
    sent: CachePadded<AtomicU64>,
    received: CachePadded<AtomicU64>,
}

impl ByteCounters {
    /// Creates a zeroed counter block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` bytes written to the channel.
    pub fn add_sent(&self, n: u64) {
        self.sent.fetch_add(n, Relaxed);
    }

    /// Records `n` bytes read from the channel.
    pub fn add_received(&self, n: u64) {
        self.received.fetch_add(n, Relaxed);
    }

    /// Takes a consistent-enough copy of both counters.
    pub fn snapshot(&self) -> ByteCountersSnapshot {
        ByteCountersSnapshot {
            sent: self.sent.load(Relaxed),
            received: self.received.load(Relaxed),
        }
    }
}

/// Plain-data copy of [`ByteCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ByteCountersSnapshot {
    /// Bytes written to the channel so far.
    pub sent: u64,
    /// Bytes read from the channel so far.
    pub received: u64,
}

impl ByteCountersSnapshot {
    /// Bytes moved in either direction.
    pub fn total(&self) -> u64 {
        self.sent + self.received
    }

    /// Traffic accumulated since an earlier snapshot of the same block.
    pub fn since(&self, earlier: &ByteCountersSnapshot) -> ByteCountersSnapshot {
        ByteCountersSnapshot {
            sent: self.sent - earlier.sent,
            received: self.received - earlier.received,
        }
    }
}

/// Shared, thread-safe storage-IO accounting: appends, fsyncs, and bytes
/// moved to and from a durable medium (the epoch log's segment files).
///
/// Like [`ByteCounters`], the counters are monotonic relaxed atomics —
/// diagnostics, not synchronization. The durability layer uses a block
/// of these to make its fsync discipline observable: a healthy primary
/// shows `fsyncs` tracking `appends` (one sync per published epoch when
/// the log is configured durable) and `bytes_read` staying near zero
/// outside recovery and point-in-time restores.
#[derive(Debug, Default)]
pub struct IoCounters {
    appends: CachePadded<AtomicU64>,
    fsyncs: CachePadded<AtomicU64>,
    bytes_written: CachePadded<AtomicU64>,
    bytes_read: CachePadded<AtomicU64>,
}

impl IoCounters {
    /// Creates a zeroed counter block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one appended record (a diff record or one checkpoint page).
    pub fn record_append(&self) {
        self.appends.fetch_add(1, Relaxed);
    }

    /// Records one `fsync`/`fdatasync` round trip to the medium.
    pub fn record_fsync(&self) {
        self.fsyncs.fetch_add(1, Relaxed);
    }

    /// Records `n` bytes written to the medium.
    pub fn add_written(&self, n: u64) {
        self.bytes_written.fetch_add(n, Relaxed);
    }

    /// Records `n` bytes read back from the medium (recovery, replay,
    /// point-in-time restore).
    pub fn add_read(&self, n: u64) {
        self.bytes_read.fetch_add(n, Relaxed);
    }

    /// Takes a consistent-enough copy of all four counters.
    pub fn snapshot(&self) -> IoCountersSnapshot {
        IoCountersSnapshot {
            appends: self.appends.load(Relaxed),
            fsyncs: self.fsyncs.load(Relaxed),
            bytes_written: self.bytes_written.load(Relaxed),
            bytes_read: self.bytes_read.load(Relaxed),
        }
    }
}

/// Plain-data copy of [`IoCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoCountersSnapshot {
    /// Records appended to the durable medium.
    pub appends: u64,
    /// Completed `fsync`/`fdatasync` calls.
    pub fsyncs: u64,
    /// Bytes written to the medium.
    pub bytes_written: u64,
    /// Bytes read back from the medium.
    pub bytes_read: u64,
}

impl IoCountersSnapshot {
    /// IO accumulated since an earlier snapshot of the same block.
    pub fn since(&self, earlier: &IoCountersSnapshot) -> IoCountersSnapshot {
        IoCountersSnapshot {
            appends: self.appends - earlier.appends,
            fsyncs: self.fsyncs - earlier.fsyncs,
            bytes_written: self.bytes_written - earlier.bytes_written,
            bytes_read: self.bytes_read - earlier.bytes_read,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_counters_accumulate_and_delta() {
        let c = IoCounters::new();
        c.record_append();
        c.record_fsync();
        c.add_written(128);
        let first = c.snapshot();
        assert_eq!(
            first,
            IoCountersSnapshot {
                appends: 1,
                fsyncs: 1,
                bytes_written: 128,
                bytes_read: 0
            }
        );
        c.record_append();
        c.add_written(64);
        c.add_read(1024);
        let delta = c.snapshot().since(&first);
        assert_eq!(delta.appends, 1);
        assert_eq!(delta.fsyncs, 0);
        assert_eq!(delta.bytes_written, 64);
        assert_eq!(delta.bytes_read, 1024);
    }

    #[test]
    fn byte_counters_accumulate_and_delta() {
        let c = ByteCounters::new();
        c.add_sent(10);
        c.add_received(100);
        let first = c.snapshot();
        assert_eq!(first.sent, 10);
        assert_eq!(first.received, 100);
        assert_eq!(first.total(), 110);
        c.add_sent(5);
        c.add_received(50);
        let delta = c.snapshot().since(&first);
        assert_eq!(
            delta,
            ByteCountersSnapshot {
                sent: 5,
                received: 50
            }
        );
    }

    #[test]
    fn record_update_populates_counters() {
        let s = UcStats::new();
        s.record_update(1, false);
        s.record_update(3, false);
        s.record_update(1, true);
        let snap = s.snapshot();
        assert_eq!(snap.ops, 3);
        assert_eq!(snap.attempts, 5);
        assert_eq!(snap.cas_failures, 2);
        assert_eq!(snap.noop_updates, 1);
        assert_eq!(snap.attempt_hist[0], 2);
        assert_eq!(snap.attempt_hist[2], 1);
        assert!((snap.mean_attempts() - 5.0 / 3.0).abs() < 1e-12);
        assert!((snap.first_try_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn huge_attempt_counts_clamp_to_last_bucket() {
        let s = UcStats::new();
        s.record_update(10_000, false);
        let snap = s.snapshot();
        assert_eq!(snap.attempt_hist[MAX_TRACKED_ATTEMPTS - 1], 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = UcStats::new();
        s.record_update(2, false);
        s.record_read();
        s.record_frozen_install();
        s.record_freeze_retry();
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.ops, 0);
        assert_eq!(snap.attempts, 0);
        assert_eq!(snap.reads, 0);
        assert_eq!(snap.frozen_installs, 0);
        assert_eq!(snap.freeze_retries, 0);
        assert!(snap.attempt_hist.iter().all(|&c| c == 0));
    }

    #[test]
    fn freeze_retries_accumulate() {
        let s = UcStats::new();
        s.record_freeze_retry();
        s.record_freeze_retry();
        let snap = s.snapshot();
        assert_eq!(snap.freeze_retries, 2);
        // Freeze retries are not CAS-loop ops and must not leak into the
        // attempt accounting.
        assert_eq!(snap.ops, 0);
        assert_eq!(snap.attempts, 0);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let s = UcStats::new();
        std::thread::scope(|sc| {
            for _ in 0..4 {
                sc.spawn(|| {
                    for _ in 0..1000 {
                        s.record_update(2, false);
                    }
                });
            }
        });
        let snap = s.snapshot();
        assert_eq!(snap.ops, 4000);
        assert_eq!(snap.attempts, 8000);
        assert_eq!(snap.cas_failures, 4000);
    }
}
