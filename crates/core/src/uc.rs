//! The path-copying universal construction (Section 2 of the paper).
//!
//! [`PathCopyUc`] turns any *persistent* sequential data structure `S`
//! (one whose update operations build a new version sharing structure
//! with the old, instead of mutating in place) into a lock-free
//! linearizable concurrent object:
//!
//! * **queries** ([`PathCopyUc::read`]) load the current version from the
//!   [`VersionCell`] and run sequentially on that immutable snapshot;
//! * **updates** ([`PathCopyUc::update`]) loop: load the current version,
//!   apply the sequential update by path copying, try to CAS the root to
//!   the new version, and retry on failure.
//!
//! Successful updates are serialized by the CAS — and yet, as the paper
//! shows, the construction scales, because failed attempts leave the
//! retrying process's cache warm and the winning update replaced (in
//! expectation) no more than 2 nodes on any other process's search path.
//!
//! An update closure may also report that the operation does not change
//! the structure (e.g. inserting a key that is already present) by
//! returning [`Update::Keep`]; such operations complete **without a CAS**,
//! which is why the paper's Random workload (§4.2) behaves partly like a
//! read-only workload and scales better than Batch.

use std::sync::Arc;

use crate::backoff::BackoffPolicy;
use crate::stats::UcStats;
use crate::version::VersionCell;

/// Result of applying a sequential update to a snapshot.
#[derive(Debug)]
pub enum Update<S, R> {
    /// The operation built a new version; install it and return `R`.
    Replace(S, R),
    /// The operation changes nothing; return `R` without a CAS.
    Keep(R),
}

/// Outcome details of a completed update, for instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateReport<R> {
    /// The operation's return value.
    pub result: R,
    /// Total attempts, including the successful one.
    pub attempts: u64,
    /// Whether the final attempt skipped the CAS ([`Update::Keep`]).
    pub was_noop: bool,
}

/// The lock-free universal construction over a persistent structure `S`.
///
/// # Examples
///
/// A concurrent counter-with-history in five lines (any persistent
/// structure works the same way — see `pathcopy-concurrent` for trees):
///
/// ```
/// use pathcopy_core::{PathCopyUc, Update};
///
/// let uc = PathCopyUc::new(0u64);
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|| {
///             for _ in 0..100 {
///                 uc.update(|&n| Update::Replace(n + 1, ()));
///             }
///         });
///     }
/// });
/// assert_eq!(uc.read(|&n| n), 400);
/// ```
pub struct PathCopyUc<S> {
    root: VersionCell<S>,
    backoff: BackoffPolicy,
    stats: Arc<UcStats>,
}

impl<S> std::fmt::Debug for PathCopyUc<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathCopyUc")
            .field("backoff", &self.backoff)
            .finish_non_exhaustive()
    }
}

impl<S: Send + Sync> PathCopyUc<S> {
    /// Wraps an initial version of the persistent structure.
    pub fn new(initial: S) -> Self {
        Self::with_backoff(initial, BackoffPolicy::None)
    }

    /// Wraps an initial version with an explicit retry backoff policy.
    pub fn with_backoff(initial: S, backoff: BackoffPolicy) -> Self {
        PathCopyUc {
            root: VersionCell::new(initial),
            backoff,
            stats: Arc::new(UcStats::new()),
        }
    }

    /// Returns a snapshot of the current version.
    ///
    /// The snapshot is immutable and stays valid forever; iterating it,
    /// running queries on it, or stashing it for later "time-travel" reads
    /// never blocks or is blocked by writers.
    pub fn snapshot(&self) -> Arc<S> {
        self.root.load()
    }

    /// Runs a read-only operation on the current version.
    pub fn read<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        self.stats.record_read();
        f(&self.root.load())
    }

    /// Runs a modifying operation: the paper's load / path-copy / CAS loop.
    ///
    /// `f` is called with the current version and must either build a new
    /// version ([`Update::Replace`]) or declare the operation a no-op
    /// ([`Update::Keep`]). `f` may run several times (once per attempt),
    /// so it must be deterministic given the snapshot it sees.
    pub fn update<R>(&self, f: impl FnMut(&S) -> Update<S, R>) -> R {
        self.update_reported(f).result
    }

    /// Like [`update`](Self::update) but also reports attempt counts.
    pub fn update_reported<R>(&self, mut f: impl FnMut(&S) -> Update<S, R>) -> UpdateReport<R> {
        let mut backoff = self.backoff.start();
        let mut current = self.root.load();
        let mut attempts = 1u64;
        loop {
            match f(&current) {
                Update::Keep(result) => {
                    self.stats.record_update(attempts, true);
                    return UpdateReport {
                        result,
                        attempts,
                        was_noop: true,
                    };
                }
                Update::Replace(new_version, result) => {
                    match self.root.compare_exchange(&current, Arc::new(new_version)) {
                        Ok(()) => {
                            self.stats.record_update(attempts, false);
                            return UpdateReport {
                                result,
                                attempts,
                                was_noop: false,
                            };
                        }
                        Err(race) => {
                            // Someone else committed first: retry on the
                            // version their CAS installed (handed to us by
                            // the failed CAS, saving a reload).
                            current = race.current;
                            attempts += 1;
                            backoff.wait();
                        }
                    }
                }
            }
        }
    }

    /// Performs a single attempt without retrying; `Err` carries the fresh
    /// version on CAS failure. Exposed for tests and for harnesses that
    /// want custom retry loops.
    pub fn try_update_once<R>(
        &self,
        current: &Arc<S>,
        f: impl FnOnce(&S) -> Update<S, R>,
    ) -> Result<(R, bool), Arc<S>> {
        match f(current) {
            Update::Keep(r) => Ok((r, true)),
            Update::Replace(new_version, r) => {
                match self.root.compare_exchange(current, Arc::new(new_version)) {
                    Ok(()) => Ok((r, false)),
                    Err(race) => Err(race.current),
                }
            }
        }
    }

    /// Freezes the root at version `expected` for a coordinated
    /// multi-object install (e.g. a cross-shard batch transaction that
    /// must flip several UC roots atomically).
    ///
    /// While frozen, concurrent reads of this object briefly spin,
    /// concurrent updates stall in their CAS retry, and
    /// [`is_current_version`](Self::is_current_version) reports `false`
    /// — so no observer can see any root of the commit between its first
    /// freeze and its last install. On failure (the root moved since
    /// `expected` was loaded) returns a snapshot of the actual current
    /// version so the caller can rebuild and retry.
    ///
    /// Callers freezing several objects must acquire them in a global
    /// order and exclude rival freezers (e.g. via per-object commit
    /// locks); see [`VersionCell::try_freeze`](crate::VersionCell::try_freeze).
    pub fn try_freeze_root(&self, expected: &Arc<S>) -> Result<(), Arc<S>> {
        self.root.try_freeze(expected)
    }

    /// Publishes `new` as the current version and releases the freeze in
    /// one atomic step. Must only be called after a successful
    /// [`try_freeze_root`](Self::try_freeze_root). Counted in
    /// [`stats`](Self::stats) as a frozen install, not as a CAS-loop op.
    pub fn install_frozen_root(&self, new: S) {
        self.root.install_and_unfreeze(Arc::new(new));
        self.stats.record_frozen_install();
    }

    /// Releases a freeze without installing anything (the commit turned
    /// out not to modify this object, or is backing out).
    pub fn unfreeze_root(&self) {
        self.root.unfreeze();
    }

    /// `true` if `version` is (pointer-)identical to the current version.
    ///
    /// Because committed updates always install freshly allocated
    /// versions, a held snapshot that is still current was never replaced
    /// in between — the basis for optimistic multi-object validation
    /// (see `pathcopy_concurrent`'s sharded snapshots).
    pub fn is_current_version(&self, version: &Arc<S>) -> bool {
        self.root.is_current(version)
    }

    /// Unconditionally replaces the current version (not linearizable with
    /// respect to concurrent updates; intended for setup/reset phases).
    pub fn replace_version(&self, new_version: S) {
        self.root.store(Arc::new(new_version));
    }

    /// Shared statistics block for this object.
    pub fn stats(&self) -> &Arc<UcStats> {
        &self.stats
    }

    /// The backoff policy updates use between failed attempts.
    pub fn backoff_policy(&self) -> BackoffPolicy {
        self.backoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// A tiny persistent "structure": an immutable sorted set, cloned on
    /// write. Deliberately naive — the UC does not care how the new
    /// version is produced.
    #[derive(Clone, Default)]
    struct PSet(BTreeSet<i64>);

    impl PSet {
        fn insert(&self, k: i64) -> Option<PSet> {
            if self.0.contains(&k) {
                None
            } else {
                let mut next = self.0.clone();
                next.insert(k);
                Some(PSet(next))
            }
        }
        fn remove(&self, k: i64) -> Option<PSet> {
            if self.0.contains(&k) {
                let mut next = self.0.clone();
                next.remove(&k);
                Some(PSet(next))
            } else {
                None
            }
        }
    }

    fn insert(uc: &PathCopyUc<PSet>, k: i64) -> bool {
        uc.update(|s| match s.insert(k) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        })
    }

    fn remove(uc: &PathCopyUc<PSet>, k: i64) -> bool {
        uc.update(|s| match s.remove(k) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        })
    }

    #[test]
    fn sequential_semantics() {
        let uc = PathCopyUc::new(PSet::default());
        assert!(insert(&uc, 5));
        assert!(!insert(&uc, 5));
        assert!(uc.read(|s| s.0.contains(&5)));
        assert!(remove(&uc, 5));
        assert!(!remove(&uc, 5));
        assert!(!uc.read(|s| s.0.contains(&5)));
    }

    #[test]
    fn snapshots_are_immutable() {
        let uc = PathCopyUc::new(PSet::default());
        insert(&uc, 1);
        let snap = uc.snapshot();
        insert(&uc, 2);
        remove(&uc, 1);
        assert!(snap.0.contains(&1));
        assert!(!snap.0.contains(&2));
    }

    #[test]
    fn disjoint_concurrent_inserts_all_land() {
        const THREADS: i64 = 4;
        const PER: i64 = 500;
        let uc = PathCopyUc::new(PSet::default());
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let uc = &uc;
                s.spawn(move || {
                    for i in 0..PER {
                        assert!(insert(uc, t * PER + i));
                    }
                });
            }
        });
        assert_eq!(uc.read(|s| s.0.len()) as i64, THREADS * PER);
    }

    #[test]
    fn noop_updates_skip_cas_and_are_counted() {
        let uc = PathCopyUc::new(PSet::default());
        insert(&uc, 7);
        let report = uc.update_reported(|s| match s.insert(7) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        });
        assert!(!report.result);
        assert!(report.was_noop);
        assert_eq!(report.attempts, 1);
        let snap = uc.stats().snapshot();
        assert_eq!(snap.noop_updates, 1);
    }

    #[test]
    fn contended_updates_report_retries() {
        let uc = PathCopyUc::new(PSet::default());
        let total_attempts = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let uc = &uc;
                let total_attempts = &total_attempts;
                s.spawn(move || {
                    let mut local = 0;
                    for i in 0..200 {
                        let r = uc.update_reported(|set| {
                            Update::Replace(set.insert(t * 1000 + i).unwrap(), ())
                        });
                        local += r.attempts;
                    }
                    total_attempts.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        let snap = uc.stats().snapshot();
        assert_eq!(snap.ops, 800);
        assert_eq!(
            snap.attempts,
            total_attempts.load(std::sync::atomic::Ordering::Relaxed)
        );
        assert_eq!(snap.cas_failures, snap.attempts - snap.ops);
    }

    #[test]
    fn try_update_once_surfaces_races() {
        let uc = PathCopyUc::new(PSet::default());
        let stale = uc.snapshot();
        insert(&uc, 1); // invalidate `stale`
        let err = uc
            .try_update_once(&stale, |s| Update::Replace(s.insert(2).unwrap(), ()))
            .expect_err("CAS on stale snapshot must fail");
        assert!(err.0.contains(&1), "error carries the fresh version");
    }

    #[test]
    fn replace_version_resets_state() {
        let uc = PathCopyUc::new(PSet::default());
        insert(&uc, 1);
        uc.replace_version(PSet::default());
        assert_eq!(uc.read(|s| s.0.len()), 0);
    }
}
