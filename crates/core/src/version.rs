//! The `Root_Ptr` register from the paper: an atomic cell holding the
//! current version of a persistent data structure.
//!
//! The paper (Section 2) stores "a pointer to the current version of the
//! persistent data structure … in a Read/CAS register called `Root_Ptr`".
//! In Java the garbage collector keeps superseded versions alive while
//! readers still use them. In Rust we reproduce that with two mechanisms:
//!
//! * versions are reference counted (`Arc<T>`), which also gives the
//!   structural sharing between versions that path copying relies on;
//! * the cell itself holds a raw pointer obtained from [`Arc::into_raw`],
//!   and readers resolve it to a real `Arc` under an epoch pin
//!   (`crossbeam-epoch`). A writer that displaces a version *defers* the
//!   matching strong-count decrement until every pin that might still be
//!   dereferencing the raw pointer has been released.
//!
//! This is the classic epoch-protected atomic-`Arc` idiom. All operations
//! are lock-free; `load` is additionally wait-free (a single atomic load,
//! an increment, and an epoch pin) — except while a multi-register
//! [freeze](#freezing-multi-register-atomic-installs) window is open on
//! the cell, when it briefly spins.
//!
//! # ABA
//!
//! [`VersionCell::compare_exchange`] takes the expected version as
//! `&Arc<T>`. Because the caller *holds* that `Arc`, its strong count is
//! nonzero, so the allocation cannot be freed and its address cannot be
//! recycled while the CAS is in flight — the ABA problem cannot arise.
//!
//! # Freezing (multi-register atomic installs)
//!
//! A single cell's CAS linearizes updates to *one* register. Composite
//! operations that must install new versions into *several* cells
//! atomically (e.g. a cross-shard batch transaction over sharded UC
//! roots) use the cell's **freeze** protocol: the committer tags the
//! current pointer's low bit ([`VersionCell::try_freeze`]), which
//!
//! * makes every concurrent [`load`](VersionCell::load) spin until the
//!   tag clears, so no reader can observe any frozen register between
//!   the first freeze and the last install — the whole install window
//!   is invisible, which is what makes the multi-register write appear
//!   atomic;
//! * makes every concurrent [`compare_exchange`](VersionCell::compare_exchange)
//!   fail (the expected
//!   pointer is always untagged), so rival single-register writers
//!   cannot slip a version in mid-commit;
//! * makes [`is_current`](VersionCell::is_current) report `false`, so
//!   optimistic multi-register validation never accepts an in-flight
//!   commit as a stable cut.
//!
//! The committer then either publishes a new version and clears the tag
//! in one atomic swap ([`VersionCell::install_and_unfreeze`]) or backs
//! out ([`VersionCell::unfreeze`]). The tag bit is available because an
//! `Arc`'s data pointer follows a two-word header and is therefore
//! always even. Freezing is cooperative: callers that freeze several
//! cells must agree on an acquisition order (and typically hold a
//! commit lock) so that two committers never freeze against each other.

use std::fmt;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use crossbeam_epoch as epoch;

/// Low pointer bit marking a cell frozen by an in-flight multi-register
/// commit. `Arc`'s data pointer sits after a two-`usize` header inside an
/// allocation aligned to at least `usize`, so bit 0 is always free.
const FREEZE_TAG: usize = 1;

fn is_tagged<T>(raw: *mut T) -> bool {
    raw as usize & FREEZE_TAG != 0
}

fn tag<T>(raw: *mut T) -> *mut T {
    (raw as usize | FREEZE_TAG) as *mut T
}

fn untag<T>(raw: *mut T) -> *mut T {
    (raw as usize & !FREEZE_TAG) as *mut T
}

/// An atomic, lock-free cell holding an `Arc<T>` — the `Root_Ptr` register.
///
/// See the [module documentation](self) for the reclamation protocol.
///
/// # Examples
///
/// ```
/// use pathcopy_core::VersionCell;
/// use std::sync::Arc;
///
/// let cell = VersionCell::new(vec![1, 2, 3]);
/// let v0 = cell.load();
/// assert_eq!(*v0, vec![1, 2, 3]);
///
/// // Install a new version derived from the old one.
/// let v1 = Arc::new(vec![1, 2, 3, 4]);
/// cell.compare_exchange(&v0, v1).unwrap();
/// assert_eq!(cell.load().len(), 4);
///
/// // The old snapshot is still intact: persistence in action.
/// assert_eq!(v0.len(), 3);
/// ```
pub struct VersionCell<T> {
    /// Raw pointer produced by `Arc::into_raw`; the cell owns one strong
    /// reference to whatever this points at.
    ptr: AtomicPtr<T>,
}

/// Error returned by a failed [`VersionCell::compare_exchange`].
pub struct CasError<T> {
    /// The version we tried to install, handed back to the caller so the
    /// allocation can be reused or dropped.
    pub proposed: Arc<T>,
    /// A snapshot of the version that was actually current at CAS time.
    pub current: Arc<T>,
}

impl<T> fmt::Debug for CasError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CasError").finish_non_exhaustive()
    }
}

impl<T: Send + Sync> VersionCell<T> {
    /// Creates a cell holding `initial` as the current version.
    pub fn new(initial: T) -> Self {
        Self::from_arc(Arc::new(initial))
    }

    /// Creates a cell from an existing `Arc`.
    pub fn from_arc(initial: Arc<T>) -> Self {
        VersionCell {
            ptr: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
        }
    }

    /// Returns a snapshot of the current version.
    ///
    /// The returned `Arc` stays valid (and immutable) forever, no matter
    /// how many updates are installed afterwards — this is what makes
    /// read-only operations "trivially atomic" in the paper's words.
    ///
    /// While the cell is [frozen](Self::try_freeze) by an in-flight
    /// multi-register commit, `load` briefly spins until the commit
    /// finishes — so a load never observes the pre-commit version after
    /// any register of the commit has been installed.
    pub fn load(&self) -> Arc<T> {
        loop {
            let guard = epoch::pin();
            let raw = self.ptr.load(Ordering::Acquire);
            if is_tagged(raw) {
                // An install window is open; its registers must flip
                // together. Wait it out (it is a handful of CASes long).
                drop(guard);
                std::hint::spin_loop();
                continue;
            }
            // SAFETY: `raw` was produced by `Arc::into_raw`. A writer that
            // displaced it defers the strong-count decrement until after
            // every pin concurrent with its CAS is released; our pin
            // predates any such reclamation, so the allocation is alive
            // and its count >= 1.
            unsafe { Arc::increment_strong_count(raw) };
            drop(guard);
            // SAFETY: we just minted a strong reference for ourselves.
            return unsafe { Arc::from_raw(raw) };
        }
    }

    /// Atomically replaces `expected` with `new`.
    ///
    /// On success the displaced version's strong count is decremented once
    /// the epoch allows. On failure, returns both the proposed version and
    /// a snapshot of the actual current version, so the caller can retry
    /// without an extra [`load`](Self::load).
    pub fn compare_exchange(&self, expected: &Arc<T>, new: Arc<T>) -> Result<(), CasError<T>> {
        let expected_raw = Arc::as_ptr(expected) as *mut T;
        let new_raw = Arc::into_raw(new) as *mut T;
        let guard = epoch::pin();
        match self
            .ptr
            .compare_exchange(expected_raw, new_raw, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(displaced) => {
                // SAFETY: `displaced` carries the strong reference the cell
                // owned. Readers may still hold the raw pointer, but only
                // under pins concurrent with this guard; the deferred drop
                // runs after all of them unpin.
                unsafe {
                    guard.defer_unchecked(move || drop(Arc::from_raw(displaced)));
                }
                Ok(())
            }
            Err(actual) => {
                // Take back ownership of the version we failed to install.
                // SAFETY: we produced `new_raw` above and the CAS did not
                // consume it.
                let proposed = unsafe { Arc::from_raw(new_raw) };
                let current = if is_tagged(actual) {
                    // A multi-register commit is mid-install; retrying
                    // against the frozen version would just fail again, so
                    // wait for the commit and hand back the post-commit
                    // version.
                    drop(guard);
                    self.load()
                } else {
                    // SAFETY: same argument as in `load`; we are still
                    // pinned, so `actual` cannot have been reclaimed.
                    unsafe { Arc::increment_strong_count(actual) };
                    // SAFETY: we just minted a strong reference for
                    // ourselves.
                    unsafe { Arc::from_raw(actual) }
                };
                Err(CasError { proposed, current })
            }
        }
    }

    /// Freezes the cell at version `expected` for a multi-register
    /// atomic install: tags the pointer so concurrent [`load`](Self::load)s
    /// wait, CASes fail, and [`is_current`](Self::is_current) reports
    /// `false` until [`install_and_unfreeze`](Self::install_and_unfreeze)
    /// or [`unfreeze`](Self::unfreeze) closes the window.
    ///
    /// Fails (returning a snapshot of the actual current version) if the
    /// cell no longer holds `expected`. Callers freezing several cells
    /// must order their acquisitions and exclude rival freezers (e.g. via
    /// commit locks) — see the [module docs](self).
    pub fn try_freeze(&self, expected: &Arc<T>) -> Result<(), Arc<T>> {
        let expected_raw = Arc::as_ptr(expected) as *mut T;
        match self.ptr.compare_exchange(
            expected_raw,
            tag(expected_raw),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(()),
            // `load` spins past any tag, so this also waits out a rival
            // freezer (which ordered-acquisition callers never produce).
            Err(_) => Err(self.load()),
        }
    }

    /// Publishes `new` and clears the freeze tag in one atomic swap.
    ///
    /// Must only be called by the committer that froze the cell; the
    /// displaced (frozen) version's strong count is decremented once the
    /// epoch allows, exactly as for a successful CAS.
    pub fn install_and_unfreeze(&self, new: Arc<T>) {
        let new_raw = Arc::into_raw(new) as *mut T;
        let guard = epoch::pin();
        let displaced = self.ptr.swap(new_raw, Ordering::AcqRel);
        debug_assert!(
            is_tagged(displaced),
            "install_and_unfreeze on unfrozen cell"
        );
        let displaced = untag(displaced);
        // SAFETY: `displaced` (untagged) carries the strong reference the
        // cell owned; readers still holding the raw pointer do so only
        // under pins concurrent with this guard.
        unsafe {
            guard.defer_unchecked(move || drop(Arc::from_raw(displaced)));
        }
    }

    /// Clears the freeze tag without changing the version (a committer
    /// backing out, or one whose batch turned out to be read-only on this
    /// register). Must only be called by the committer that froze the cell.
    pub fn unfreeze(&self) {
        let raw = self.ptr.load(Ordering::Relaxed);
        debug_assert!(is_tagged(raw), "unfreeze on unfrozen cell");
        // While frozen, the committer is the only possible writer (CASes
        // fail, rival freezers are excluded by protocol), so a plain store
        // is race-free. No strong counts change: same allocation.
        self.ptr.store(untag(raw), Ordering::Release);
    }

    /// Unconditionally installs `new`, returning a snapshot of the
    /// displaced version. Waits out an in-flight freeze, so it never
    /// tears a multi-register commit.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let new_raw = Arc::into_raw(new) as *mut T;
        loop {
            let guard = epoch::pin();
            let expected = self.ptr.load(Ordering::Acquire);
            if is_tagged(expected) {
                drop(guard);
                std::hint::spin_loop();
                continue;
            }
            if self
                .ptr
                .compare_exchange_weak(expected, new_raw, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            let displaced = expected;
            // Hand one strong reference to the caller...
            // SAFETY: pinned, so `displaced` is alive (see `load`).
            unsafe { Arc::increment_strong_count(displaced) };
            // SAFETY: we just minted a strong reference for ourselves.
            let snapshot = unsafe { Arc::from_raw(displaced) };
            // ...and defer releasing the reference the cell owned.
            // SAFETY: readers still holding the raw pointer do so only
            // under pins concurrent with this guard; the deferred drop
            // runs after all of them unpin.
            unsafe {
                guard.defer_unchecked(move || drop(Arc::from_raw(displaced)));
            }
            return snapshot;
        }
    }

    /// Unconditionally installs `new`.
    pub fn store(&self, new: Arc<T>) {
        drop(self.swap(new));
    }

    /// Returns `true` if `version` is (pointer-)identical to the current
    /// version. Useful for optimistic validation.
    ///
    /// A [frozen](Self::try_freeze) cell is never "current": an install
    /// window is open, so optimistic validators must not accept its
    /// (about-to-be-replaced) version as part of a stable cut.
    pub fn is_current(&self, version: &Arc<T>) -> bool {
        std::ptr::eq(self.ptr.load(Ordering::Acquire), Arc::as_ptr(version))
    }
}

impl<T> Drop for VersionCell<T> {
    fn drop(&mut self) {
        // `&mut self`: no concurrent readers or writers exist, so the
        // cell's strong reference can be released immediately. (A leaked
        // freeze tag, impossible outside a panicking committer, is masked
        // so the Arc is still released.)
        let raw = untag(*self.ptr.get_mut());
        // SAFETY: the cell owned one strong reference to `raw`.
        drop(unsafe { Arc::from_raw(raw) });
    }
}

impl<T: Send + Sync + fmt::Debug> fmt::Debug for VersionCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("VersionCell").field(&self.load()).finish()
    }
}

// SAFETY: the cell hands out `Arc<T>` snapshots across threads, so it
// needs exactly the bounds `Arc<T>` itself needs to be `Send + Sync`.
unsafe impl<T: Send + Sync> Send for VersionCell<T> {}
// SAFETY: same argument as for `Send` above — shared access only ever
// yields `Arc<T>` snapshots.
unsafe impl<T: Send + Sync> Sync for VersionCell<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

    #[test]
    fn load_returns_initial() {
        let cell = VersionCell::new(42u32);
        assert_eq!(*cell.load(), 42);
    }

    #[test]
    fn cas_success_installs_new_version() {
        let cell = VersionCell::new(1u32);
        let cur = cell.load();
        cell.compare_exchange(&cur, Arc::new(2)).unwrap();
        assert_eq!(*cell.load(), 2);
        // The old snapshot is unaffected.
        assert_eq!(*cur, 1);
    }

    #[test]
    fn cas_failure_returns_proposed_and_current() {
        let cell = VersionCell::new(1u32);
        let stale = cell.load();
        cell.compare_exchange(&stale, Arc::new(2)).unwrap();
        let err = cell
            .compare_exchange(&stale, Arc::new(3))
            .expect_err("stale CAS must fail");
        assert_eq!(*err.proposed, 3);
        assert_eq!(*err.current, 2);
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn is_current_tracks_installs() {
        let cell = VersionCell::new(7u32);
        let v0 = cell.load();
        assert!(cell.is_current(&v0));
        cell.store(Arc::new(8));
        assert!(!cell.is_current(&v0));
        let v1 = cell.load();
        assert!(cell.is_current(&v1));
    }

    #[test]
    fn swap_returns_displaced() {
        let cell = VersionCell::new(String::from("a"));
        let old = cell.swap(Arc::new(String::from("b")));
        assert_eq!(*old, "a");
        assert_eq!(*cell.load(), "b");
    }

    /// Value that counts live instances, to detect leaks and double frees.
    struct Counted(&'static AtomicUsize);
    impl Counted {
        fn new(c: &'static AtomicUsize) -> Self {
            c.fetch_add(1, Relaxed);
            Counted(c)
        }
    }
    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Relaxed);
        }
    }

    #[test]
    fn versions_are_reclaimed_not_leaked() {
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        {
            let cell = VersionCell::new(Counted::new(&LIVE));
            for _ in 0..1000 {
                let cur = cell.load();
                cell.compare_exchange(&cur, Arc::new(Counted::new(&LIVE)))
                    .unwrap();
            }
        }
        // Reclamation is deferred through the process-global epoch
        // collector, which other tests share; keep nudging it until all
        // instances are gone (bounded by a deadline so a genuine leak
        // still fails the test).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while LIVE.load(Relaxed) != 0 {
            crossbeam_epoch::pin().flush();
            assert!(
                std::time::Instant::now() < deadline,
                "live versions leaked: {}",
                LIVE.load(Relaxed)
            );
        }
    }

    #[test]
    fn concurrent_cas_exactly_one_winner_per_round() {
        use std::sync::atomic::AtomicU64;
        const THREADS: usize = 4;
        const OPS: u64 = 2000;

        let cell = VersionCell::new(0u64);
        let successes = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    let mut done = 0;
                    while done < OPS {
                        let cur = cell.load();
                        let next = Arc::new(*cur + 1);
                        if cell.compare_exchange(&cur, next).is_ok() {
                            successes.fetch_add(1, Relaxed);
                            done += 1;
                        }
                    }
                });
            }
        });
        // Every success incremented the value exactly once: the final value
        // equals the number of successful CASes, i.e. no lost updates.
        assert_eq!(*cell.load(), successes.load(Relaxed));
        assert_eq!(*cell.load(), (THREADS as u64) * OPS);
    }

    #[test]
    fn freeze_blocks_cas_and_install_publishes() {
        let cell = VersionCell::new(1u32);
        let frozen = cell.load();
        cell.try_freeze(&frozen).unwrap();
        // While frozen: not current, and rival CASes must fail.
        assert!(!cell.is_current(&frozen));
        // (CAS against the frozen version: expected pointer is untagged,
        // cell holds the tagged pointer, so the exchange fails. The error
        // path waits for the unfreeze, so run the committer concurrently.)
        std::thread::scope(|s| {
            let committer = s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                cell.install_and_unfreeze(Arc::new(2));
            });
            let err = cell
                .compare_exchange(&frozen, Arc::new(99))
                .expect_err("CAS during freeze window must fail");
            // The error surfaced only after the install: it carries the
            // post-commit version, never the frozen one.
            assert_eq!(*err.current, 2);
            committer.join().unwrap();
        });
        assert_eq!(*cell.load(), 2);
        let now = cell.load();
        assert!(cell.is_current(&now));
    }

    #[test]
    fn try_freeze_fails_on_stale_version() {
        let cell = VersionCell::new(1u32);
        let stale = cell.load();
        cell.store(Arc::new(2));
        let current = cell
            .try_freeze(&stale)
            .expect_err("freeze on stale version must fail");
        assert_eq!(*current, 2);
        // The failed freeze left no tag behind.
        let now = cell.load();
        assert!(cell.is_current(&now));
    }

    #[test]
    fn unfreeze_backs_out_without_changing_version() {
        let cell = VersionCell::new(7u32);
        let frozen = cell.load();
        cell.try_freeze(&frozen).unwrap();
        cell.unfreeze();
        assert!(cell.is_current(&frozen));
        assert_eq!(*cell.load(), 7);
    }

    #[test]
    fn loads_never_observe_pre_install_values_after_unfreeze_of_any_peer() {
        // Two cells committed together: freeze both, install both. A
        // reader that sees the new value in one cell must never then see
        // the old value in the other — loads spin during the window.
        let a = VersionCell::new(0u64);
        let b = VersionCell::new(0u64);
        let rounds = 2_000u64;
        std::thread::scope(|s| {
            s.spawn(|| {
                for r in 1..=rounds {
                    let fa = a.load();
                    let fb = b.load();
                    a.try_freeze(&fa).unwrap();
                    b.try_freeze(&fb).unwrap();
                    a.install_and_unfreeze(Arc::new(r));
                    b.install_and_unfreeze(Arc::new(r));
                }
            });
            s.spawn(|| {
                loop {
                    // Load in install order: a first, then b. With plain
                    // staggered stores this observes a ahead of b (a is
                    // installed first); with the freeze window, the load
                    // of b spins until b's install lands, so b can never
                    // be behind a value of a we already saw.
                    let va = *a.load();
                    let vb = *b.load();
                    assert!(vb >= va, "torn multi-cell commit observed: a={va} > b={vb}");
                    if va == rounds {
                        break;
                    }
                }
            });
        });
    }

    #[test]
    fn concurrent_readers_see_monotonic_values() {
        let cell = VersionCell::new(0u64);
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for i in 1..=10_000u64 {
                    cell.store(Arc::new(i));
                }
            });
            for _ in 0..2 {
                s.spawn(|| {
                    let mut last = 0;
                    for _ in 0..10_000 {
                        let v = *cell.load();
                        assert!(v >= last, "versions went backwards: {v} < {last}");
                        last = v;
                    }
                });
            }
            writer.join().unwrap();
        });
    }
}
