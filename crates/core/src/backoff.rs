//! Retry backoff policies for the update loop.
//!
//! The paper's construction retries immediately after a failed CAS — the
//! whole point of the analysis is that an *immediate* retry runs mostly
//! from the process's warm cache. Backoff is therefore **off by default**
//! ([`BackoffPolicy::None`]), but the ablation benchmarks (`ablations
//! --backoff`) measure what spinning or yielding between attempts does to
//! the scaling curve.

use std::num::NonZeroU32;

/// What to do between a failed CAS and the next attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BackoffPolicy {
    /// Retry immediately (the paper's behaviour).
    #[default]
    None,
    /// Exponential spinning: attempt `k` spins `min(2^k, 2^limit)` times.
    ExponentialSpin {
        /// Cap exponent: the longest spin is `2^limit` pause instructions.
        limit: u32,
    },
    /// Spin a fixed number of pause instructions between attempts.
    FixedSpin {
        /// Number of pause instructions per failed attempt.
        spins: NonZeroU32,
    },
    /// Yield the OS thread between attempts. Relevant when the system is
    /// oversubscribed (more worker threads than hardware threads).
    Yield,
}

impl BackoffPolicy {
    /// Convenience constructor for [`BackoffPolicy::ExponentialSpin`] with
    /// the conventional cap of `2^10` spins.
    pub fn exponential() -> Self {
        BackoffPolicy::ExponentialSpin { limit: 10 }
    }

    /// Creates the per-operation state for this policy.
    pub fn start(self) -> Backoff {
        Backoff {
            policy: self,
            failures: 0,
        }
    }
}

/// Per-operation backoff state; created once per high-level operation and
/// consulted after every failed attempt.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: BackoffPolicy,
    failures: u32,
}

impl Backoff {
    /// Records a failed attempt and waits according to the policy.
    pub fn wait(&mut self) {
        self.failures = self.failures.saturating_add(1);
        match self.policy {
            BackoffPolicy::None => {}
            BackoffPolicy::ExponentialSpin { limit } => {
                let exp = self.failures.min(limit);
                for _ in 0..(1u64 << exp) {
                    std::hint::spin_loop();
                }
            }
            BackoffPolicy::FixedSpin { spins } => {
                for _ in 0..spins.get() {
                    std::hint::spin_loop();
                }
            }
            BackoffPolicy::Yield => std::thread::yield_now(),
        }
    }

    /// Number of failures recorded so far in this operation.
    pub fn failures(&self) -> u32 {
        self.failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_none() {
        assert_eq!(BackoffPolicy::default(), BackoffPolicy::None);
    }

    #[test]
    fn wait_counts_failures() {
        let mut b = BackoffPolicy::None.start();
        for _ in 0..5 {
            b.wait();
        }
        assert_eq!(b.failures(), 5);
    }

    #[test]
    fn exponential_spin_terminates_at_cap() {
        let mut b = BackoffPolicy::ExponentialSpin { limit: 3 }.start();
        for _ in 0..40 {
            b.wait(); // must not overflow the shift even after many failures
        }
        assert_eq!(b.failures(), 40);
    }

    #[test]
    fn fixed_and_yield_terminate() {
        let mut b = BackoffPolicy::FixedSpin {
            spins: NonZeroU32::new(16).unwrap(),
        }
        .start();
        b.wait();
        let mut y = BackoffPolicy::Yield.start();
        y.wait();
        assert_eq!(y.failures(), 1);
    }
}
