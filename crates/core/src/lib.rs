//! # pathcopy-core
//!
//! The universal construction (UC) from *Unexpected Scaling in Path
//! Copying Trees* (Kokorin, Fedorov, Brown, Aksenov — PPoPP 2023,
//! arXiv:2212.00521), plus the lock-based baselines it is compared
//! against.
//!
//! The construction is deliberately simple:
//!
//! 1. a [`VersionCell`] (the paper's `Root_Ptr` read/CAS register) holds
//!    the current version of a persistent data structure;
//! 2. queries load the current version and run on the immutable snapshot;
//! 3. updates load the current version, build a new version by **path
//!    copying**, and CAS the root — retrying from scratch on failure.
//!
//! The result is lock-free and linearizable. The paper's surprise is that
//! it also *scales* on write-heavy workloads, because a failed attempt
//! warms the retrying process's private cache and the winning update
//! invalidated, in expectation, at most 2 nodes on the retried search
//! path. See `pathcopy-sim` for the executable form of that argument and
//! `pathcopy-concurrent` for ready-made tree front-ends.
//!
//! ## Crate map
//!
//! * [`version`] — `VersionCell<T>`: epoch-protected atomic `Arc` cell.
//! * [`uc`] — `PathCopyUc<S>`: the retrying load/copy/CAS loop.
//! * [`lock_uc`] — `MutexUc`, `RwLockUc`, `SeqUc` baselines.
//! * [`backoff`] — retry backoff policies (ablation; the paper uses none).
//! * [`stats`] — attempt/retry counters used to validate the model.
//! * [`api`] — the unified `ConcurrentMap`/`ConcurrentSet`/`Snapshottable`
//!   trait family every front-end implements.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod backoff;
pub mod lock_uc;
pub mod stats;
pub mod uc;
pub mod version;

pub use api::{
    ConcurrentMap, ConcurrentSet, DiffEntry, MapSnapshot, SetDiffEntry, SetSnapshot, Snapshottable,
};
pub use backoff::{Backoff, BackoffPolicy};
pub use lock_uc::{MutexUc, RwLockUc, SeqUc};
pub use stats::{
    ByteCounters, ByteCountersSnapshot, IoCounters, IoCountersSnapshot, StatsSnapshot, UcStats,
};
pub use uc::{PathCopyUc, Update, UpdateReport};
pub use version::{CasError, VersionCell};
