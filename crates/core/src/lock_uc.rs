//! Lock-based universal constructions — the baselines from the paper's
//! introduction ("The simplest approach uses locks that protect a
//! sequential data structure and allow only one process to access it at a
//! time").
//!
//! Both wrappers expose the *same* [`Update`]-closure interface as
//! [`PathCopyUc`](crate::PathCopyUc), and both operate on the same
//! persistent structures, so benchmark comparisons isolate the
//! synchronization strategy (global lock vs. root CAS) rather than the
//! data-structure implementation.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::uc::Update;

/// Universal construction with one global mutex: every operation, read or
/// write, takes the lock. Blocking; the paper's strawman.
#[derive(Debug)]
pub struct MutexUc<S> {
    state: Mutex<Arc<S>>,
}

impl<S: Send + Sync> MutexUc<S> {
    /// Wraps an initial version.
    pub fn new(initial: S) -> Self {
        MutexUc {
            state: Mutex::new(Arc::new(initial)),
        }
    }

    /// Runs a read-only operation under the lock.
    pub fn read<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        let guard = self.state.lock();
        f(&guard)
    }

    /// Returns a snapshot of the current version. Because versions are
    /// immutable, the snapshot stays valid after the lock is released.
    pub fn snapshot(&self) -> Arc<S> {
        self.state.lock().clone()
    }

    /// Runs a modifying operation under the lock. Never retries: the lock
    /// serializes writers, so the first attempt always commits.
    pub fn update<R>(&self, f: impl FnOnce(&S) -> Update<S, R>) -> R {
        let mut guard = self.state.lock();
        match f(&guard) {
            Update::Keep(r) => r,
            Update::Replace(next, r) => {
                *guard = Arc::new(next);
                r
            }
        }
    }
}

/// Universal construction with a readers–writer lock: reads share the
/// lock, writes take it exclusively.
#[derive(Debug)]
pub struct RwLockUc<S> {
    state: RwLock<Arc<S>>,
}

impl<S: Send + Sync> RwLockUc<S> {
    /// Wraps an initial version.
    pub fn new(initial: S) -> Self {
        RwLockUc {
            state: RwLock::new(Arc::new(initial)),
        }
    }

    /// Runs a read-only operation under a shared lock.
    pub fn read<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        let guard = self.state.read();
        f(&guard)
    }

    /// Returns a snapshot of the current version.
    pub fn snapshot(&self) -> Arc<S> {
        self.state.read().clone()
    }

    /// Runs a modifying operation under the exclusive lock.
    pub fn update<R>(&self, f: impl FnOnce(&S) -> Update<S, R>) -> R {
        let mut guard = self.state.write();
        match f(&guard) {
            Update::Keep(r) => r,
            Update::Replace(next, r) => {
                *guard = Arc::new(next);
                r
            }
        }
    }
}

/// Plain single-threaded wrapper with the same closure interface — the
/// "Seq Treap" baseline column of the paper's tables. Zero
/// synchronization; requires `&mut self` for updates.
#[derive(Debug)]
pub struct SeqUc<S> {
    state: S,
}

impl<S> SeqUc<S> {
    /// Wraps an initial version.
    pub fn new(initial: S) -> Self {
        SeqUc { state: initial }
    }

    /// Runs a read-only operation.
    pub fn read<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.state)
    }

    /// Runs a modifying operation in place.
    pub fn update<R>(&mut self, f: impl FnOnce(&S) -> Update<S, R>) -> R {
        match f(&self.state) {
            Update::Keep(r) => r,
            Update::Replace(next, r) => {
                self.state = next;
                r
            }
        }
    }

    /// Consumes the wrapper, returning the final version.
    pub fn into_inner(self) -> S {
        self.state
    }

    /// Borrows the current version.
    pub fn inner(&self) -> &S {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn incr(n: &u64) -> Update<u64, u64> {
        Update::Replace(n + 1, n + 1)
    }

    #[test]
    fn mutex_uc_counts_correctly_under_threads() {
        let uc = MutexUc::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..250 {
                        uc.update(incr);
                    }
                });
            }
        });
        assert_eq!(uc.read(|&n| n), 1000);
    }

    #[test]
    fn rwlock_uc_counts_correctly_under_threads() {
        let uc = RwLockUc::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..250 {
                        uc.update(incr);
                    }
                });
            }
            s.spawn(|| {
                for _ in 0..100 {
                    let _ = uc.read(|&n| n);
                }
            });
        });
        assert_eq!(uc.read(|&n| n), 1000);
    }

    #[test]
    fn snapshots_survive_later_updates() {
        let uc = MutexUc::new(vec![1]);
        let snap = uc.snapshot();
        uc.update(|v| {
            let mut next = v.clone();
            next.push(2);
            Update::Replace(next, ())
        });
        assert_eq!(*snap, vec![1]);
        assert_eq!(uc.read(|v| v.len()), 2);
    }

    #[test]
    fn seq_uc_applies_and_keeps() {
        let mut uc = SeqUc::new(10u64);
        let r = uc.update(|&n| incr(&n));
        assert_eq!(r, 11);
        let r = uc.update(|&n| Update::Keep(n));
        assert_eq!(r, 11);
        assert_eq!(uc.into_inner(), 11);
    }
}
