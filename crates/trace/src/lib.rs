//! Distributed request tracing for the pathcopy serving stack.
//!
//! Aggregate histograms (`pathcopy-metrics`) answer *how slow*; this
//! crate answers *which request, and where*. A compact [`TraceContext`]
//! (trace id + parent span + flags) rides the proto-v3 envelope and is
//! propagated **causally** along the whole write path — client submit →
//! event-loop queue → worker execute → feed publish → durable
//! append+fsync → push fan-out → relay re-serve → leaf apply — so one
//! epoch's journey across a relay tree is a single stitched trace under
//! one id, with end-to-end epoch numbers.
//!
//! Each node records [`SpanRecord`]s into a [`Flight`] recorder: a
//! lock-free fixed-size ring buffer (per-slot seqlock, no allocation on
//! the hot path) with **slow-request capture** — a request whose total
//! exceeds the configured threshold gets its span chain pinned past
//! ring eviction ([`Flight::pin`]). The same zero-cost discipline as
//! the metrics `Recorder` applies: [`TraceRecorder::Disabled`] (and any
//! request without a context) costs a branch, no clock read, no atomic.
//!
//! Span *kinds* reuse the wire discriminants of
//! [`pathcopy_metrics::Stage`], so a span's `kind` byte and a metrics
//! row's `stage` byte name the same pipeline stage. Clocks are **not**
//! synchronised across nodes: the renderer ([`render_trace`]) shows
//! per-node relative timelines and stitches nodes by trace id + epoch,
//! never by comparing raw timestamps across machines.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use pathcopy_metrics::Stage;

/// The compact per-request context carried in the wire envelope:
/// everything a downstream node needs to attach its spans to the same
/// trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// Identifies the whole end-to-end trace; every span of one
    /// request's journey shares it.
    pub trace_id: u64,
    /// The span id of the causal parent on the upstream node (`0` for
    /// a root context minted by the client).
    pub parent_span: u64,
    /// Bit flags; see [`TraceContext::SAMPLED`] / [`TraceContext::SLOW`].
    pub flags: u8,
}

impl TraceContext {
    /// The request was chosen for tracing; nodes record its spans.
    pub const SAMPLED: u8 = 1;
    /// Force-pin this trace on every node regardless of the slow
    /// threshold (set by tooling that already knows it wants the dump).
    pub const SLOW: u8 = 2;

    /// Encoded size on the wire: two `u64`s plus the flags byte.
    pub const WIRE_BYTES: usize = 17;

    /// A fresh sampled root context (no parent yet).
    #[must_use]
    pub fn sampled(trace_id: u64) -> Self {
        TraceContext {
            trace_id,
            parent_span: 0,
            flags: Self::SAMPLED,
        }
    }

    /// True when the sampled bit is set.
    #[must_use]
    pub fn is_sampled(&self) -> bool {
        self.flags & Self::SAMPLED != 0
    }

    /// True when the force-capture bit is set.
    #[must_use]
    pub fn is_slow(&self) -> bool {
        self.flags & Self::SLOW != 0
    }

    /// The context to forward downstream once this node has recorded
    /// the span `parent` — downstream spans become its children.
    #[must_use]
    pub fn child(&self, parent: u64) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            parent_span: parent,
            flags: self.flags,
        }
    }
}

/// One recorded span: a (stage, duration) interval on one node,
/// attached to a trace. Plain data — exactly seven `u64` words on the
/// wire (see [`SpanRecord::to_words`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id, unique within its node's recorder.
    pub span_id: u64,
    /// The causal parent span (possibly on another node; `0` = root).
    pub parent_span: u64,
    /// Stage discriminant, shared with [`pathcopy_metrics::Stage`].
    pub kind: u8,
    /// Request tag the span served (`0` when not request-shaped).
    pub tag: u8,
    /// The context flags the request carried.
    pub flags: u8,
    /// Feed epoch the span is about (`0` = not known / not epoch-bound).
    pub epoch: u64,
    /// Span start, nanoseconds since the recording node's [`Flight`]
    /// was created. **Node-local** — never compare across nodes.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

impl SpanRecord {
    /// Packs the record into seven `u64` words (`kind`/`tag`/`flags`
    /// share one word) — the ring-slot and wire representation.
    #[must_use]
    pub fn to_words(&self) -> [u64; 7] {
        let meta =
            u64::from(self.kind) | (u64::from(self.tag) << 8) | (u64::from(self.flags) << 16);
        [
            self.trace_id,
            self.span_id,
            self.parent_span,
            meta,
            self.epoch,
            self.start_ns,
            self.dur_ns,
        ]
    }

    /// Inverse of [`to_words`](Self::to_words).
    #[must_use]
    pub fn from_words(w: [u64; 7]) -> Self {
        SpanRecord {
            trace_id: w[0],
            span_id: w[1],
            parent_span: w[2],
            kind: (w[3] & 0xff) as u8,
            tag: ((w[3] >> 8) & 0xff) as u8,
            flags: ((w[3] >> 16) & 0xff) as u8,
            epoch: w[4],
            start_ns: w[5],
            dur_ns: w[6],
        }
    }

    /// Human name of the span's stage (`"stage<N>"` for unknown bytes).
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        Stage::from_u8(self.kind).map_or("?", |s| s.as_str())
    }
}

/// One ring slot: a sequence word (seqlock) plus the seven data words.
/// `seq == 0` means never written; odd means a write is in progress.
struct Slot {
    seq: AtomicU64,
    data: [AtomicU64; 7],
}

impl Slot {
    fn empty() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            data: Default::default(),
        }
    }
}

/// Cap on pinned (slow-captured) spans, so a pathological threshold
/// cannot grow the pin buffer without bound.
const PINNED_MAX: usize = 1024;

/// Default ring capacity: enough for the last few thousand spans of
/// traffic while costing ~64 KiB.
const DEFAULT_CAPACITY: usize = 1024;

/// A per-node lock-free flight recorder: the last `capacity` spans in a
/// fixed ring, plus a pinned side-buffer for slow-captured traces.
///
/// Recording is wait-free for the recorder (one `fetch_add` to claim a
/// slot, one seqlock claim, seven relaxed stores): no allocation, no
/// lock. A writer that collides with another writer on the same slot
/// (ring wrapped a full lap mid-write) drops its record rather than
/// blocking — this is a diagnostic ring, not a database.
///
/// Readers ([`dump`](Self::dump)) skip torn slots by seqlock parity;
/// since every word is an atomic there is no undefined behaviour, just
/// records that are either complete or absent.
pub struct Flight {
    node: String,
    origin: Instant,
    next_span: AtomicU64,
    head: AtomicU64,
    slots: Box<[Slot]>,
    slow_ns: AtomicU64,
    pinned: Mutex<Vec<SpanRecord>>,
}

impl Flight {
    /// A recorder named `node` (the name travels in `TraceDump` frames)
    /// with the default ring capacity.
    #[must_use]
    pub fn new(node: &str) -> Arc<Self> {
        Self::with_capacity(node, DEFAULT_CAPACITY)
    }

    /// A recorder with an explicit ring capacity (floored at 1).
    #[must_use]
    pub fn with_capacity(node: &str, capacity: usize) -> Arc<Self> {
        let capacity = capacity.max(1);
        Arc::new(Flight {
            node: node.to_string(),
            origin: Instant::now(),
            next_span: AtomicU64::new(0),
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            slow_ns: AtomicU64::new(0),
            pinned: Mutex::new(Vec::new()),
        })
    }

    /// The node name stamped on this recorder's dumps.
    #[must_use]
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Arms (or with `None` disarms) slow-request capture: a request
    /// whose end-to-end total on this node meets the threshold gets its
    /// whole span chain pinned past ring eviction.
    pub fn set_slow_threshold(&self, threshold: Option<Duration>) {
        let ns = threshold.map_or(0, |d| d.as_nanos().min(u128::from(u64::MAX)) as u64);
        self.slow_ns.store(ns, Ordering::Relaxed);
    }

    /// The armed slow threshold in nanoseconds (`0` = disarmed).
    #[must_use]
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_ns.load(Ordering::Relaxed)
    }

    /// Nanoseconds from this recorder's creation to `t` (saturating;
    /// the recorder's span timebase).
    #[must_use]
    pub fn ns_since_origin(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.origin)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64
    }

    /// Allocates a fresh span id (node-unique, starts at 1).
    #[must_use]
    pub fn next_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Records one span into the ring. Lock-free; drops the record on
    /// a same-slot writer collision (see the type docs).
    pub fn record(&self, span: &SpanRecord) {
        let idx = (self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len() as u64) as usize;
        let slot = &self.slots[idx];
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq & 1 == 1 {
            return; // another writer mid-flight on this slot
        }
        if slot
            .seq
            .compare_exchange(seq, seq | 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        for (cell, word) in slot.data.iter().zip(span.to_words()) {
            cell.store(word, Ordering::Relaxed);
        }
        slot.seq.store((seq | 1) + 1, Ordering::Release);
    }

    /// Records a stage interval `start..end` for `ctx`, allocating the
    /// span id; returns the id so callers can parent downstream spans.
    pub fn span(
        &self,
        ctx: &TraceContext,
        kind: Stage,
        tag: u8,
        epoch: u64,
        start: Instant,
        end: Instant,
    ) -> u64 {
        let id = self.next_span_id();
        self.span_with_id(id, ctx, kind, tag, epoch, start, end);
        id
    }

    /// Like [`span`](Self::span) with a pre-allocated id — for callers
    /// that must hand the id to a downstream context *before* the span
    /// interval closes.
    #[allow(clippy::too_many_arguments)]
    pub fn span_with_id(
        &self,
        span_id: u64,
        ctx: &TraceContext,
        kind: Stage,
        tag: u8,
        epoch: u64,
        start: Instant,
        end: Instant,
    ) {
        self.record(&SpanRecord {
            trace_id: ctx.trace_id,
            span_id,
            parent_span: ctx.parent_span,
            kind: kind as u8,
            tag,
            flags: ctx.flags,
            epoch,
            start_ns: self.ns_since_origin(start),
            dur_ns: end
                .saturating_duration_since(start)
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64,
        });
    }

    /// Pins every ring span of `trace_id` into the survive-eviction
    /// buffer (bounded at `PINNED_MAX` spans; duplicates by span id are
    /// skipped). Call when a request is identified as slow.
    pub fn pin(&self, trace_id: u64) {
        let matching: Vec<SpanRecord> = self
            .read_ring()
            .into_iter()
            .filter(|s| s.trace_id == trace_id)
            .collect();
        let mut pinned = self.pinned.lock();
        for span in matching {
            if pinned.len() >= PINNED_MAX {
                return;
            }
            if !pinned.iter().any(|p| p.span_id == span.span_id) {
                pinned.push(span);
            }
        }
    }

    /// Applies the slow-capture policy for a finished request: pins the
    /// trace when the context is force-flagged [`TraceContext::SLOW`],
    /// or when a threshold is armed and `total_ns` meets it.
    pub fn maybe_pin(&self, ctx: &TraceContext, total_ns: u64) {
        let threshold = self.slow_ns.load(Ordering::Relaxed);
        if ctx.is_slow() || (threshold > 0 && total_ns >= threshold) {
            self.pin(ctx.trace_id);
        }
    }

    /// Every readable slot, torn ones skipped.
    fn read_ring(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            // Seqlock read: same even sequence before and after means
            // the words form one complete record. (All words are
            // atomics, so a lost race is a skipped record, not UB.)
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue;
            }
            let mut words = [0u64; 7];
            for (w, cell) in words.iter_mut().zip(slot.data.iter()) {
                *w = cell.load(Ordering::Relaxed);
            }
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue;
            }
            out.push(SpanRecord::from_words(words));
        }
        out
    }

    /// Snapshot of everything the recorder holds: pinned spans plus the
    /// live ring, de-duplicated by span id and sorted by
    /// `(trace_id, start_ns, span_id)`.
    #[must_use]
    pub fn dump(&self) -> Vec<SpanRecord> {
        let mut out = self.pinned.lock().clone();
        for span in self.read_ring() {
            if !out.iter().any(|p| p.span_id == span.span_id) {
                out.push(span);
            }
        }
        out.sort_by_key(|s| (s.trace_id, s.start_ns, s.span_id));
        out
    }

    /// Forgets everything recorded so far (ring and pinned buffer).
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Release);
        }
        self.pinned.lock().clear();
    }
}

impl std::fmt::Debug for Flight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Flight")
            .field("node", &self.node)
            .field("capacity", &self.slots.len())
            .field("pinned", &self.pinned.lock().len())
            .finish_non_exhaustive()
    }
}

/// The hot-path facade, mirroring the metrics `Recorder` discipline:
/// [`Disabled`](Self::Disabled) (or an absent context) short-circuits
/// before any clock read or atomic — the per-request cost of a
/// non-traced request is one branch, proven by the `trace_overhead`
/// bench.
#[derive(Debug, Clone, Default)]
pub enum TraceRecorder {
    /// Tracing off: every call is a branch-only no-op.
    #[default]
    Disabled,
    /// Tracing on: spans land in the shared [`Flight`].
    Enabled(Arc<Flight>),
}

impl TraceRecorder {
    /// A live recorder over `flight`.
    #[must_use]
    pub fn enabled(flight: Arc<Flight>) -> Self {
        TraceRecorder::Enabled(flight)
    }

    /// True when spans are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        matches!(self, TraceRecorder::Enabled(_))
    }

    /// The underlying recorder, when enabled.
    #[must_use]
    pub fn flight(&self) -> Option<&Arc<Flight>> {
        match self {
            TraceRecorder::Disabled => None,
            TraceRecorder::Enabled(f) => Some(f),
        }
    }

    /// Reads the clock only when this request will actually record
    /// spans (recorder enabled *and* a context present) — the
    /// stage-boundary entry point.
    #[inline]
    #[must_use]
    pub fn begin(&self, ctx: Option<&TraceContext>) -> Option<Instant> {
        match self {
            TraceRecorder::Disabled => None,
            TraceRecorder::Enabled(_) => ctx.map(|_| Instant::now()),
        }
    }

    /// Closes a stage span started at `start`; branch-only when
    /// disabled or untraced. Returns the span id for parenting.
    #[inline]
    pub fn span(
        &self,
        ctx: Option<&TraceContext>,
        kind: Stage,
        tag: u8,
        epoch: u64,
        start: Option<Instant>,
    ) -> Option<u64> {
        match (self, ctx, start) {
            (TraceRecorder::Enabled(f), Some(ctx), Some(t0)) => {
                Some(f.span(ctx, kind, tag, epoch, t0, Instant::now()))
            }
            _ => None,
        }
    }
}

/// Formats nanoseconds as a compact human duration.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}us", ns as f64 / 1e3)
    }
}

/// Trace ids present in `dumps`, widest first: sorted by how many
/// nodes saw the trace, then by total span count — the first entry is
/// the best candidate for [`render_trace`].
#[must_use]
pub fn trace_ids(dumps: &[(String, Vec<SpanRecord>)]) -> Vec<u64> {
    let mut stats: Vec<(u64, usize, usize)> = Vec::new(); // (id, nodes, spans)
    for (_, spans) in dumps {
        let mut seen_here: Vec<u64> = Vec::new();
        for span in spans {
            match stats.iter_mut().find(|(id, _, _)| *id == span.trace_id) {
                Some((id, nodes, count)) => {
                    *count += 1;
                    if !seen_here.contains(id) {
                        *nodes += 1;
                    }
                }
                None => stats.push((span.trace_id, 1, 1)),
            }
            if !seen_here.contains(&span.trace_id) {
                seen_here.push(span.trace_id);
            }
        }
    }
    stats.sort_by(|a, b| (b.1, b.2).cmp(&(a.1, a.2)).then(a.0.cmp(&b.0)));
    stats.into_iter().map(|(id, _, _)| id).collect()
}

/// Renders one trace's cross-node timeline. Each node section lists its
/// spans in start order with offsets **relative to that node's first
/// span of the trace** — clocks are node-local, so the stitching is by
/// trace id and epoch number, never by absolute time.
#[must_use]
pub fn render_trace(trace_id: u64, dumps: &[(String, Vec<SpanRecord>)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "trace {trace_id:#018x}");
    for (node, spans) in dumps {
        let mut mine: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace_id == trace_id).collect();
        if mine.is_empty() {
            continue;
        }
        mine.sort_by_key(|s| (s.start_ns, s.span_id));
        let base = mine[0].start_ns;
        let _ = writeln!(out, "  node {node}");
        for span in mine {
            let epoch = if span.epoch > 0 {
                format!("  epoch={}", span.epoch)
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "    +{:<10} {:<12} {:<10} span={} parent={}{}",
                fmt_ns(span.start_ns - base),
                span.kind_name(),
                fmt_ns(span.dur_ns),
                span.span_id,
                span.parent_span,
                epoch,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: u64, span: u64, start: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: span,
            parent_span: 0,
            kind: Stage::Execute as u8,
            tag: 1,
            flags: TraceContext::SAMPLED,
            epoch: 7,
            start_ns: start,
            dur_ns: 10,
        }
    }

    #[test]
    fn words_roundtrip_every_field() {
        let span = SpanRecord {
            trace_id: 0xdead_beef,
            span_id: 42,
            parent_span: 41,
            kind: Stage::PushApply as u8,
            tag: 11,
            flags: 3,
            epoch: 9000,
            start_ns: 123_456,
            dur_ns: 789,
        };
        assert_eq!(SpanRecord::from_words(span.to_words()), span);
    }

    #[test]
    fn ring_records_and_dumps_in_order() {
        let f = Flight::with_capacity("n", 8);
        for i in 0..5 {
            f.record(&rec(1, i + 1, i * 100));
        }
        let dump = f.dump();
        assert_eq!(dump.len(), 5);
        assert!(dump.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        assert_eq!(f.node(), "n");
    }

    #[test]
    fn ring_evicts_oldest_but_pin_survives() {
        let f = Flight::with_capacity("n", 4);
        for i in 0..4 {
            f.record(&rec(1, i + 1, i));
        }
        f.pin(1); // pin trace 1 while its spans are still in the ring
        for i in 0..8 {
            f.record(&rec(2, 100 + i, 1000 + i));
        }
        let dump = f.dump();
        // Trace 2 overwrote the whole ring, yet trace 1 survives pinned.
        assert_eq!(dump.iter().filter(|s| s.trace_id == 1).count(), 4);
        assert_eq!(dump.iter().filter(|s| s.trace_id == 2).count(), 4);
    }

    #[test]
    fn maybe_pin_honours_threshold_and_force_flag() {
        let f = Flight::with_capacity("n", 8);
        f.record(&rec(5, 1, 0));
        f.maybe_pin(&TraceContext::sampled(5), u64::MAX); // disarmed: no pin
        f.record(&rec(6, 2, 0));
        f.set_slow_threshold(Some(Duration::from_millis(1)));
        f.maybe_pin(&TraceContext::sampled(6), 999_999); // below threshold
        let mut forced = TraceContext::sampled(5);
        forced.flags |= TraceContext::SLOW;
        f.maybe_pin(&forced, 0); // force flag wins
        f.maybe_pin(&TraceContext::sampled(6), 1_000_000); // meets threshold
        f.clear_ring_for_test();
        let dump = f.dump();
        assert!(dump.iter().any(|s| s.trace_id == 5));
        assert!(dump.iter().any(|s| s.trace_id == 6));
    }

    impl Flight {
        /// Test helper: empty the ring but keep the pinned buffer.
        fn clear_ring_for_test(&self) {
            for slot in self.slots.iter() {
                slot.seq.store(0, Ordering::Release);
            }
        }
    }

    #[test]
    fn span_records_interval_and_parents() {
        let f = Flight::with_capacity("n", 8);
        let ctx = TraceContext::sampled(9).child(77);
        let t0 = Instant::now();
        let id = f.span(&ctx, Stage::QueueWait, 3, 12, t0, Instant::now());
        let dump = f.dump();
        assert_eq!(dump.len(), 1);
        assert_eq!(dump[0].span_id, id);
        assert_eq!(dump[0].parent_span, 77);
        assert_eq!(dump[0].kind, Stage::QueueWait as u8);
        assert_eq!(dump[0].epoch, 12);
    }

    #[test]
    fn disabled_recorder_is_branch_only() {
        let r = TraceRecorder::Disabled;
        assert!(!r.is_enabled());
        assert!(r.begin(Some(&TraceContext::sampled(1))).is_none());
        assert!(r
            .span(
                Some(&TraceContext::sampled(1)),
                Stage::Execute,
                1,
                0,
                Some(Instant::now())
            )
            .is_none());
        // Enabled recorder without a context also short-circuits.
        let r = TraceRecorder::enabled(Flight::new("n"));
        assert!(r.begin(None).is_none());
        assert!(r.flight().unwrap().dump().is_empty());
    }

    #[test]
    fn concurrent_recording_keeps_records_whole() {
        let f = Flight::with_capacity("n", 64);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let f = &f;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        // Every record's fields agree mod a constant, so
                        // a torn read would be detectable.
                        let v = t * 10_000 + i;
                        f.record(&SpanRecord {
                            trace_id: v,
                            span_id: v,
                            parent_span: v,
                            kind: 1,
                            tag: 1,
                            flags: 1,
                            epoch: v,
                            start_ns: v,
                            dur_ns: v,
                        });
                    }
                });
            }
        });
        for span in f.dump() {
            assert_eq!(span.trace_id, span.span_id);
            assert_eq!(span.trace_id, span.epoch);
            assert_eq!(span.trace_id, span.start_ns);
        }
    }

    #[test]
    fn stitch_and_render_cross_node() {
        let primary = vec![rec(1, 1, 0), rec(1, 2, 50), rec(2, 3, 0)];
        let leaf = vec![rec(1, 1, 12345)];
        let dumps = vec![("primary".to_string(), primary), ("leaf".to_string(), leaf)];
        let ids = trace_ids(&dumps);
        assert_eq!(ids[0], 1, "trace 1 spans two nodes: widest first");
        let text = render_trace(1, &dumps);
        assert!(text.contains("node primary"));
        assert!(text.contains("node leaf"));
        assert!(text.contains("epoch=7"));
        assert!(!render_trace(2, &dumps).contains("node leaf"));
    }
}
