//! Lock-free concurrent ordered map built on the persistent treap.

use std::fmt;
use std::hash::Hash;
use std::ops::RangeBounds;
use std::sync::Arc;

use pathcopy_core::api;
use pathcopy_core::{BackoffPolicy, PathCopyUc, StatsSnapshot, UcStats, Update, UpdateReport};
use pathcopy_trees::TreapMap as PTreapMap;

use crate::snapshot::TreapSnapshot;

/// A lock-free concurrent ordered map backed by a persistent treap.
///
/// Values are cloned out of snapshots on reads, so `V: Clone` (use
/// `Arc<V>` for expensive payloads — exactly what an MVCC store does).
///
/// # Examples
///
/// ```
/// use pathcopy_concurrent::TreapMap;
///
/// let m = TreapMap::new();
/// m.insert(1, "one");
/// m.insert(2, "two");
/// assert_eq!(m.get(&1), Some("one"));
/// assert_eq!(m.insert(1, "uno"), Some("one"));
///
/// // Consistent multi-key reads via snapshots:
/// let snap = m.snapshot();
/// m.remove(&2);
/// assert_eq!(snap.get(&2), Some(&"two"));
/// ```
pub struct TreapMap<K, V> {
    uc: PathCopyUc<PTreapMap<K, V>>,
}

impl<K, V> Default for TreapMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> TreapMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Creates an empty map.
    pub fn new() -> Self {
        TreapMap {
            uc: PathCopyUc::new(PTreapMap::new()),
        }
    }

    /// Creates an empty map with an explicit retry backoff policy.
    pub fn with_backoff(backoff: BackoffPolicy) -> Self {
        TreapMap {
            uc: PathCopyUc::with_backoff(PTreapMap::new(), backoff),
        }
    }

    /// Creates a map from a prebuilt persistent version.
    pub fn from_version(initial: PTreapMap<K, V>) -> Self {
        TreapMap {
            uc: PathCopyUc::new(initial),
        }
    }

    /// Inserts `key -> value`, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.insert_reported(key, value).result
    }

    /// [`insert`](Self::insert) with attempt-count instrumentation.
    pub fn insert_reported(&self, key: K, value: V) -> UpdateReport<Option<V>> {
        self.uc.update_reported(move |map| {
            let (next, old) = map.insert(key.clone(), value.clone());
            Update::Replace(next, old)
        })
    }

    /// Inserts only if `key` is absent; returns `true` on success. When
    /// the key exists, no CAS is performed.
    pub fn insert_if_absent(&self, key: K, value: V) -> bool {
        self.uc
            .update_reported(
                move |map| match map.insert_if_absent(key.clone(), value.clone()) {
                    Some(next) => Update::Replace(next, true),
                    None => Update::Keep(false),
                },
            )
            .result
    }

    /// Removes `key`, returning its value if present (no CAS when absent).
    pub fn remove(&self, key: &K) -> Option<V> {
        self.remove_reported(key).result
    }

    /// [`remove`](Self::remove) with attempt-count instrumentation.
    pub fn remove_reported(&self, key: &K) -> UpdateReport<Option<V>> {
        self.uc.update_reported(|map| match map.remove(key) {
            Some((next, v)) => Update::Replace(next, Some(v)),
            None => Update::Keep(None),
        })
    }

    /// Atomically applies `f` to the value at `key` (or `None` if absent)
    /// and stores its result (`None` result removes the key). Returns the
    /// previous value. This is a general read-modify-write linearized at
    /// the root CAS.
    pub fn compute(&self, key: &K, f: impl Fn(Option<&V>) -> Option<V>) -> Option<V> {
        self.uc.update(|map| {
            let old = map.get(key).cloned();
            match f(old.as_ref()) {
                Some(new_v) => {
                    let (next, prev) = map.insert(key.clone(), new_v);
                    Update::Replace(next, prev)
                }
                None => match map.remove(key) {
                    Some((next, prev)) => Update::Replace(next, Some(prev)),
                    None => Update::Keep(None),
                },
            }
        })
    }

    /// Looks up `key`, cloning the value. Wait-free.
    pub fn get(&self, key: &K) -> Option<V> {
        self.uc.read(|map| map.get(key).cloned())
    }

    /// `true` if `key` is present. Wait-free.
    pub fn contains_key(&self, key: &K) -> bool {
        self.uc.read(|map| map.contains_key(key))
    }

    /// Number of entries. Wait-free.
    pub fn len(&self) -> usize {
        self.uc.read(|map| map.len())
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable point-in-time snapshot supporting all persistent-map
    /// reads (iteration, `range`, `select`, `rank`, …) plus the
    /// [`MapSnapshot`](pathcopy_core::MapSnapshot) interface (lazy
    /// `range`, snapshot-to-snapshot `diff`).
    pub fn snapshot(&self) -> TreapSnapshot<K, V> {
        TreapSnapshot::new(self.uc.snapshot())
    }

    /// Collects the entries in `range` from a consistent snapshot into a
    /// `Vec`. Eager; prefer `self.snapshot().range(..)` (see
    /// [`MapSnapshot`](pathcopy_core::MapSnapshot)) to iterate lazily
    /// without materializing.
    pub fn range_to_vec<R: RangeBounds<K>>(&self, range: R) -> Vec<(K, V)> {
        self.uc.read(|map| {
            map.range(range)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        })
    }

    /// Attempt/retry statistics.
    pub fn stats(&self) -> &Arc<UcStats> {
        self.uc.stats()
    }

    /// Unconditionally replaces the contents (benchmark setup/reset).
    pub fn reset_to(&self, version: PTreapMap<K, V>) {
        self.uc.replace_version(version);
    }
}

impl<K, V> api::ConcurrentMap<K, V> for TreapMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    fn insert(&self, key: K, value: V) -> Option<V> {
        TreapMap::insert(self, key, value)
    }

    fn remove(&self, key: &K) -> Option<V> {
        TreapMap::remove(self, key)
    }

    fn get(&self, key: &K) -> Option<V> {
        TreapMap::get(self, key)
    }

    fn contains_key(&self, key: &K) -> bool {
        TreapMap::contains_key(self, key)
    }

    fn len(&self) -> usize {
        TreapMap::len(self)
    }

    fn compute(&self, key: &K, f: &dyn Fn(Option<&V>) -> Option<V>) -> Option<V> {
        TreapMap::compute(self, key, f)
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.uc.stats().snapshot()
    }
}

impl<K, V> api::Snapshottable for TreapMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    type Snapshot = TreapSnapshot<K, V>;

    /// O(1): loads the current root.
    fn snapshot(&self) -> TreapSnapshot<K, V> {
        TreapMap::snapshot(self)
    }
}

impl<K, V> fmt::Debug for TreapMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync + fmt::Debug,
    V: Clone + Send + Sync + fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.uc
            .read(|map| f.debug_map().entries(map.iter()).finish())
    }
}

impl<K, V> FromIterator<(K, V)> for TreapMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Builds the persistent prefill off-line, then wraps it — no CAS
    /// traffic during construction.
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        TreapMap::from_version(iter.into_iter().collect())
    }
}

impl<K, V> Extend<(K, V)> for TreapMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_map_semantics() {
        let m = TreapMap::new();
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.get(&1), Some(11));
        assert_eq!(m.remove(&1), Some(11));
        assert_eq!(m.remove(&1), None);
        assert!(m.is_empty());
    }

    #[test]
    fn insert_if_absent_races_have_one_winner() {
        let m: TreapMap<i64, usize> = TreapMap::new();
        let winners = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|sc| {
            for t in 0..8 {
                let m = &m;
                let winners = &winners;
                sc.spawn(move || {
                    if m.insert_if_absent(7, t) {
                        winners.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(winners.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert!(m.get(&7).is_some());
    }

    #[test]
    fn compute_is_atomic_counter() {
        let m: TreapMap<&'static str, u64> = TreapMap::new();
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let m = &m;
                sc.spawn(move || {
                    for _ in 0..500 {
                        m.compute(&"hits", |v| Some(v.copied().unwrap_or(0) + 1));
                    }
                });
            }
        });
        assert_eq!(m.get(&"hits"), Some(2000));
    }

    #[test]
    fn compute_none_removes() {
        let m: TreapMap<i64, i64> = TreapMap::new();
        m.insert(1, 5);
        let prev = m.compute(&1, |_| None);
        assert_eq!(prev, Some(5));
        assert!(!m.contains_key(&1));
        // Removing an absent key via compute is a no-op.
        let prev = m.compute(&1, |_| None);
        assert_eq!(prev, None);
    }

    #[test]
    fn range_reads_are_consistent() {
        let m: TreapMap<i64, i64> = TreapMap::new();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        let v = m.range_to_vec(10..15);
        assert_eq!(v, (10..15).map(|k| (k, k * 2)).collect::<Vec<_>>());
    }

    #[test]
    fn snapshots_see_stable_history() {
        let m: TreapMap<i64, String> = TreapMap::new();
        let mut snaps = Vec::new();
        for i in 0..10 {
            m.insert(i, format!("v{i}"));
            snaps.push(m.snapshot());
        }
        for (i, snap) in snaps.iter().enumerate() {
            assert_eq!(snap.len(), i + 1, "snapshot {i} drifted");
        }
    }
}
