//! Lock-protected baselines with the same API surface as the lock-free
//! structures — the "simplest UC" from the paper's introduction.
//!
//! Because the protected structure is still the *persistent* treap,
//! snapshots stay O(1) even under a mutex: the lock is held only long
//! enough to clone the root `Arc`.

use std::hash::Hash;

use pathcopy_core::api;
use pathcopy_core::{MutexUc, RwLockUc, Update};
use pathcopy_trees::{treap, TreapMap as PTreapMap};

use crate::snapshot::{TreapSetSnapshot, TreapSnapshot};

/// Treap map protected by one global mutex (reads and writes serialize)
/// — the map-shaped "simplest UC" baseline.
///
/// # Examples
///
/// ```
/// use pathcopy_concurrent::LockedMap;
///
/// let m = LockedMap::new();
/// m.insert(1, "one");
/// let snap = m.snapshot(); // O(1) even under the mutex
/// m.remove(&1);
/// assert_eq!(snap.get(&1), Some(&"one"));
/// ```
pub struct LockedMap<K, V> {
    uc: MutexUc<PTreapMap<K, V>>,
}

impl<K, V> Default for LockedMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> LockedMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Creates an empty map.
    pub fn new() -> Self {
        LockedMap {
            uc: MutexUc::new(PTreapMap::new()),
        }
    }

    /// Creates a map from a prebuilt persistent version.
    pub fn from_version(initial: PTreapMap<K, V>) -> Self {
        LockedMap {
            uc: MutexUc::new(initial),
        }
    }

    /// Inserts `key -> value`, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.uc.update(move |map| {
            let (next, old) = map.insert(key, value);
            Update::Replace(next, old)
        })
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.uc.update(|map| match map.remove(key) {
            Some((next, v)) => Update::Replace(next, Some(v)),
            None => Update::Keep(None),
        })
    }

    /// Atomically applies `f` to the value at `key` (or `None` if
    /// absent) and stores its result (`None` removes the key). Returns
    /// the previous value. Runs under the lock, so `f` executes exactly
    /// once.
    pub fn compute(&self, key: &K, f: impl FnOnce(Option<&V>) -> Option<V>) -> Option<V> {
        self.uc.update(|map| {
            let old = map.get(key).cloned();
            match f(old.as_ref()) {
                Some(new_v) => {
                    let (next, prev) = map.insert(key.clone(), new_v);
                    Update::Replace(next, prev)
                }
                None => match map.remove(key) {
                    Some((next, prev)) => Update::Replace(next, Some(prev)),
                    None => Update::Keep(None),
                },
            }
        })
    }

    /// Looks up `key`, cloning the value (takes the lock).
    pub fn get(&self, key: &K) -> Option<V> {
        self.uc.read(|map| map.get(key).cloned())
    }

    /// `true` if `key` is present (takes the lock).
    pub fn contains_key(&self, key: &K) -> bool {
        self.uc.read(|map| map.contains_key(key))
    }

    /// Number of entries (takes the lock).
    pub fn len(&self) -> usize {
        self.uc.read(|map| map.len())
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time snapshot (persistent versions make this O(1) even
    /// under a mutex).
    pub fn snapshot(&self) -> TreapSnapshot<K, V> {
        TreapSnapshot::new(self.uc.snapshot())
    }
}

impl<K, V> api::ConcurrentMap<K, V> for LockedMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    fn insert(&self, key: K, value: V) -> Option<V> {
        LockedMap::insert(self, key, value)
    }

    fn remove(&self, key: &K) -> Option<V> {
        LockedMap::remove(self, key)
    }

    fn get(&self, key: &K) -> Option<V> {
        LockedMap::get(self, key)
    }

    fn contains_key(&self, key: &K) -> bool {
        LockedMap::contains_key(self, key)
    }

    fn len(&self) -> usize {
        LockedMap::len(self)
    }

    fn compute(&self, key: &K, f: &dyn Fn(Option<&V>) -> Option<V>) -> Option<V> {
        LockedMap::compute(self, key, f)
    }
}

impl<K, V> api::Snapshottable for LockedMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    /// The same snapshot type as the lock-free
    /// [`TreapMap`](crate::TreapMap) — both wrap a persistent treap
    /// version, so snapshots of the two backends can even be `diff`ed
    /// against each other.
    type Snapshot = TreapSnapshot<K, V>;

    fn snapshot(&self) -> TreapSnapshot<K, V> {
        LockedMap::snapshot(self)
    }
}

/// Treap set protected by one global mutex (reads and writes serialize).
pub struct LockedTreapSet<K> {
    uc: MutexUc<treap::TreapSet<K>>,
}

impl<K: Ord + Clone + Hash + Send + Sync> Default for LockedTreapSet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> LockedTreapSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        LockedTreapSet {
            uc: MutexUc::new(treap::TreapSet::empty()),
        }
    }

    /// Creates a set from a prebuilt persistent version.
    pub fn from_version(initial: treap::TreapSet<K>) -> Self {
        LockedTreapSet {
            uc: MutexUc::new(initial),
        }
    }

    /// Inserts `key`; `true` if the set changed.
    pub fn insert(&self, key: K) -> bool {
        self.uc.update(move |set| match set.insert(key) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        })
    }

    /// Removes `key`; `true` if the set changed.
    pub fn remove(&self, key: &K) -> bool {
        self.uc.update(|set| match set.remove(key) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        })
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.uc.read(|set| set.contains(key))
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.uc.read(|set| set.len())
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time snapshot (persistent versions make this O(1) even
    /// under a mutex).
    pub fn snapshot(&self) -> TreapSetSnapshot<K> {
        TreapSetSnapshot::new(self.uc.snapshot())
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> api::ConcurrentSet<K> for LockedTreapSet<K> {
    fn insert(&self, key: K) -> bool {
        LockedTreapSet::insert(self, key)
    }

    fn remove(&self, key: &K) -> bool {
        LockedTreapSet::remove(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        LockedTreapSet::contains(self, key)
    }

    fn len(&self) -> usize {
        LockedTreapSet::len(self)
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> api::Snapshottable for LockedTreapSet<K> {
    type Snapshot = TreapSetSnapshot<K>;

    fn snapshot(&self) -> TreapSetSnapshot<K> {
        LockedTreapSet::snapshot(self)
    }
}

/// Treap set protected by a readers–writer lock (parallel reads,
/// exclusive writes).
pub struct RwLockedTreapSet<K> {
    uc: RwLockUc<treap::TreapSet<K>>,
}

impl<K: Ord + Clone + Hash + Send + Sync> Default for RwLockedTreapSet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> RwLockedTreapSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        RwLockedTreapSet {
            uc: RwLockUc::new(treap::TreapSet::empty()),
        }
    }

    /// Creates a set from a prebuilt persistent version.
    pub fn from_version(initial: treap::TreapSet<K>) -> Self {
        RwLockedTreapSet {
            uc: RwLockUc::new(initial),
        }
    }

    /// Inserts `key`; `true` if the set changed.
    pub fn insert(&self, key: K) -> bool {
        self.uc.update(move |set| match set.insert(key) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        })
    }

    /// Removes `key`; `true` if the set changed.
    pub fn remove(&self, key: &K) -> bool {
        self.uc.update(|set| match set.remove(key) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        })
    }

    /// `true` if `key` is present (shared lock).
    pub fn contains(&self, key: &K) -> bool {
        self.uc.read(|set| set.contains(key))
    }

    /// Number of keys (shared lock).
    pub fn len(&self) -> usize {
        self.uc.read(|set| set.len())
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time snapshot.
    pub fn snapshot(&self) -> TreapSetSnapshot<K> {
        TreapSetSnapshot::new(self.uc.snapshot())
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> api::ConcurrentSet<K> for RwLockedTreapSet<K> {
    fn insert(&self, key: K) -> bool {
        RwLockedTreapSet::insert(self, key)
    }

    fn remove(&self, key: &K) -> bool {
        RwLockedTreapSet::remove(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        RwLockedTreapSet::contains(self, key)
    }

    fn len(&self) -> usize {
        RwLockedTreapSet::len(self)
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> api::Snapshottable for RwLockedTreapSet<K> {
    type Snapshot = TreapSetSnapshot<K>;

    fn snapshot(&self) -> TreapSetSnapshot<K> {
        RwLockedTreapSet::snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_set_correct_under_threads() {
        let s = LockedTreapSet::new();
        std::thread::scope(|sc| {
            for t in 0..4i64 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..200 {
                        assert!(s.insert(t * 200 + i));
                    }
                });
            }
        });
        assert_eq!(s.len(), 800);
        assert!(s.contains(&799));
        assert!(!s.contains(&800));
    }

    #[test]
    fn rwlock_set_correct_under_threads() {
        let s = RwLockedTreapSet::new();
        std::thread::scope(|sc| {
            for t in 0..4i64 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..200 {
                        assert!(s.insert(t * 200 + i));
                    }
                });
            }
            let s = &s;
            sc.spawn(move || {
                for _ in 0..100 {
                    let _ = s.len();
                }
            });
        });
        assert_eq!(s.len(), 800);
    }

    #[test]
    fn locked_snapshots_are_persistent_too() {
        let s = LockedTreapSet::new();
        s.insert(1);
        let snap = s.snapshot();
        s.remove(&1);
        assert!(snap.contains(&1));
        assert!(!s.contains(&1));
    }
}
