//! Lock-protected baselines with the same API surface as the lock-free
//! sets — the "simplest UC" from the paper's introduction.

use std::hash::Hash;
use std::sync::Arc;

use pathcopy_core::{MutexUc, RwLockUc, Update};
use pathcopy_trees::treap;

/// Treap set protected by one global mutex (reads and writes serialize).
pub struct LockedTreapSet<K> {
    uc: MutexUc<treap::TreapSet<K>>,
}

impl<K: Ord + Clone + Hash + Send + Sync> Default for LockedTreapSet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> LockedTreapSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        LockedTreapSet {
            uc: MutexUc::new(treap::TreapSet::empty()),
        }
    }

    /// Creates a set from a prebuilt persistent version.
    pub fn from_version(initial: treap::TreapSet<K>) -> Self {
        LockedTreapSet {
            uc: MutexUc::new(initial),
        }
    }

    /// Inserts `key`; `true` if the set changed.
    pub fn insert(&self, key: K) -> bool {
        self.uc.update(move |set| match set.insert(key) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        })
    }

    /// Removes `key`; `true` if the set changed.
    pub fn remove(&self, key: &K) -> bool {
        self.uc.update(|set| match set.remove(key) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        })
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.uc.read(|set| set.contains(key))
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.uc.read(|set| set.len())
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time snapshot (persistent versions make this O(1) even
    /// under a mutex).
    pub fn snapshot(&self) -> Arc<treap::TreapSet<K>> {
        self.uc.snapshot()
    }
}

/// Treap set protected by a readers–writer lock (parallel reads,
/// exclusive writes).
pub struct RwLockedTreapSet<K> {
    uc: RwLockUc<treap::TreapSet<K>>,
}

impl<K: Ord + Clone + Hash + Send + Sync> Default for RwLockedTreapSet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> RwLockedTreapSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        RwLockedTreapSet {
            uc: RwLockUc::new(treap::TreapSet::empty()),
        }
    }

    /// Creates a set from a prebuilt persistent version.
    pub fn from_version(initial: treap::TreapSet<K>) -> Self {
        RwLockedTreapSet {
            uc: RwLockUc::new(initial),
        }
    }

    /// Inserts `key`; `true` if the set changed.
    pub fn insert(&self, key: K) -> bool {
        self.uc.update(move |set| match set.insert(key) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        })
    }

    /// Removes `key`; `true` if the set changed.
    pub fn remove(&self, key: &K) -> bool {
        self.uc.update(|set| match set.remove(key) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        })
    }

    /// `true` if `key` is present (shared lock).
    pub fn contains(&self, key: &K) -> bool {
        self.uc.read(|set| set.contains(key))
    }

    /// Number of keys (shared lock).
    pub fn len(&self) -> usize {
        self.uc.read(|set| set.len())
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time snapshot.
    pub fn snapshot(&self) -> Arc<treap::TreapSet<K>> {
        self.uc.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_set_correct_under_threads() {
        let s = LockedTreapSet::new();
        std::thread::scope(|sc| {
            for t in 0..4i64 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..200 {
                        assert!(s.insert(t * 200 + i));
                    }
                });
            }
        });
        assert_eq!(s.len(), 800);
        assert!(s.contains(&799));
        assert!(!s.contains(&800));
    }

    #[test]
    fn rwlock_set_correct_under_threads() {
        let s = RwLockedTreapSet::new();
        std::thread::scope(|sc| {
            for t in 0..4i64 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..200 {
                        assert!(s.insert(t * 200 + i));
                    }
                });
            }
            let s = &s;
            sc.spawn(move || {
                for _ in 0..100 {
                    let _ = s.len();
                }
            });
        });
        assert_eq!(s.len(), 800);
    }

    #[test]
    fn locked_snapshots_are_persistent_too() {
        let s = LockedTreapSet::new();
        s.insert(1);
        let snap = s.snapshot();
        s.remove(&1);
        assert!(snap.contains(&1));
        assert!(!s.contains(&1));
    }
}
