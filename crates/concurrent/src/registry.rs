//! The backend registry: every concurrent structure, wired up **once**.
//!
//! Benches, oracle tests, and examples used to hand-wire each backend
//! separately; this module replaces that copy-paste with two access
//! styles over one list:
//!
//! * [`set_backends`] — `&dyn`-able constructors
//!   (`fn() -> Box<dyn ConcurrentSet<i64>>`) for harnesses that only
//!   need the point operations;
//! * [`for_each_map_backend`] / [`for_each_set_backend`] — a visitor
//!   ("driver") that is instantiated per backend with the concrete
//!   type, for code that also needs the [`Snapshottable`] machinery
//!   (snapshot `range`/`iter`/`diff`), which associated types keep out
//!   of `dyn` reach.
//!
//! Adding a backend here makes every registry-driven bench and oracle
//! test pick it up automatically.

use pathcopy_core::api::{ConcurrentMap, ConcurrentSet, MapSnapshot, SetSnapshot, Snapshottable};

use crate::{
    AvlSet, ExternalBstSet, LockedMap, LockedTreapSet, RbSet, RwLockedTreapSet, ShardedTreapMap,
    ShardedTreapSet, TreapMap, TreapSet,
};

/// A named, `dyn`-able constructor for a set backend over `i64` keys.
pub struct SetBackend {
    /// Stable display name (also used as a bench id component).
    pub name: &'static str,
    /// Builds a fresh, empty instance.
    pub make: fn() -> Box<dyn ConcurrentSet<i64>>,
}

/// A named, `dyn`-able constructor for a map backend over `i64 -> i64`.
///
/// This is the servable-backend enumeration: anything listed here can be
/// driven through point operations alone, which is what generic harnesses
/// and the network serving layer (`pathcopy-server`) build on. The names
/// match [`for_each_map_backend`] one-to-one, so code needing the
/// snapshot machinery can cross over to the visitor form by name.
pub struct MapBackend {
    /// Stable display name (also used as a bench id component and as the
    /// `--backend` name in serving tools).
    pub name: &'static str,
    /// Builds a fresh, empty instance.
    pub make: fn() -> Box<dyn ConcurrentMap<i64, i64>>,
}

/// Every map backend, as `dyn` constructors (same list, same names, and
/// same order as [`for_each_map_backend`]).
pub fn map_backends() -> Vec<MapBackend> {
    vec![
        MapBackend {
            name: "treap_map",
            make: || Box::new(TreapMap::new()),
        },
        MapBackend {
            name: "sharded_map_1",
            make: || Box::new(ShardedTreapMap::with_shards(1)),
        },
        MapBackend {
            name: "sharded_map_8",
            make: || Box::new(ShardedTreapMap::with_shards(8)),
        },
        MapBackend {
            name: "locked_map",
            make: || Box::new(LockedMap::new()),
        },
    ]
}

/// Every set backend, as `dyn` constructors.
pub fn set_backends() -> Vec<SetBackend> {
    vec![
        SetBackend {
            name: "treap",
            make: || Box::new(TreapSet::new()),
        },
        SetBackend {
            name: "sharded_treap_8",
            make: || Box::new(ShardedTreapSet::with_shards(8)),
        },
        SetBackend {
            name: "ebst",
            make: || Box::new(ExternalBstSet::new()),
        },
        SetBackend {
            name: "avl",
            make: || Box::new(AvlSet::new()),
        },
        SetBackend {
            name: "rb",
            make: || Box::new(RbSet::new()),
        },
        SetBackend {
            name: "mutex_treap",
            make: || Box::new(LockedTreapSet::new()),
        },
        SetBackend {
            name: "rwlock_treap",
            make: || Box::new(RwLockedTreapSet::new()),
        },
    ]
}

/// Visitor instantiated once per map backend with the concrete type —
/// write the generic logic once in [`drive`](Self::drive), then run it
/// over every backend with [`for_each_map_backend`].
pub trait MapBackendDriver {
    /// Called once per backend with its name and a constructor.
    fn drive<M>(&mut self, name: &str, make: fn() -> M)
    where
        M: ConcurrentMap<i64, i64> + Snapshottable,
        M::Snapshot: MapSnapshot<i64, i64>;
}

/// Runs `driver` over every map backend (lock-free single-root, sharded
/// at two shard counts, and the mutex baseline).
pub fn for_each_map_backend<D: MapBackendDriver>(driver: &mut D) {
    driver.drive("treap_map", TreapMap::new);
    driver.drive("sharded_map_1", || ShardedTreapMap::with_shards(1));
    driver.drive("sharded_map_8", || ShardedTreapMap::with_shards(8));
    driver.drive("locked_map", LockedMap::new);
}

/// Visitor instantiated once per snapshot-capable set backend; the set
/// counterpart of [`MapBackendDriver`].
pub trait SetBackendDriver {
    /// Called once per backend with its name and a constructor.
    fn drive<S>(&mut self, name: &str, make: fn() -> S)
    where
        S: ConcurrentSet<i64> + Snapshottable,
        S::Snapshot: SetSnapshot<i64>;
}

/// Runs `driver` over every snapshot-capable set backend.
pub fn for_each_set_backend<D: SetBackendDriver>(driver: &mut D) {
    driver.drive("treap_set", TreapSet::new);
    driver.drive("sharded_set_8", || ShardedTreapSet::with_shards(8));
    driver.drive("ebst_set", ExternalBstSet::new);
    driver.drive("mutex_treap_set", LockedTreapSet::new);
    driver.drive("rwlock_treap_set", RwLockedTreapSet::new);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyn_registry_backends_all_work() {
        for backend in set_backends() {
            let set = (backend.make)();
            assert!(set.insert(1), "[{}] first insert", backend.name);
            assert!(!set.insert(1), "[{}] duplicate insert", backend.name);
            assert!(set.contains(&1), "[{}] contains", backend.name);
            assert_eq!(set.len(), 1, "[{}] len", backend.name);
            assert!(set.remove(&1), "[{}] remove", backend.name);
            assert!(set.is_empty(), "[{}] empty", backend.name);
        }
    }

    #[test]
    fn dyn_map_backends_all_work_and_match_the_visitor_list() {
        for backend in map_backends() {
            let map = (backend.make)();
            assert_eq!(map.insert(1, 10), None, "[{}]", backend.name);
            assert_eq!(map.insert(1, 11), Some(10), "[{}]", backend.name);
            assert_eq!(map.get(&1), Some(11), "[{}]", backend.name);
            assert_eq!(
                map.compute(&1, &|v| v.map(|x| x + 1)),
                Some(11),
                "[{}]",
                backend.name
            );
            assert_eq!(map.remove(&1), Some(12), "[{}]", backend.name);
            assert!(map.is_empty(), "[{}]", backend.name);
        }

        // The dyn list and the generic visitor enumerate the same
        // backends under the same names — tools keyed by either stay in
        // sync.
        struct Names(Vec<String>);
        impl MapBackendDriver for Names {
            fn drive<M>(&mut self, name: &str, _make: fn() -> M)
            where
                M: ConcurrentMap<i64, i64> + Snapshottable,
                M::Snapshot: MapSnapshot<i64, i64>,
            {
                self.0.push(name.to_string());
            }
        }
        let mut visitor = Names(Vec::new());
        for_each_map_backend(&mut visitor);
        let dyn_names: Vec<String> = map_backends().iter().map(|b| b.name.to_string()).collect();
        assert_eq!(visitor.0, dyn_names);
    }

    #[test]
    fn generic_registries_visit_every_backend() {
        struct Count(Vec<String>);
        impl MapBackendDriver for Count {
            fn drive<M>(&mut self, name: &str, make: fn() -> M)
            where
                M: ConcurrentMap<i64, i64> + Snapshottable,
                M::Snapshot: MapSnapshot<i64, i64>,
            {
                let m = make();
                m.insert(7, 70);
                let snap = Snapshottable::snapshot(&m);
                assert_eq!(MapSnapshot::len(&snap), 1, "[{name}]");
                assert_eq!(MapSnapshot::get(&snap, &7), Some(&70), "[{name}]");
                self.0.push(name.to_string());
            }
        }
        let mut d = Count(Vec::new());
        for_each_map_backend(&mut d);
        assert_eq!(
            d.0,
            ["treap_map", "sharded_map_1", "sharded_map_8", "locked_map"]
        );

        struct SetCount(usize);
        impl SetBackendDriver for SetCount {
            fn drive<S>(&mut self, name: &str, make: fn() -> S)
            where
                S: ConcurrentSet<i64> + Snapshottable,
                S::Snapshot: SetSnapshot<i64>,
            {
                let s = make();
                s.insert(3);
                assert!(
                    SetSnapshot::contains(&Snapshottable::snapshot(&s), &3),
                    "[{name}]"
                );
                self.0 += 1;
            }
        }
        let mut d = SetCount(0);
        for_each_set_backend(&mut d);
        assert_eq!(d.0, 5);
    }
}
