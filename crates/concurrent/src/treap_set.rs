//! Lock-free concurrent ordered set: the paper's benchmark subject.
//!
//! [`TreapSet`] applies the path-copying universal construction to the
//! persistent treap of `pathcopy-trees`. Every operation is linearizable;
//! updates are lock-free; reads are wait-free and never interfere with
//! writers.

use std::hash::Hash;
use std::sync::Arc;

use pathcopy_core::{BackoffPolicy, PathCopyUc, UcStats, Update, UpdateReport};
use pathcopy_trees::treap;

/// A lock-free concurrent ordered set backed by a persistent treap.
///
/// # Examples
///
/// ```
/// use pathcopy_concurrent::TreapSet;
///
/// let set = TreapSet::new();
/// std::thread::scope(|s| {
///     for t in 0..4i64 {
///         let set = &set;
///         s.spawn(move || {
///             for i in 0..100 {
///                 set.insert(t * 100 + i);
///             }
///         });
///     }
/// });
/// assert_eq!(set.len(), 400);
/// assert!(set.contains(&123));
///
/// // Snapshots are consistent point-in-time views:
/// let snap = set.snapshot();
/// set.remove(&123);
/// assert!(snap.contains(&123));
/// assert!(!set.contains(&123));
/// ```
pub struct TreapSet<K> {
    uc: PathCopyUc<treap::TreapSet<K>>,
}

impl<K: Ord + Clone + Hash + Send + Sync> Default for TreapSet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> TreapSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        TreapSet {
            uc: PathCopyUc::new(treap::TreapSet::empty()),
        }
    }

    /// Creates an empty set with an explicit retry backoff policy.
    pub fn with_backoff(backoff: BackoffPolicy) -> Self {
        TreapSet {
            uc: PathCopyUc::with_backoff(treap::TreapSet::empty(), backoff),
        }
    }

    /// Creates a set holding the given initial version (e.g. a prefilled
    /// treap built off-line).
    pub fn from_version(initial: treap::TreapSet<K>) -> Self {
        TreapSet {
            uc: PathCopyUc::new(initial),
        }
    }

    /// Inserts `key`. Returns `true` if the set changed (`false` if the
    /// key was already present — in that case no CAS is performed).
    pub fn insert(&self, key: K) -> bool {
        self.insert_reported(key).result
    }

    /// [`insert`](Self::insert) with attempt-count instrumentation.
    pub fn insert_reported(&self, key: K) -> UpdateReport<bool> {
        self.uc
            .update_reported(move |set| match set.insert(key.clone()) {
                Some(next) => Update::Replace(next, true),
                None => Update::Keep(false),
            })
    }

    /// Removes `key`. Returns `true` if the set changed (`false` if the
    /// key was absent — in that case no CAS is performed).
    pub fn remove(&self, key: &K) -> bool {
        self.remove_reported(key).result
    }

    /// [`remove`](Self::remove) with attempt-count instrumentation.
    pub fn remove_reported(&self, key: &K) -> UpdateReport<bool> {
        self.uc.update_reported(|set| match set.remove(key) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        })
    }

    /// `true` if `key` is present. Wait-free.
    pub fn contains(&self, key: &K) -> bool {
        self.uc.read(|set| set.contains(key))
    }

    /// Number of keys. Wait-free (the persistent treap tracks sizes).
    pub fn len(&self) -> usize {
        self.uc.read(|set| set.len())
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns an immutable point-in-time snapshot. The snapshot supports
    /// every read operation of [`pathcopy_trees::TreapSet`] (iteration,
    /// rank queries through `as_map`, …) and stays valid forever.
    pub fn snapshot(&self) -> Arc<treap::TreapSet<K>> {
        self.uc.snapshot()
    }

    /// Collects the current keys in ascending order.
    pub fn to_vec(&self) -> Vec<K> {
        self.uc.read(|set| set.iter().cloned().collect())
    }

    /// Attempt/retry statistics (shared with all handles to this set).
    pub fn stats(&self) -> &Arc<UcStats> {
        self.uc.stats()
    }

    /// Unconditionally replaces the contents (not linearizable; intended
    /// for benchmark setup/reset).
    pub fn reset_to(&self, version: treap::TreapSet<K>) {
        self.uc.replace_version(version);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_set_semantics() {
        let s = TreapSet::new();
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.contains(&1));
        assert!(s.remove(&1));
        assert!(!s.remove(&1));
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        const THREADS: i64 = 8;
        const PER: i64 = 300;
        let s = TreapSet::new();
        std::thread::scope(|sc| {
            for t in 0..THREADS {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..PER {
                        assert!(s.insert(t * PER + i));
                    }
                });
            }
        });
        assert_eq!(s.len() as i64, THREADS * PER);
        let snap = s.snapshot();
        snap.check_invariants();
        assert!(snap.iter().copied().eq(0..THREADS * PER));
    }

    #[test]
    fn concurrent_insert_remove_cycles_leave_empty() {
        // The Batch workload in miniature: each thread inserts then
        // removes its disjoint keys; the set must end empty.
        const THREADS: i64 = 4;
        const PER: i64 = 200;
        let s = TreapSet::new();
        std::thread::scope(|sc| {
            for t in 0..THREADS {
                let s = &s;
                sc.spawn(move || {
                    for _round in 0..3 {
                        let base = t * PER; // same keys each round
                        for i in 0..PER {
                            assert!(s.insert(base + i), "insert must succeed");
                        }
                        for i in 0..PER {
                            assert!(s.remove(&(base + i)), "remove must succeed");
                        }
                    }
                });
            }
        });
        assert!(s.is_empty());
        let stats = s.stats().snapshot();
        assert_eq!(stats.ops, (THREADS * PER * 2 * 3) as u64);
        assert_eq!(stats.noop_updates, 0, "disjoint keys: no no-ops");
    }

    #[test]
    fn contended_same_key_exactly_one_winner() {
        let s: TreapSet<i64> = TreapSet::new();
        let winners = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|sc| {
            for _ in 0..8 {
                let s = &s;
                let winners = &winners;
                sc.spawn(move || {
                    if s.insert(42) {
                        winners.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(winners.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn snapshot_isolation_under_writers() {
        let s = TreapSet::new();
        for i in 0..100 {
            s.insert(i);
        }
        let snap = s.snapshot();
        std::thread::scope(|sc| {
            let s = &s;
            sc.spawn(move || {
                for i in 0..100 {
                    s.remove(&i);
                }
            });
            // Reader: the snapshot never changes, whatever the writer does.
            for _ in 0..50 {
                assert_eq!(snap.len(), 100);
                assert_eq!(snap.iter().count(), 100);
            }
        });
        assert!(s.is_empty());
        assert_eq!(snap.len(), 100);
    }

    #[test]
    fn reported_attempts_reflect_contention() {
        let s = TreapSet::new();
        let r = s.insert_reported(1);
        assert!(r.result);
        assert_eq!(r.attempts, 1);
        let r = s.insert_reported(1);
        assert!(!r.result);
        assert!(r.was_noop);
    }
}
