//! Lock-free concurrent ordered set: the paper's benchmark subject —
//! plus its sharded, batch-capable big sibling.
//!
//! [`TreapSet`] applies the path-copying universal construction to the
//! persistent treap of `pathcopy-trees`. Every operation is linearizable;
//! updates are lock-free; reads are wait-free and never interfere with
//! writers.
//!
//! [`ShardedTreapSet`] is the set front-end over the sharded map
//! ([`crate::ShardedTreapMap`]): per-key operations contend only within
//! one shard, [`ShardedTreapSet::snapshot_all`] yields a coherent cut,
//! and the `*_batch` operations commit atomically even when the keys
//! span shards (see [`crate::ShardedTreapMap::transact`]).

use std::fmt;
use std::hash::Hash;
use std::ops::Bound;
use std::sync::Arc;

use pathcopy_core::api::{self, SetDiffEntry};
use pathcopy_core::{BackoffPolicy, PathCopyUc, StatsSnapshot, UcStats, Update, UpdateReport};
use pathcopy_trees::treap;

use crate::batch::{BatchOp, BatchResult};
use crate::sharded::{MergedRange, ShardedIntoIter, ShardedSnapshot, ShardedTreapMap};
use crate::snapshot::TreapSetSnapshot;

/// A lock-free concurrent ordered set backed by a persistent treap.
///
/// # Examples
///
/// ```
/// use pathcopy_concurrent::TreapSet;
///
/// let set = TreapSet::new();
/// std::thread::scope(|s| {
///     for t in 0..4i64 {
///         let set = &set;
///         s.spawn(move || {
///             for i in 0..100 {
///                 set.insert(t * 100 + i);
///             }
///         });
///     }
/// });
/// assert_eq!(set.len(), 400);
/// assert!(set.contains(&123));
///
/// // Snapshots are consistent point-in-time views:
/// let snap = set.snapshot();
/// set.remove(&123);
/// assert!(snap.contains(&123));
/// assert!(!set.contains(&123));
/// ```
pub struct TreapSet<K> {
    uc: PathCopyUc<treap::TreapSet<K>>,
}

impl<K: Ord + Clone + Hash + Send + Sync> Default for TreapSet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> TreapSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        TreapSet {
            uc: PathCopyUc::new(treap::TreapSet::empty()),
        }
    }

    /// Creates an empty set with an explicit retry backoff policy.
    pub fn with_backoff(backoff: BackoffPolicy) -> Self {
        TreapSet {
            uc: PathCopyUc::with_backoff(treap::TreapSet::empty(), backoff),
        }
    }

    /// Creates a set holding the given initial version (e.g. a prefilled
    /// treap built off-line).
    pub fn from_version(initial: treap::TreapSet<K>) -> Self {
        TreapSet {
            uc: PathCopyUc::new(initial),
        }
    }

    /// Inserts `key`. Returns `true` if the set changed (`false` if the
    /// key was already present — in that case no CAS is performed).
    pub fn insert(&self, key: K) -> bool {
        self.insert_reported(key).result
    }

    /// [`insert`](Self::insert) with attempt-count instrumentation.
    pub fn insert_reported(&self, key: K) -> UpdateReport<bool> {
        self.uc
            .update_reported(move |set| match set.insert(key.clone()) {
                Some(next) => Update::Replace(next, true),
                None => Update::Keep(false),
            })
    }

    /// Removes `key`. Returns `true` if the set changed (`false` if the
    /// key was absent — in that case no CAS is performed).
    pub fn remove(&self, key: &K) -> bool {
        self.remove_reported(key).result
    }

    /// [`remove`](Self::remove) with attempt-count instrumentation.
    pub fn remove_reported(&self, key: &K) -> UpdateReport<bool> {
        self.uc.update_reported(|set| match set.remove(key) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        })
    }

    /// `true` if `key` is present. Wait-free.
    pub fn contains(&self, key: &K) -> bool {
        self.uc.read(|set| set.contains(key))
    }

    /// Number of keys. Wait-free (the persistent treap tracks sizes).
    pub fn len(&self) -> usize {
        self.uc.read(|set| set.len())
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns an immutable point-in-time snapshot. The snapshot supports
    /// every read operation of [`pathcopy_trees::TreapSet`] (iteration,
    /// rank queries through `as_map`, …) plus the
    /// [`SetSnapshot`](pathcopy_core::SetSnapshot) interface (lazy
    /// `range`, snapshot-to-snapshot `diff`), and stays valid forever.
    pub fn snapshot(&self) -> TreapSetSnapshot<K> {
        TreapSetSnapshot::new(self.uc.snapshot())
    }

    /// Collects the current keys in ascending order.
    pub fn to_vec(&self) -> Vec<K> {
        self.uc.read(|set| set.iter().cloned().collect())
    }

    /// Attempt/retry statistics (shared with all handles to this set).
    pub fn stats(&self) -> &Arc<UcStats> {
        self.uc.stats()
    }

    /// Unconditionally replaces the contents (not linearizable; intended
    /// for benchmark setup/reset).
    pub fn reset_to(&self, version: treap::TreapSet<K>) {
        self.uc.replace_version(version);
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> api::ConcurrentSet<K> for TreapSet<K> {
    fn insert(&self, key: K) -> bool {
        TreapSet::insert(self, key)
    }

    fn remove(&self, key: &K) -> bool {
        TreapSet::remove(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        TreapSet::contains(self, key)
    }

    fn len(&self) -> usize {
        TreapSet::len(self)
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.uc.stats().snapshot()
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> api::Snapshottable for TreapSet<K> {
    type Snapshot = TreapSetSnapshot<K>;

    /// O(1): loads the current root.
    fn snapshot(&self) -> TreapSetSnapshot<K> {
        TreapSet::snapshot(self)
    }
}

impl<K: Ord + Clone + Hash + Send + Sync + fmt::Debug> fmt::Debug for TreapSet<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.uc
            .read(|set| f.debug_set().entries(set.iter()).finish())
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> FromIterator<K> for TreapSet<K> {
    /// Builds the persistent prefill off-line, then wraps it — no CAS
    /// traffic during construction.
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        TreapSet::from_version(iter.into_iter().collect())
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> Extend<K> for TreapSet<K> {
    fn extend<I: IntoIterator<Item = K>>(&mut self, iter: I) {
        for k in iter {
            self.insert(k);
        }
    }
}

/// A sharded lock-free concurrent set with atomic cross-shard batches:
/// the set front-end of [`ShardedTreapMap`].
///
/// Keys are hash-partitioned across `N` independent path-copying UC
/// roots, so inserts of different shards never contend. On top of the
/// per-key operations it offers:
///
/// * [`snapshot_all`](Self::snapshot_all) — a coherent point-in-time cut
///   of the whole set;
/// * [`insert_batch`](Self::insert_batch) /
///   [`remove_batch`](Self::remove_batch) /
///   [`contains_batch`](Self::contains_batch) — each batch commits (or
///   reads) as **one linearizable operation**, even when its keys span
///   shards; no concurrent observer ever sees it half-applied.
///
/// # Examples
///
/// ```
/// use pathcopy_concurrent::ShardedTreapSet;
///
/// let s: ShardedTreapSet<u64> = ShardedTreapSet::with_shards(8);
/// // Insert three keys atomically — all-or-nothing visibility, even
/// // though they hash to different shards:
/// assert_eq!(s.insert_batch(&[1, 2, 3]), vec![true, true, true]);
/// assert!(s.contains(&2));
///
/// let snap = s.snapshot_all();
/// s.remove_batch(&[1, 2, 3]);
/// assert_eq!(snap.len(), 3); // the cut is immutable
/// assert!(s.is_empty());
/// ```
pub struct ShardedTreapSet<K> {
    map: ShardedTreapMap<K, ()>,
}

impl<K: Ord + Clone + Hash + Send + Sync> Default for ShardedTreapSet<K> {
    /// An 8-shard set; see [`ShardedTreapSet::with_shards`] to choose.
    fn default() -> Self {
        Self::with_shards(8)
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> ShardedTreapSet<K> {
    /// Creates an empty set with `shards` partitions (rounded up to a
    /// power of two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        ShardedTreapSet {
            map: ShardedTreapMap::with_shards(shards),
        }
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.map.shard_count()
    }

    /// Inserts `key`; `true` if the set changed. Lock-free, contends
    /// only within the owning shard.
    pub fn insert(&self, key: K) -> bool {
        self.map.insert_if_absent(key, ())
    }

    /// Removes `key`; `true` if the set changed.
    pub fn remove(&self, key: &K) -> bool {
        self.map.remove(key).is_some()
    }

    /// `true` if `key` is present. Wait-free, except that it briefly
    /// spins if a cross-shard batch is mid-install on the owning shard.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Total number of keys (weakly consistent under concurrent updates,
    /// like [`ShardedTreapMap::len`]).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if every shard is empty (weakly consistent).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Atomically inserts every key, returning for each (in order)
    /// whether it was newly inserted. The whole batch becomes visible at
    /// once, even across shards; a duplicate key later in the same batch
    /// reports `false`.
    pub fn insert_batch(&self, keys: &[K]) -> Vec<bool> {
        let ops: Vec<_> = keys
            .iter()
            .map(|k| BatchOp::Insert(k.clone(), ()))
            .collect();
        self.map
            .transact(&ops)
            .into_iter()
            .map(|r| matches!(r, BatchResult::Inserted(None)))
            .collect()
    }

    /// Atomically removes every key, returning for each (in order)
    /// whether it was present. All-or-nothing visibility across shards.
    pub fn remove_batch(&self, keys: &[K]) -> Vec<bool> {
        let ops: Vec<_> = keys.iter().map(|k| BatchOp::Remove(k.clone())).collect();
        self.map
            .transact(&ops)
            .into_iter()
            .map(|r| matches!(r, BatchResult::Removed(Some(()))))
            .collect()
    }

    /// Membership of every key at one single linearization point — a
    /// consistent multi-key read, unlike `N` separate
    /// [`contains`](Self::contains) calls.
    pub fn contains_batch(&self, keys: &[K]) -> Vec<bool> {
        let ops: Vec<_> = keys.iter().map(|k| BatchOp::Get(k.clone())).collect();
        self.map
            .transact(&ops)
            .into_iter()
            .map(|r| matches!(r, BatchResult::Got(Some(()))))
            .collect()
    }

    /// A coherent point-in-time snapshot of the whole set (see
    /// [`ShardedTreapMap::snapshot_all`]).
    pub fn snapshot_all(&self) -> ShardedSetSnapshot<K> {
        ShardedSetSnapshot {
            inner: self.map.snapshot_all(),
        }
    }

    /// Merged attempt/retry statistics across all shards.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.map.stats_snapshot()
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> api::ConcurrentSet<K> for ShardedTreapSet<K> {
    fn insert(&self, key: K) -> bool {
        ShardedTreapSet::insert(self, key)
    }

    fn remove(&self, key: &K) -> bool {
        ShardedTreapSet::remove(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        ShardedTreapSet::contains(self, key)
    }

    /// Weakly consistent per-shard sum — see [`ShardedTreapSet::len`].
    fn len(&self) -> usize {
        ShardedTreapSet::len(self)
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        ShardedTreapSet::stats_snapshot(self)
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> api::Snapshottable for ShardedTreapSet<K> {
    type Snapshot = ShardedSetSnapshot<K>;

    /// A coherent cut of all shards — see
    /// [`ShardedTreapSet::snapshot_all`].
    fn snapshot(&self) -> ShardedSetSnapshot<K> {
        self.snapshot_all()
    }
}

impl<K: Ord + Clone + Hash + Send + Sync + fmt::Debug> fmt::Debug for ShardedTreapSet<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot_all();
        f.debug_set().entries(snap.iter()).finish()
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> FromIterator<K> for ShardedTreapSet<K> {
    /// Builds a set with the default shard count
    /// ([`ShardedTreapSet::default`]).
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let set = ShardedTreapSet::default();
        for k in iter {
            set.insert(k);
        }
        set
    }
}

impl<K: Ord + Clone + Hash + Send + Sync> Extend<K> for ShardedTreapSet<K> {
    fn extend<I: IntoIterator<Item = K>>(&mut self, iter: I) {
        for k in iter {
            self.insert(k);
        }
    }
}

/// An immutable, coherent point-in-time view of a [`ShardedTreapSet`].
///
/// Implements [`SetSnapshot`](pathcopy_core::SetSnapshot): lazy ordered
/// iteration (a k-way merge across shards), exact `len`, and
/// shared-subtree-pruned `diff`.
pub struct ShardedSetSnapshot<K> {
    inner: ShardedSnapshot<K, ()>,
}

impl<K> Clone for ShardedSetSnapshot<K> {
    fn clone(&self) -> Self {
        ShardedSetSnapshot {
            inner: self.inner.clone(),
        }
    }
}

impl<K: Ord + Clone + Hash> ShardedSetSnapshot<K> {
    /// `true` if `key` was present at snapshot time.
    pub fn contains(&self, key: &K) -> bool {
        self.inner.contains_key(key)
    }

    /// Exact number of keys at snapshot time.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` if the set was empty at snapshot time.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Lazy iterator over every key in global order (a k-way merge of
    /// the per-shard trees; no intermediate `Vec`).
    pub fn iter(&self) -> MergedKeys<'_, K> {
        MergedKeys {
            inner: self.inner.iter(),
        }
    }

    /// Collects all keys in global order.
    pub fn to_sorted_vec(&self) -> Vec<K> {
        self.iter().cloned().collect()
    }
}

impl<K: Ord + Clone + Hash + fmt::Debug> fmt::Debug for ShardedSetSnapshot<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Lazy ascending key iterator over a [`ShardedSetSnapshot`].
pub struct MergedKeys<'a, K: Ord> {
    inner: MergedRange<'a, K, ()>,
}

impl<'a, K: Ord> Iterator for MergedKeys<'a, K> {
    type Item = &'a K;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(k, ())| k)
    }
}

impl<K> api::SetSnapshot<K> for ShardedSetSnapshot<K>
where
    K: Ord + Clone + Hash + Send + Sync,
{
    type Range<'a>
        = MergedKeys<'a, K>
    where
        Self: 'a,
        K: 'a;

    fn contains(&self, key: &K) -> bool {
        ShardedSetSnapshot::contains(self, key)
    }

    fn len(&self) -> usize {
        ShardedSetSnapshot::len(self)
    }

    fn range_by(&self, lo: Bound<&K>, hi: Bound<&K>) -> Self::Range<'_> {
        MergedKeys {
            inner: self.inner.range_by(lo, hi),
        }
    }

    fn diff(&self, newer: &Self) -> Vec<SetDiffEntry<K>> {
        SetDiffEntry::from_unit_diff(api::MapSnapshot::diff(&self.inner, &newer.inner))
    }
}

/// Owning ascending key iterator over a consumed [`ShardedSetSnapshot`].
pub struct ShardedSetIntoIter<K> {
    inner: ShardedIntoIter<K, ()>,
}

impl<K: Ord + Clone> Iterator for ShardedSetIntoIter<K> {
    type Item = K;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(k, ())| k)
    }
}

impl<K: Ord + Clone + Hash> IntoIterator for ShardedSetSnapshot<K> {
    type Item = K;
    type IntoIter = ShardedSetIntoIter<K>;

    fn into_iter(self) -> Self::IntoIter {
        ShardedSetIntoIter {
            inner: self.inner.into_iter(),
        }
    }
}

impl<'a, K: Ord + Clone + Hash> IntoIterator for &'a ShardedSetSnapshot<K> {
    type Item = &'a K;
    type IntoIter = MergedKeys<'a, K>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_set_semantics() {
        let s = TreapSet::new();
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.contains(&1));
        assert!(s.remove(&1));
        assert!(!s.remove(&1));
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        const THREADS: i64 = 8;
        const PER: i64 = 300;
        let s = TreapSet::new();
        std::thread::scope(|sc| {
            for t in 0..THREADS {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..PER {
                        assert!(s.insert(t * PER + i));
                    }
                });
            }
        });
        assert_eq!(s.len() as i64, THREADS * PER);
        let snap = s.snapshot();
        snap.check_invariants();
        assert!(snap.iter().copied().eq(0..THREADS * PER));
    }

    #[test]
    fn concurrent_insert_remove_cycles_leave_empty() {
        // The Batch workload in miniature: each thread inserts then
        // removes its disjoint keys; the set must end empty.
        const THREADS: i64 = 4;
        const PER: i64 = 200;
        let s = TreapSet::new();
        std::thread::scope(|sc| {
            for t in 0..THREADS {
                let s = &s;
                sc.spawn(move || {
                    for _round in 0..3 {
                        let base = t * PER; // same keys each round
                        for i in 0..PER {
                            assert!(s.insert(base + i), "insert must succeed");
                        }
                        for i in 0..PER {
                            assert!(s.remove(&(base + i)), "remove must succeed");
                        }
                    }
                });
            }
        });
        assert!(s.is_empty());
        let stats = s.stats().snapshot();
        assert_eq!(stats.ops, (THREADS * PER * 2 * 3) as u64);
        assert_eq!(stats.noop_updates, 0, "disjoint keys: no no-ops");
    }

    #[test]
    fn contended_same_key_exactly_one_winner() {
        let s: TreapSet<i64> = TreapSet::new();
        let winners = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|sc| {
            for _ in 0..8 {
                let s = &s;
                let winners = &winners;
                sc.spawn(move || {
                    if s.insert(42) {
                        winners.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(winners.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn snapshot_isolation_under_writers() {
        let s = TreapSet::new();
        for i in 0..100 {
            s.insert(i);
        }
        let snap = s.snapshot();
        std::thread::scope(|sc| {
            let s = &s;
            sc.spawn(move || {
                for i in 0..100 {
                    s.remove(&i);
                }
            });
            // Reader: the snapshot never changes, whatever the writer does.
            for _ in 0..50 {
                assert_eq!(snap.len(), 100);
                assert_eq!(snap.iter().count(), 100);
            }
        });
        assert!(s.is_empty());
        assert_eq!(snap.len(), 100);
    }

    #[test]
    fn reported_attempts_reflect_contention() {
        let s = TreapSet::new();
        let r = s.insert_reported(1);
        assert!(r.result);
        assert_eq!(r.attempts, 1);
        let r = s.insert_reported(1);
        assert!(!r.result);
        assert!(r.was_noop);
    }

    #[test]
    fn sharded_set_semantics() {
        let s: ShardedTreapSet<i64> = ShardedTreapSet::with_shards(4);
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.contains(&1));
        assert!(s.remove(&1));
        assert!(!s.remove(&1));
        assert!(s.is_empty());
    }

    #[test]
    fn sharded_set_batches_report_per_key_outcomes() {
        let s: ShardedTreapSet<i64> = ShardedTreapSet::with_shards(8);
        assert_eq!(s.insert_batch(&[1, 2, 2, 3]), vec![true, true, false, true]);
        assert_eq!(s.len(), 3);
        assert_eq!(
            s.contains_batch(&[1, 2, 3, 4]),
            vec![true, true, true, false]
        );
        assert_eq!(s.remove_batch(&[2, 4, 3]), vec![true, false, true]);
        assert_eq!(s.snapshot_all().to_sorted_vec(), vec![1]);
    }

    #[test]
    fn sharded_set_snapshot_is_immutable() {
        let s: ShardedTreapSet<i64> = ShardedTreapSet::with_shards(8);
        s.insert_batch(&(0..100).collect::<Vec<_>>());
        let snap = s.snapshot_all();
        s.remove_batch(&(0..100).collect::<Vec<_>>());
        assert!(s.is_empty());
        assert_eq!(snap.len(), 100);
        assert!(snap.to_sorted_vec().iter().copied().eq(0..100));
        assert!(snap.contains(&42));
    }

    #[test]
    fn sharded_set_concurrent_batches_are_atomic_units() {
        // Each thread inserts then removes its whole disjoint block as
        // one batch; any torn batch leaves strays behind.
        let s: ShardedTreapSet<i64> = ShardedTreapSet::with_shards(8);
        std::thread::scope(|sc| {
            for t in 0..4i64 {
                let s = &s;
                sc.spawn(move || {
                    let block: Vec<i64> = (t * 64..(t + 1) * 64).collect();
                    for _ in 0..20 {
                        assert!(s.insert_batch(&block).into_iter().all(|b| b));
                        assert!(s.remove_batch(&block).into_iter().all(|b| b));
                    }
                });
            }
        });
        assert_eq!(s.snapshot_all().len(), 0);
    }
}
