//! Additional UC front-ends: AVL and red–black sets, a Treiber-equivalent
//! stack, and a FIFO queue — demonstrating the construction's
//! structure-agnosticism (§2: any rooted persistent structure works).

use std::sync::Arc;

use pathcopy_core::api;
use pathcopy_core::{PathCopyUc, StatsSnapshot, UcStats, Update};
use pathcopy_trees::{avl, list::PStack, queue::PQueue, rbtree};

/// Lock-free concurrent ordered set backed by a persistent AVL tree.
pub struct AvlSet<K> {
    uc: PathCopyUc<avl::AvlSet<K>>,
}

impl<K: Ord + Clone + Send + Sync> Default for AvlSet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + Send + Sync> AvlSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        AvlSet {
            uc: PathCopyUc::new(avl::AvlSet::new()),
        }
    }

    /// Creates a set from a prebuilt persistent version.
    pub fn from_version(initial: avl::AvlSet<K>) -> Self {
        AvlSet {
            uc: PathCopyUc::new(initial),
        }
    }

    /// Inserts `key`; `true` if the set changed (no CAS when present).
    pub fn insert(&self, key: K) -> bool {
        self.uc.update(move |set| match set.insert(key.clone()) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        })
    }

    /// Removes `key`; `true` if the set changed (no CAS when absent).
    pub fn remove(&self, key: &K) -> bool {
        self.uc.update(|set| match set.remove(key) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        })
    }

    /// `true` if present. Wait-free.
    pub fn contains(&self, key: &K) -> bool {
        self.uc.read(|set| set.contains(key))
    }

    /// Number of keys. Wait-free.
    pub fn len(&self) -> usize {
        self.uc.read(|set| set.len())
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable point-in-time snapshot.
    pub fn snapshot(&self) -> Arc<avl::AvlSet<K>> {
        self.uc.snapshot()
    }

    /// Attempt/retry statistics.
    pub fn stats(&self) -> &Arc<UcStats> {
        self.uc.stats()
    }
}

impl<K: Ord + Clone + Send + Sync> api::ConcurrentSet<K> for AvlSet<K> {
    fn insert(&self, key: K) -> bool {
        AvlSet::insert(self, key)
    }

    fn remove(&self, key: &K) -> bool {
        AvlSet::remove(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        AvlSet::contains(self, key)
    }

    fn len(&self) -> usize {
        AvlSet::len(self)
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.uc.stats().snapshot()
    }
}

/// Lock-free concurrent ordered set backed by a persistent red–black
/// tree.
pub struct RbSet<K> {
    uc: PathCopyUc<rbtree::RbSet<K>>,
}

impl<K: Ord + Clone + Send + Sync> Default for RbSet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + Send + Sync> RbSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        RbSet {
            uc: PathCopyUc::new(rbtree::RbSet::new()),
        }
    }

    /// Creates a set from a prebuilt persistent version.
    pub fn from_version(initial: rbtree::RbSet<K>) -> Self {
        RbSet {
            uc: PathCopyUc::new(initial),
        }
    }

    /// Inserts `key`; `true` if the set changed.
    pub fn insert(&self, key: K) -> bool {
        self.uc.update(move |set| match set.insert(key.clone()) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        })
    }

    /// Removes `key`; `true` if the set changed.
    pub fn remove(&self, key: &K) -> bool {
        self.uc.update(|set| match set.remove(key) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        })
    }

    /// `true` if present. Wait-free.
    pub fn contains(&self, key: &K) -> bool {
        self.uc.read(|set| set.contains(key))
    }

    /// Number of keys. Wait-free.
    pub fn len(&self) -> usize {
        self.uc.read(|set| set.len())
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable point-in-time snapshot.
    pub fn snapshot(&self) -> Arc<rbtree::RbSet<K>> {
        self.uc.snapshot()
    }

    /// Attempt/retry statistics.
    pub fn stats(&self) -> &Arc<UcStats> {
        self.uc.stats()
    }
}

impl<K: Ord + Clone + Send + Sync> api::ConcurrentSet<K> for RbSet<K> {
    fn insert(&self, key: K) -> bool {
        RbSet::insert(self, key)
    }

    fn remove(&self, key: &K) -> bool {
        RbSet::remove(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        RbSet::contains(self, key)
    }

    fn len(&self) -> usize {
        RbSet::len(self)
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.uc.stats().snapshot()
    }
}

/// Lock-free concurrent LIFO stack over the persistent list (the UC
/// specializes to a Treiber stack: the "path copy" of a list push is
/// empty).
pub struct Stack<T> {
    uc: PathCopyUc<PStack<T>>,
}

impl<T: Clone + Send + Sync> Default for Stack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone + Send + Sync> Stack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Stack {
            uc: PathCopyUc::new(PStack::new()),
        }
    }

    /// Pushes `value`.
    pub fn push(&self, value: T) {
        self.uc
            .update(move |s| Update::Replace(s.push(value.clone()), ()));
    }

    /// Pops the top element; `None` if empty.
    pub fn pop(&self) -> Option<T> {
        self.uc.update(|s| match s.pop() {
            Some((next, v)) => Update::Replace(next, Some(v)),
            None => Update::Keep(None),
        })
    }

    /// Top element, if any. Wait-free.
    pub fn peek(&self) -> Option<T> {
        self.uc.read(|s| s.peek().cloned())
    }

    /// Number of elements. Wait-free.
    pub fn len(&self) -> usize {
        self.uc.read(|s| s.len())
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable point-in-time snapshot.
    pub fn snapshot(&self) -> Arc<PStack<T>> {
        self.uc.snapshot()
    }
}

/// Lock-free concurrent FIFO queue over the persistent two-stack queue.
pub struct Queue<T> {
    uc: PathCopyUc<PQueue<T>>,
}

impl<T: Clone + Send + Sync> Default for Queue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone + Send + Sync> Queue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Queue {
            uc: PathCopyUc::new(PQueue::new()),
        }
    }

    /// Enqueues `value` at the back.
    pub fn push_back(&self, value: T) {
        self.uc
            .update(move |q| Update::Replace(q.push_back(value.clone()), ()));
    }

    /// Dequeues the front element; `None` if empty.
    pub fn pop_front(&self) -> Option<T> {
        self.uc.update(|q| match q.pop_front() {
            Some((next, v)) => Update::Replace(next, Some(v)),
            None => Update::Keep(None),
        })
    }

    /// Number of elements. Wait-free.
    pub fn len(&self) -> usize {
        self.uc.read(|q| q.len())
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable point-in-time snapshot.
    pub fn snapshot(&self) -> Arc<PQueue<T>> {
        self.uc.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avl_set_concurrent_inserts() {
        let s = AvlSet::new();
        std::thread::scope(|sc| {
            for t in 0..4i64 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..200 {
                        assert!(s.insert(t * 200 + i));
                    }
                });
            }
        });
        assert_eq!(s.len(), 800);
        s.snapshot().check_invariants();
    }

    #[test]
    fn rb_set_concurrent_inserts_and_removes() {
        let s = RbSet::new();
        std::thread::scope(|sc| {
            for t in 0..4i64 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..150 {
                        assert!(s.insert(t * 150 + i));
                    }
                    for i in 0..150 {
                        assert!(s.remove(&(t * 150 + i)));
                    }
                });
            }
        });
        assert!(s.is_empty());
        s.snapshot().check_invariants();
    }

    #[test]
    fn stack_no_lost_elements() {
        let s: Stack<u64> = Stack::new();
        let popped = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|sc| {
            for t in 0..2u64 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..500 {
                        s.push(t * 1000 + i);
                    }
                });
            }
            for _ in 0..2 {
                let s = &s;
                let popped = &popped;
                sc.spawn(move || {
                    let mut local = Vec::new();
                    for _ in 0..400 {
                        if let Some(v) = s.pop() {
                            local.push(v);
                        }
                    }
                    popped.lock().unwrap().extend(local);
                });
            }
        });
        let mut all = popped.into_inner().unwrap();
        let remaining: Vec<u64> = s.snapshot().iter().copied().collect();
        all.extend(remaining);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000, "elements lost or duplicated");
    }

    #[test]
    fn queue_preserves_per_producer_order() {
        let q: Queue<u64> = Queue::new();
        std::thread::scope(|sc| {
            let q = &q;
            sc.spawn(move || {
                for i in 0..500 {
                    q.push_back(i);
                }
            });
        });
        // Single consumer drains in order.
        let mut last = None;
        while let Some(v) = q.pop_front() {
            if let Some(prev) = last {
                assert!(v > prev, "FIFO violated: {v} after {prev}");
            }
            last = Some(v);
        }
        assert_eq!(last, Some(499));
    }
}
