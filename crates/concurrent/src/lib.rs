//! # pathcopy-concurrent
//!
//! Ready-made concurrent data structures obtained by applying the
//! path-copying universal construction (`pathcopy-core`) to the
//! persistent structures of `pathcopy-trees`.
//!
//! All structures are linearizable; updates are lock-free, reads are
//! wait-free, and `snapshot()` returns an immutable point-in-time view in
//! O(1) that never blocks writers. (On the *sharded* structures, reads of
//! a shard briefly spin while a cross-shard batch is mid-install there —
//! see [`batch`] — so the batch becomes visible everywhere at once.)

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod composite;
pub mod ebst_set;
pub mod locked;
pub mod more;
pub mod sharded;
pub mod treap_map;
pub mod treap_set;

pub use batch::{BatchOp, BatchResult};
pub use composite::Composite;
pub use ebst_set::ExternalBstSet;
pub use locked::{LockedTreapSet, RwLockedTreapSet};
pub use more::{AvlSet, Queue, RbSet, Stack};
pub use sharded::{ShardedSnapshot, ShardedTreapMap};
pub use treap_map::TreapMap;
pub use treap_set::{ShardedSetSnapshot, ShardedTreapSet, TreapSet};
