//! # pathcopy-concurrent
//!
//! Ready-made concurrent data structures obtained by applying the
//! path-copying universal construction (`pathcopy-core`) to the
//! persistent structures of `pathcopy-trees`.
//!
//! All structures are linearizable; updates are lock-free, reads are
//! wait-free, and `snapshot()` returns an immutable point-in-time view in
//! O(1) that never blocks writers. (On the *sharded* structures, reads of
//! a shard briefly spin while a cross-shard batch is mid-install there —
//! see [`batch`] — so the batch becomes visible everywhere at once.)
//!
//! Every backend implements the unified trait family of
//! [`pathcopy_core::api`] — [`ConcurrentMap`](pathcopy_core::ConcurrentMap)
//! / [`ConcurrentSet`](pathcopy_core::ConcurrentSet) for point
//! operations and [`Snapshottable`](pathcopy_core::Snapshottable) for
//! first-class snapshot handles with lazy `range`/`iter` and
//! shared-subtree-pruned `diff` (see [`snapshot`]). The [`registry`]
//! wires all backends up once for generic benches, oracle tests, and
//! examples.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod composite;
pub mod ebst_set;
pub mod locked;
pub mod more;
pub mod registry;
pub mod sharded;
pub mod snapshot;
pub mod treap_map;
pub mod treap_set;

pub use batch::{diff_to_ops, BatchOp, BatchResult, GuardAbort};
pub use composite::Composite;
pub use ebst_set::ExternalBstSet;
pub use locked::{LockedMap, LockedTreapSet, RwLockedTreapSet};
pub use more::{AvlSet, Queue, RbSet, Stack};
pub use sharded::{MergedRange, ShardedSnapshot, ShardedTreapMap};
pub use snapshot::{EbstSnapshot, SetRange, TreapSetSnapshot, TreapSnapshot};
pub use treap_set::{MergedKeys, ShardedSetSnapshot, ShardedTreapSet, TreapSet};

pub use treap_map::TreapMap;
