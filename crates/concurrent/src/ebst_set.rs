//! Lock-free concurrent set over the persistent **external** BST — the
//! structure the paper's Appendix-A model analyses (no rotations; an
//! update copies exactly its root-to-leaf path).

use std::sync::Arc;

use pathcopy_core::api;
use pathcopy_core::{BackoffPolicy, PathCopyUc, StatsSnapshot, UcStats, Update, UpdateReport};
use pathcopy_trees::ExternalBstSet as PExternalBstSet;

use crate::snapshot::EbstSnapshot;

/// A lock-free concurrent ordered set backed by a persistent external BST.
///
/// Functionally equivalent to
/// [`TreapSet`](crate::TreapSet); structurally it matches the paper's
/// model exactly, which makes it the reference subject for the
/// modified-nodes-on-path measurements (Fig. 5).
pub struct ExternalBstSet<K> {
    uc: PathCopyUc<PExternalBstSet<K>>,
}

impl<K: Ord + Clone + Send + Sync> Default for ExternalBstSet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + Send + Sync> ExternalBstSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        ExternalBstSet {
            uc: PathCopyUc::new(PExternalBstSet::new()),
        }
    }

    /// Creates an empty set with an explicit retry backoff policy.
    pub fn with_backoff(backoff: BackoffPolicy) -> Self {
        ExternalBstSet {
            uc: PathCopyUc::with_backoff(PExternalBstSet::new(), backoff),
        }
    }

    /// Creates a set from a prebuilt persistent version.
    pub fn from_version(initial: PExternalBstSet<K>) -> Self {
        ExternalBstSet {
            uc: PathCopyUc::new(initial),
        }
    }

    /// Inserts `key`; `true` if the set changed.
    pub fn insert(&self, key: K) -> bool {
        self.insert_reported(key).result
    }

    /// [`insert`](Self::insert) with attempt-count instrumentation.
    pub fn insert_reported(&self, key: K) -> UpdateReport<bool> {
        self.uc
            .update_reported(move |set| match set.insert(key.clone()) {
                Some(next) => Update::Replace(next, true),
                None => Update::Keep(false),
            })
    }

    /// Removes `key`; `true` if the set changed.
    pub fn remove(&self, key: &K) -> bool {
        self.remove_reported(key).result
    }

    /// [`remove`](Self::remove) with attempt-count instrumentation.
    pub fn remove_reported(&self, key: &K) -> UpdateReport<bool> {
        self.uc.update_reported(|set| match set.remove(key) {
            Some(next) => Update::Replace(next, true),
            None => Update::Keep(false),
        })
    }

    /// `true` if `key` is present. Wait-free.
    pub fn contains(&self, key: &K) -> bool {
        self.uc.read(|set| set.contains(key))
    }

    /// Number of keys. Wait-free.
    pub fn len(&self) -> usize {
        self.uc.read(|set| set.len())
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable point-in-time snapshot, supporting the
    /// [`SetSnapshot`](pathcopy_core::SetSnapshot) interface (lazy
    /// `range`, snapshot-to-snapshot `diff`).
    pub fn snapshot(&self) -> EbstSnapshot<K> {
        EbstSnapshot::new(self.uc.snapshot())
    }

    /// Attempt/retry statistics.
    pub fn stats(&self) -> &Arc<UcStats> {
        self.uc.stats()
    }

    /// Unconditionally replaces the contents (benchmark setup/reset).
    pub fn reset_to(&self, version: PExternalBstSet<K>) {
        self.uc.replace_version(version);
    }
}

impl<K: Ord + Clone + Send + Sync> api::ConcurrentSet<K> for ExternalBstSet<K> {
    fn insert(&self, key: K) -> bool {
        ExternalBstSet::insert(self, key)
    }

    fn remove(&self, key: &K) -> bool {
        ExternalBstSet::remove(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        ExternalBstSet::contains(self, key)
    }

    fn len(&self) -> usize {
        ExternalBstSet::len(self)
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.uc.stats().snapshot()
    }
}

impl<K: Ord + Clone + Send + Sync> api::Snapshottable for ExternalBstSet<K> {
    type Snapshot = EbstSnapshot<K>;

    /// O(1): loads the current root.
    fn snapshot(&self) -> EbstSnapshot<K> {
        ExternalBstSet::snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_semantics() {
        let s = ExternalBstSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(&3));
        assert!(s.remove(&3));
        assert!(!s.remove(&3));
    }

    #[test]
    fn concurrent_disjoint_inserts_then_removes() {
        const THREADS: i64 = 4;
        const PER: i64 = 250;
        let s = ExternalBstSet::new();
        std::thread::scope(|sc| {
            for t in 0..THREADS {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..PER {
                        assert!(s.insert(t * PER + i));
                    }
                    for i in 0..PER {
                        assert!(s.remove(&(t * PER + i)));
                    }
                });
            }
        });
        assert!(s.is_empty());
        s.snapshot().check_invariants();
    }

    #[test]
    fn snapshot_stability() {
        let s = ExternalBstSet::new();
        for i in 0..50 {
            s.insert(i);
        }
        let snap = s.snapshot();
        for i in 0..50 {
            s.remove(&i);
        }
        assert_eq!(snap.len(), 50);
        assert!(s.is_empty());
    }
}
