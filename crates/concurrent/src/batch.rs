//! Atomic multi-key batch transactions over the sharded UC map.
//!
//! The paper's point is that path copying makes composite operations
//! cheap: a batch of updates is just another sequential function from one
//! persistent version to the next, installed with a single root CAS. On
//! the sharded map ([`ShardedTreapMap`]) a batch may span *several*
//! roots, so [`ShardedTreapMap::transact`] runs a two-phase commit:
//!
//! 1. **Group** the batch by shard (keys hash to shards exactly as the
//!    per-key operations do).
//! 2. **Single-shard fast path** — if every key lands in one shard, the
//!    batch is applied through that shard's ordinary lock-free
//!    load/path-copy/CAS loop ([`pathcopy_core::PathCopyUc::update`]);
//!    no locks, no freezing. This keeps the common case exactly as cheap
//!    as the paper's construction.
//! 3. **Multi-shard commit** — acquire the involved shards' commit locks
//!    in ascending shard-index order (deadlock-free; these locks only
//!    exclude *rival multi-shard commits* — per-key operations never
//!    take them), speculatively build every involved shard's new
//!    persistent root by path copying, then **freeze** each shard root
//!    in ascending order — backing the window out and re-copying if a
//!    concurrent per-key update moved a root — and finally install all
//!    new roots. Freezing (see
//!    [`pathcopy_core::VersionCell::try_freeze`]) makes concurrent reads
//!    of the involved shards spin for the handful of CASes the install
//!    window lasts, which is precisely what makes the whole batch flip
//!    atomically: no reader, per-key writer, or
//!    [`ShardedTreapMap::snapshot_all`] can observe some shards
//!    post-batch and others pre-batch.
//!
//! Within a batch, operations apply in order: a [`BatchOp::Get`] after a
//! [`BatchOp::Insert`] of the same key sees the inserted value. Across
//! threads the whole batch is one linearizable operation.
//!
//! ```
//! use pathcopy_concurrent::{BatchOp, BatchResult, ShardedTreapMap};
//!
//! let m: ShardedTreapMap<&'static str, i64> = ShardedTreapMap::with_shards(8);
//! m.insert("alice", 100);
//! m.insert("bob", 0);
//!
//! // Move 30 from alice to bob atomically, whatever shards they hash to.
//! let results = m.transact(&[
//!     BatchOp::Insert("alice", 70),
//!     BatchOp::Insert("bob", 30),
//!     BatchOp::Get("alice"),
//! ]);
//! assert_eq!(results[0], BatchResult::Inserted(Some(100)));
//! assert_eq!(results[1], BatchResult::Inserted(Some(0)));
//! assert_eq!(results[2], BatchResult::Got(Some(70))); // sees the batch's own write
//! ```

use std::collections::BTreeMap;
use std::hash::Hash;
use std::sync::Arc;

use pathcopy_core::{BackoffPolicy, DiffEntry, Update};
use pathcopy_trees::TreapMap as PTreapMap;

use crate::sharded::{shard_index, ShardedTreapMap};

/// One operation inside a [`ShardedTreapMap::transact`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp<K, V> {
    /// Read the value at a key (at the batch's linearization point,
    /// seeing earlier writes of the same batch).
    Get(K),
    /// Insert or overwrite a key.
    Insert(K, V),
    /// Remove a key.
    Remove(K),
    /// Compare-and-set one key: if the current value equals `expected`,
    /// store `new` (`None` removes the key); otherwise leave it alone.
    Cas {
        /// The key to compare and set.
        key: K,
        /// Value the key must currently hold (`None` = absent).
        expected: Option<V>,
        /// Value to store on match (`None` removes the key).
        new: Option<V>,
    },
}

impl<K, V> BatchOp<K, V> {
    fn key(&self) -> &K {
        match self {
            BatchOp::Get(k) | BatchOp::Remove(k) | BatchOp::Insert(k, _) => k,
            BatchOp::Cas { key, .. } => key,
        }
    }
}

/// Per-operation outcome of a [`ShardedTreapMap::transact`] batch, in
/// batch order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchResult<V> {
    /// Result of a [`BatchOp::Get`]: the value, if present.
    Got(Option<V>),
    /// Result of a [`BatchOp::Insert`]: the previous value, if any.
    Inserted(Option<V>),
    /// Result of a [`BatchOp::Remove`]: the removed value, if any.
    Removed(Option<V>),
    /// Result of a [`BatchOp::Cas`]: whether the comparison matched and
    /// the write was applied.
    Cas(bool),
}

/// Converts a snapshot-to-snapshot diff into the batch that replays it:
/// `Added`/`Changed` become [`BatchOp::Insert`] of the new value,
/// `Removed` becomes [`BatchOp::Remove`].
///
/// Applying the result through [`ShardedTreapMap::transact`] moves a map
/// holding the older version to the newer one **atomically** — the
/// replication layer's catch-up step: a replica at version `a` receives
/// `a.diff(&b)` and flips to `b` in one linearizable operation, so its
/// readers only ever observe published versions.
///
/// ```
/// use pathcopy_concurrent::{diff_to_ops, ShardedTreapMap};
/// use pathcopy_core::{MapSnapshot as _, Snapshottable as _};
///
/// let primary: ShardedTreapMap<i64, i64> = ShardedTreapMap::with_shards(4);
/// primary.insert(1, 10);
/// let old = primary.snapshot();
/// primary.insert(2, 20);
/// primary.remove(&1);
/// let new = primary.snapshot();
///
/// let replica: ShardedTreapMap<i64, i64> = ShardedTreapMap::with_shards(4);
/// replica.insert(1, 10); // replica holds the old version
/// replica.transact(&diff_to_ops(&old.diff(&new)));
/// assert_eq!(replica.snapshot().to_sorted_vec(), vec![(2, 20)]);
/// ```
pub fn diff_to_ops<K: Clone, V: Clone>(diff: &[DiffEntry<K, V>]) -> Vec<BatchOp<K, V>> {
    diff.iter()
        .map(|e| match e {
            DiffEntry::Added(k, v) => BatchOp::Insert(k.clone(), v.clone()),
            DiffEntry::Changed(k, _, v) => BatchOp::Insert(k.clone(), v.clone()),
            DiffEntry::Removed(k, _) => BatchOp::Remove(k.clone()),
        })
        .collect()
}

/// Which [`BatchOp::Cas`] guards of a guarded batch failed — the payload
/// of a [`ShardedTreapMap::transact_guarded`] abort, as op indices into
/// the submitted batch, in batch order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardAbort {
    /// Indices (into the batch) of the `Cas` ops whose guards failed.
    pub failed: Vec<usize>,
}

/// Collects the batch indices of failed `Cas` guards in one shard's
/// speculative results.
fn failed_guards<V>(idxs: &[usize], results: &[BatchResult<V>]) -> Vec<usize> {
    idxs.iter()
        .zip(results)
        .filter(|(_, r)| matches!(r, BatchResult::Cas(false)))
        .map(|(&i, _)| i)
        .collect()
}

/// Applies a shard's slice of the batch (op indices `idxs`, in batch
/// order) to `map`, returning the new version, the per-op results, and
/// whether anything structurally changed.
fn apply_shard_ops<K, V>(
    map: &PTreapMap<K, V>,
    batch: &[BatchOp<K, V>],
    idxs: &[usize],
) -> (PTreapMap<K, V>, Vec<BatchResult<V>>, bool)
where
    K: Ord + Clone + Hash,
    V: Clone + PartialEq,
{
    let mut cur = map.clone();
    let mut changed = false;
    let mut results = Vec::with_capacity(idxs.len());
    for &i in idxs {
        let result = match &batch[i] {
            BatchOp::Get(k) => BatchResult::Got(cur.get(k).cloned()),
            BatchOp::Insert(k, v) => {
                let (next, prev) = cur.insert(k.clone(), v.clone());
                cur = next;
                changed = true;
                BatchResult::Inserted(prev)
            }
            BatchOp::Remove(k) => match cur.remove(k) {
                Some((next, v)) => {
                    cur = next;
                    changed = true;
                    BatchResult::Removed(Some(v))
                }
                None => BatchResult::Removed(None),
            },
            BatchOp::Cas { key, expected, new } => {
                if cur.get(key) == expected.as_ref() {
                    match new {
                        Some(v) => {
                            let (next, _) = cur.insert(key.clone(), v.clone());
                            cur = next;
                            changed = true;
                        }
                        None => {
                            if let Some((next, _)) = cur.remove(key) {
                                cur = next;
                                changed = true;
                            }
                        }
                    }
                    BatchResult::Cas(true)
                } else {
                    BatchResult::Cas(false)
                }
            }
        };
        results.push(result);
    }
    (cur, results, changed)
}

impl<K, V> ShardedTreapMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + PartialEq + Send + Sync,
{
    /// Atomically applies a batch of operations that may span shards,
    /// returning one [`BatchResult`] per op, in batch order.
    ///
    /// The whole batch is a single linearizable operation: no concurrent
    /// reader, per-key writer, or [`snapshot_all`](Self::snapshot_all)
    /// ever observes it partially applied. Operations inside the batch
    /// apply in order, so later ops see earlier ops' writes (including
    /// across a [`BatchOp::Cas`] on the same key).
    ///
    /// Cost model (the regime the paper predicts path copying wins):
    ///
    /// * batch touching **one shard** — the ordinary lock-free CAS loop,
    ///   a single root install for the whole batch;
    /// * batch touching **`k` shards** — ascending-order acquisition of
    ///   `k` commit locks (contended only by other multi-shard batches),
    ///   speculative path-copying of `k` new roots, then a freeze +
    ///   install window of `2k` atomic operations during which reads of
    ///   the involved shards briefly spin.
    ///
    /// A failed [`BatchOp::Cas`] does not abort the batch; it simply
    /// reports `Cas(false)` while the rest of the batch commits.
    ///
    /// # Examples
    ///
    /// ```
    /// use pathcopy_concurrent::{BatchOp, BatchResult, ShardedTreapMap};
    ///
    /// let m: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(4);
    /// let r = m.transact(&[
    ///     BatchOp::Insert(1, 10),
    ///     BatchOp::Insert(2, 20),
    ///     BatchOp::Cas { key: 1, expected: Some(10), new: Some(11) },
    ///     BatchOp::Remove(3),
    /// ]);
    /// assert_eq!(
    ///     r,
    ///     vec![
    ///         BatchResult::Inserted(None),
    ///         BatchResult::Inserted(None),
    ///         BatchResult::Cas(true),
    ///         BatchResult::Removed(None),
    ///     ]
    /// );
    /// ```
    pub fn transact(&self, batch: &[BatchOp<K, V>]) -> Vec<BatchResult<V>> {
        match self.transact_impl(batch, false) {
            Ok(results) => results,
            Err(_) => unreachable!("unguarded batches never abort"),
        }
    }

    /// Sinfonia-style guarded mini-transaction: like
    /// [`transact`](Self::transact), except that if **any**
    /// [`BatchOp::Cas`] guard fails, the *whole batch aborts* — zero
    /// writes land, and the failed guard indices come back as a
    /// [`GuardAbort`].
    ///
    /// The abort is linearizable: on the single-shard path the guards are
    /// evaluated against the root the no-CAS return linearizes at, and on
    /// the multi-shard path they are evaluated against the validated
    /// bases of a successful freeze pass — every involved shard is frozen
    /// at the moment the abort decision is made, so no interleaving can
    /// make a concurrent observer disagree about whether the batch
    /// happened.
    ///
    /// Within a committing batch, semantics match `transact`: ops apply
    /// in order and later ops (including guards) see earlier writes of
    /// the same batch.
    ///
    /// # Examples
    ///
    /// ```
    /// use pathcopy_concurrent::{BatchOp, GuardAbort, ShardedTreapMap};
    ///
    /// let m: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(4);
    /// m.insert(1, 10);
    /// // The guard is stale, so the inserts must not land either.
    /// let err = m
    ///     .transact_guarded(&[
    ///         BatchOp::Cas { key: 1, expected: Some(99), new: Some(100) },
    ///         BatchOp::Insert(2, 20),
    ///     ])
    ///     .unwrap_err();
    /// assert_eq!(err, GuardAbort { failed: vec![0] });
    /// assert_eq!(m.get(&2), None, "aborted batch wrote nothing");
    /// ```
    pub fn transact_guarded(
        &self,
        batch: &[BatchOp<K, V>],
    ) -> Result<Vec<BatchResult<V>>, GuardAbort> {
        self.transact_impl(batch, true)
    }

    fn transact_impl(
        &self,
        batch: &[BatchOp<K, V>],
        guarded: bool,
    ) -> Result<Vec<BatchResult<V>>, GuardAbort> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }

        // Phase 0: group op indices by shard, preserving batch order
        // within each shard. BTreeMap iteration gives ascending shard
        // indices, which is the global lock/freeze order.
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, op) in batch.iter().enumerate() {
            groups
                .entry(shard_index(op.key(), self.mask))
                .or_default()
                .push(i);
        }

        if groups.len() == 1 {
            // Fast path: the batch lives in one shard, so it is just one
            // sequential composite update — plain lock-free CAS loop. A
            // guarded abort returns through `Update::Keep`, i.e. without
            // a CAS: it linearizes at the root load that evaluated the
            // guards, and nothing is written.
            let (&shard, idxs) = groups.iter().next().unwrap();
            return self.shards[shard].update(|map| {
                let (next, results, changed) = apply_shard_ops(map, batch, idxs);
                if guarded {
                    let failed = failed_guards(idxs, &results);
                    if !failed.is_empty() {
                        return Update::Keep(Err(GuardAbort { failed }));
                    }
                }
                if changed {
                    Update::Replace(next, Ok(results))
                } else {
                    Update::Keep(Ok(results))
                }
            });
        }

        // Read-only multi-shard batch: no roots change, so consistency
        // needs no locks and no freezing — a validated double scan over
        // just the involved shards (the `snapshot_all` idiom, sharded.rs)
        // yields a stable cut without blocking anyone.
        if batch.iter().all(|op| matches!(op, BatchOp::Get(_))) {
            let involved: Vec<usize> = groups.keys().copied().collect();
            let mut pass: Vec<Arc<PTreapMap<K, V>>> = involved
                .iter()
                .map(|&i| self.shards[i].snapshot())
                .collect();
            loop {
                let mut stable = true;
                for (j, &i) in involved.iter().enumerate() {
                    if !self.shards[i].is_current_version(&pass[j]) {
                        pass[j] = self.shards[i].snapshot();
                        stable = false;
                    }
                }
                if stable {
                    break;
                }
            }
            let mut out: Vec<Option<BatchResult<V>>> = vec![None; batch.len()];
            for (j, idxs) in groups.values().enumerate() {
                let (_, results, _) = apply_shard_ops(&pass[j], batch, idxs);
                for (&i, r) in idxs.iter().zip(results) {
                    out[i] = Some(r);
                }
            }
            // A Get-only batch carries no guards, so `guarded` is moot.
            return Ok(out
                .into_iter()
                .map(|r| r.expect("every op resolved"))
                .collect());
        }

        // Phase 1: exclude rival multi-shard commits on any overlapping
        // shard, in ascending order (deadlock-free).
        let _guards: Vec<_> = groups
            .keys()
            .map(|&shard| self.commit_locks[shard].lock())
            .collect();

        // Phase 2: speculatively path-copy each involved shard's new root
        // from its current version. Per-key updates may still move a root
        // under us; that is caught and repaired at freeze time.
        let mut staged: Vec<ShardStage<'_, K, V>> = groups
            .iter()
            .map(|(&shard, idxs)| {
                let base = self.shards[shard].snapshot();
                let (next, results, changed) = apply_shard_ops(&base, batch, idxs);
                ShardStage {
                    shard,
                    idxs,
                    base,
                    next,
                    results,
                    changed,
                }
            })
            .collect();

        // Phase 3: freeze every involved root in ascending order. A
        // freeze fails only if a per-key update moved that root since we
        // copied it; when that happens, back the whole window out
        // (unfreeze everything frozen so far), rebuild that shard's
        // stage, and start the pass over. Two invariants fall out:
        //
        // * the frozen window is always exactly one freeze+install pass
        //   (2k atomic operations) — readers never spin while a rebuild
        //   runs, however contended the shards are;
        // * no user code (`K`/`V` `Ord`/`Clone`/`PartialEq`) ever runs
        //   while any root is frozen, so a panic in user code can unwind
        //   through `transact` without wedging the map behind a leaked
        //   freeze tag.
        //
        // Each restart is caused by a per-key update that committed, so
        // the system as a whole stays lock-free. Between restarts we back
        // off adaptively (exponential spin, capped): the freeze window
        // competes with the per-key CAS loops for the same roots, and an
        // immediate retry under sustained per-key traffic mostly loses the
        // race again — unlike the paper's single-root CAS retry, a restart
        // here repeats a multi-root copy pass, so losing is expensive.
        // Backed-out passes are counted per shard as `freeze_retries`.
        let mut backoff = BackoffPolicy::exponential().start();
        'freeze: loop {
            for j in 0..staged.len() {
                if let Err(current) = self.shards[staged[j].shard].try_freeze_root(&staged[j].base)
                {
                    for prior in &staged[..j] {
                        self.shards[prior.shard].unfreeze_root();
                    }
                    self.shards[staged[j].shard].stats().record_freeze_retry();
                    let (next, results, changed) = apply_shard_ops(&current, batch, staged[j].idxs);
                    let stage = &mut staged[j];
                    stage.base = current;
                    stage.next = next;
                    stage.results = results;
                    stage.changed = changed;
                    backoff.wait();
                    continue 'freeze;
                }
            }
            break;
        }

        // Guard check, inside the frozen window: the freeze pass proved
        // every staged base simultaneously current, so the speculative
        // results are a consistent evaluation of all guards. Any failed
        // guard aborts the whole batch by unfreezing without installing —
        // zero writes, and the abort linearizes in the window.
        if guarded {
            let mut failed: Vec<usize> = staged
                .iter()
                .flat_map(|stage| failed_guards(stage.idxs, &stage.results))
                .collect();
            if !failed.is_empty() {
                for stage in &staged {
                    self.shards[stage.shard].unfreeze_root();
                }
                failed.sort_unstable();
                return Err(GuardAbort { failed });
            }
        }

        // Phase 4: install. All involved roots are frozen, so no read of
        // any of them completes until its install below — the batch
        // becomes visible everywhere at once.
        let mut out: Vec<Option<BatchResult<V>>> = (0..batch.len()).map(|_| None).collect();
        for stage in staged {
            let uc = &self.shards[stage.shard];
            if stage.changed {
                uc.install_frozen_root(stage.next);
            } else {
                uc.unfreeze_root();
            }
            for (&i, r) in stage.idxs.iter().zip(stage.results) {
                out[i] = Some(r);
            }
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("every op resolved"))
            .collect())
    }
}

/// Per-shard staging area for a multi-shard commit.
struct ShardStage<'a, K, V> {
    shard: usize,
    idxs: &'a [usize],
    /// The version the new root was copied from; must still be current
    /// at freeze time.
    base: Arc<PTreapMap<K, V>>,
    next: PTreapMap<K, V>,
    results: Vec<BatchResult<V>>,
    changed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch_is_a_noop() {
        let m: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(4);
        assert!(m.transact(&[]).is_empty());
        assert_eq!(m.stats_snapshot().ops, 0);
    }

    #[test]
    fn batch_ops_apply_in_order_within_and_across_shards() {
        let m: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(8);
        let r = m.transact(&[
            BatchOp::Insert(1, 10),
            BatchOp::Get(1),
            BatchOp::Insert(1, 11),
            BatchOp::Get(1),
            BatchOp::Remove(2),
            BatchOp::Insert(2, 20),
            BatchOp::Remove(2),
        ]);
        assert_eq!(
            r,
            vec![
                BatchResult::Inserted(None),
                BatchResult::Got(Some(10)),
                BatchResult::Inserted(Some(10)),
                BatchResult::Got(Some(11)),
                BatchResult::Removed(None),
                BatchResult::Inserted(None),
                BatchResult::Removed(Some(20)),
            ]
        );
        assert_eq!(m.get(&1), Some(11));
        assert_eq!(m.get(&2), None);
    }

    #[test]
    fn cas_applies_only_on_match_and_sees_batch_writes() {
        let m: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(8);
        m.insert(7, 70);
        let r = m.transact(&[
            BatchOp::Cas {
                key: 7,
                expected: Some(69),
                new: Some(0),
            },
            BatchOp::Cas {
                key: 7,
                expected: Some(70),
                new: Some(71),
            },
            BatchOp::Cas {
                key: 7,
                expected: Some(71),
                new: None,
            },
            BatchOp::Cas {
                key: 8,
                expected: None,
                new: Some(80),
            },
        ]);
        assert_eq!(
            r,
            vec![
                BatchResult::Cas(false),
                BatchResult::Cas(true),
                BatchResult::Cas(true),
                BatchResult::Cas(true),
            ]
        );
        assert_eq!(m.get(&7), None);
        assert_eq!(m.get(&8), Some(80));
    }

    #[test]
    fn read_only_multi_shard_batch_installs_nothing() {
        let m: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(8);
        for k in 0..64 {
            m.insert(k, k);
        }
        let before = m.stats_snapshot();
        let r = m.transact(&(0..64).map(BatchOp::Get).collect::<Vec<_>>());
        for (k, res) in r.into_iter().enumerate() {
            assert_eq!(res, BatchResult::Got(Some(k as u64)));
        }
        let after = m.stats_snapshot();
        assert_eq!(
            after.frozen_installs, before.frozen_installs,
            "pure-read batch must not install any root"
        );
    }

    #[test]
    fn single_shard_batch_takes_the_lock_free_cas_path() {
        // One shard: every batch is single-shard by construction, so the
        // freeze hook must never fire and the plain CAS loop must count
        // the op.
        let m: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(1);
        let r = m.transact(&[
            BatchOp::Insert(1, 1),
            BatchOp::Insert(2, 2),
            BatchOp::Get(1),
        ]);
        assert_eq!(r[2], BatchResult::Got(Some(1)));
        let stats = m.stats_snapshot();
        assert_eq!(stats.frozen_installs, 0, "single-shard batch froze a root");
        assert_eq!(stats.ops, 1, "the batch is one CAS-loop op");
        assert_eq!(stats.freeze_retries, 0, "nothing to back out");
    }

    #[test]
    fn multi_shard_batch_goes_through_the_freeze_hook() {
        let m: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(16);
        // 64 spread-out keys certainly span >= 2 shards.
        let batch: Vec<_> = (0..64).map(|k| BatchOp::Insert(k, k)).collect();
        m.transact(&batch);
        let stats = m.stats_snapshot();
        assert!(
            stats.frozen_installs >= 2,
            "cross-shard batch must install via the freeze hook (got {})",
            stats.frozen_installs
        );
        assert_eq!(
            stats.freeze_retries, 0,
            "no concurrent writers, so the first freeze pass must stick"
        );
        for k in 0..64 {
            assert_eq!(m.get(&k), Some(k));
        }
    }

    #[test]
    fn guarded_single_shard_abort_writes_nothing() {
        // One shard forces the lock-free fast path.
        let m: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(1);
        m.insert(1, 10);
        let err = m
            .transact_guarded(&[
                BatchOp::Insert(2, 20),
                BatchOp::Cas {
                    key: 1,
                    expected: Some(11), // stale guard
                    new: Some(12),
                },
                BatchOp::Insert(3, 30),
            ])
            .unwrap_err();
        assert_eq!(err.failed, vec![1]);
        assert_eq!(m.get(&1), Some(10));
        assert_eq!(m.get(&2), None, "write before the failed guard aborted");
        assert_eq!(m.get(&3), None, "write after the failed guard aborted");
        let stats = m.stats_snapshot();
        assert_eq!(stats.frozen_installs, 0);
        // The abort itself is a no-CAS op on the fast path.
        assert_eq!(stats.noop_updates, 1);
    }

    #[test]
    fn guarded_multi_shard_abort_writes_nothing_and_reports_all_failures() {
        let m: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(16);
        m.insert(1, 10);
        m.insert(2, 20);
        let installs_before = m.stats_snapshot().frozen_installs;
        // 64 spread-out inserts span many shards; two stale guards.
        let mut batch: Vec<BatchOp<u64, u64>> = (100..164).map(|k| BatchOp::Insert(k, k)).collect();
        batch.push(BatchOp::Cas {
            key: 1,
            expected: Some(11),
            new: Some(12),
        });
        batch.push(BatchOp::Cas {
            key: 2,
            expected: Some(20), // this one would match...
            new: Some(21),
        });
        batch.push(BatchOp::Cas {
            key: 2,
            expected: Some(22), // ...but this one is stale
            new: Some(23),
        });
        let err = m.transact_guarded(&batch).unwrap_err();
        assert_eq!(err.failed, vec![64, 66], "failed guard indices, in order");
        for k in 100..164 {
            assert_eq!(m.get(&k), None, "aborted batch leaked key {k}");
        }
        assert_eq!(m.get(&1), Some(10));
        assert_eq!(m.get(&2), Some(20), "matching guard's write aborted too");
        assert_eq!(
            m.stats_snapshot().frozen_installs,
            installs_before,
            "abort must not install any root"
        );
    }

    #[test]
    fn guarded_batch_with_passing_guards_commits_like_transact() {
        let m: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(8);
        m.insert(1, 10);
        let r = m
            .transact_guarded(&[
                BatchOp::Cas {
                    key: 1,
                    expected: Some(10),
                    new: Some(11),
                },
                BatchOp::Insert(2, 20),
                BatchOp::Cas {
                    key: 2,
                    expected: Some(20), // sees the batch's own write
                    new: Some(21),
                },
            ])
            .expect("all guards match");
        assert_eq!(
            r,
            vec![
                BatchResult::Cas(true),
                BatchResult::Inserted(None),
                BatchResult::Cas(true),
            ]
        );
        assert_eq!(m.get(&1), Some(11));
        assert_eq!(m.get(&2), Some(21));
    }

    #[test]
    fn concurrent_guarded_toggles_are_atomic() {
        // A guarded counter: each increment guards on the value it last
        // observed; rivals make guards fail, and a failed guard must
        // abort the rider keys too, so the riders always mirror the
        // number of *successful* increments.
        let m: ShardedTreapMap<u64, i64> = ShardedTreapMap::with_shards(8);
        m.insert(0, 0);
        const THREADS: usize = 4;
        const TRIES: usize = 200;
        let committed = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let m = &m;
                let committed = &committed;
                s.spawn(move || {
                    for i in 0..TRIES {
                        let seen = m.get(&0).unwrap();
                        let rider = 1000 + ((t * TRIES + i) as u64);
                        match m.transact_guarded(&[
                            BatchOp::Cas {
                                key: 0,
                                expected: Some(seen),
                                new: Some(seen + 1),
                            },
                            BatchOp::Insert(rider, seen + 1),
                        ]) {
                            Ok(_) => {
                                committed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            Err(abort) => {
                                assert_eq!(abort.failed, vec![0]);
                                assert_eq!(m.get(&rider), None, "aborted rider leaked");
                            }
                        }
                    }
                });
            }
        });
        let commits = committed.load(std::sync::atomic::Ordering::Relaxed) as i64;
        assert_eq!(m.get(&0), Some(commits), "counter equals commits");
        let riders = m.snapshot_all().len() - 1;
        assert_eq!(riders as i64, commits, "one rider per committed batch");
    }

    #[test]
    fn diff_to_ops_replays_a_diff() {
        use pathcopy_core::api::MapSnapshot as _;
        use pathcopy_core::Snapshottable as _;
        let primary: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(4);
        for k in 0..50 {
            primary.insert(k, k);
        }
        let old = primary.snapshot();
        primary.insert(3, 33);
        primary.remove(&7);
        primary.insert(100, 100);
        let new = primary.snapshot();

        let replica: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(4);
        for k in 0..50 {
            replica.insert(k, k);
        }
        replica.transact(&diff_to_ops(&old.diff(&new)));
        assert_eq!(
            replica.snapshot().to_sorted_vec(),
            new.to_sorted_vec(),
            "replaying the diff reconstructs the newer version"
        );
    }

    #[test]
    fn concurrent_disjoint_batches_all_commit() {
        let m: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(8);
        const THREADS: u64 = 8;
        const BATCHES: u64 = 50;
        const SPAN: u64 = 16;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let m = &m;
                s.spawn(move || {
                    for b in 0..BATCHES {
                        let base = (t * BATCHES + b) * SPAN;
                        let batch: Vec<_> =
                            (base..base + SPAN).map(|k| BatchOp::Insert(k, k)).collect();
                        for r in m.transact(&batch) {
                            assert_eq!(r, BatchResult::Inserted(None));
                        }
                    }
                });
            }
        });
        let snap = m.snapshot_all();
        assert_eq!(snap.len(), (THREADS * BATCHES * SPAN) as usize);
    }

    #[test]
    fn batches_interleaved_with_per_key_ops_lose_nothing() {
        // Writers hammer per-key inserts on even keys while a transactor
        // commits cross-shard batches on odd keys; both must fully land.
        let m: ShardedTreapMap<u64, u64> = ShardedTreapMap::with_shards(8);
        const N: u64 = 4_000;
        std::thread::scope(|s| {
            let m_ref = &m;
            s.spawn(move || {
                for k in (0..N).step_by(2) {
                    assert_eq!(m_ref.insert(k, k), None);
                }
            });
            s.spawn(move || {
                for chunk in (1..N).step_by(2).collect::<Vec<_>>().chunks(8) {
                    let batch: Vec<_> = chunk.iter().map(|&k| BatchOp::Insert(k, k)).collect();
                    m_ref.transact(&batch);
                }
            });
        });
        let snap = m.snapshot_all();
        assert_eq!(snap.len(), N as usize);
        assert!(snap.to_sorted_vec().iter().map(|(k, _)| *k).eq(0..N));
    }
}
