//! Sharded universal construction: hash-partitioning keys across many
//! independent `Root_Ptr` registers.
//!
//! The paper's construction serializes every successful update through a
//! single [`VersionCell`](pathcopy_core::VersionCell) CAS. Its own model
//! (§3) shows that this stops scaling once the per-update path-copying
//! work no longer dominates the root CAS — the single register becomes
//! the ceiling. [`ShardedTreapMap`] pushes past that ceiling the way
//! production stores do: keys are hash-partitioned across `N` independent
//! [`PathCopyUc`] roots, so updates to different shards never contend,
//! while every per-shard operation keeps the UC's lock-freedom and
//! linearizability.
//!
//! What is preserved and what is traded:
//!
//! * **Per-key operations** (`insert`, `remove`, `get`, `compute`, …)
//!   remain linearizable: a key lives in exactly one shard, and that
//!   shard is a plain path-copying UC.
//! * **Per-shard snapshots** ([`ShardedTreapMap::snapshot_shard`]) remain
//!   O(1), and wait-free except while a cross-shard
//!   [`transact`](ShardedTreapMap::transact) is mid-install on the shard
//!   (a window of a few atomic operations, during which reads of the
//!   involved shards briefly spin so the batch flips atomically).
//! * **Whole-map snapshots** ([`ShardedTreapMap::snapshot_all`]) need a
//!   validated double scan over the shard roots: the scan retries until
//!   it observes every root unchanged across two passes, which proves a
//!   moment existed between the passes when all recorded versions were
//!   simultaneously current (versions are never re-installed, so pointer
//!   equality across both passes rules out intermediate changes). This
//!   is lock-free but no longer wait-free — the price of a consistent
//!   cut across `N` registers without a global serialization point.
//! * **Ordered whole-map iteration** requires merging shards
//!   ([`ShardedSnapshot::to_sorted_vec`]); hash partitioning destroys
//!   cross-shard key order.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use pathcopy_core::{BackoffPolicy, PathCopyUc, StatsSnapshot, Update};
use pathcopy_trees::hash::splitmix64;
use pathcopy_trees::TreapMap as PTreapMap;

/// A lock-free concurrent ordered-per-shard map: keys are hash-partitioned
/// across `N` independent path-copying universal constructions.
///
/// # Examples
///
/// ```
/// use pathcopy_concurrent::ShardedTreapMap;
///
/// let m = ShardedTreapMap::with_shards(8);
/// m.insert(1, "one");
/// m.insert(2, "two");
/// assert_eq!(m.get(&1), Some("one"));
///
/// // A coherent cut across all shards:
/// let snap = m.snapshot_all();
/// m.remove(&2);
/// assert_eq!(snap.get(&2), Some(&"two"));
/// assert_eq!(snap.len(), 2);
/// ```
pub struct ShardedTreapMap<K, V> {
    pub(crate) shards: Box<[Shard<K, V>]>,
    /// `shards.len() - 1`; shard count is always a power of two.
    pub(crate) mask: u64,
    /// Per-shard commit locks for cross-shard batch transactions
    /// ([`ShardedTreapMap::transact`]): a multi-shard commit acquires the
    /// locks of its shards in ascending index order (deadlock-free) to
    /// exclude rival multi-shard commits. Per-key operations and
    /// single-shard batches never touch these locks.
    pub(crate) commit_locks: Box<[CachePadded<Mutex<()>>]>,
}

/// One shard: a cache-padded single-root UC, so neighbouring `Root_Ptr`
/// registers never share a line (the whole point is independent CAS
/// targets).
pub(crate) type Shard<K, V> = CachePadded<PathCopyUc<PTreapMap<K, V>>>;

/// Salt folded into the shard hash so shard choice is decorrelated from
/// the treap priority (which is also derived from the key's hash).
const SHARD_SALT: u64 = 0x9e6c_63d0_876a_46b1;

pub(crate) fn shard_index<K: Hash + ?Sized>(key: &K, mask: u64) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (splitmix64(h.finish() ^ SHARD_SALT) & mask) as usize
}

impl<K, V> Default for ShardedTreapMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    /// An 8-shard map; see [`ShardedTreapMap::with_shards`] to choose.
    fn default() -> Self {
        Self::with_shards(8)
    }
}

impl<K, V> ShardedTreapMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Creates an empty map with `shards` partitions (rounded up to a
    /// power of two, minimum 1). With 1 shard this is exactly the paper's
    /// single-root construction.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_shards_and_backoff(shards, BackoffPolicy::None)
    }

    /// [`with_shards`](Self::with_shards) with an explicit per-shard CAS
    /// retry backoff policy.
    pub fn with_shards_and_backoff(shards: usize, backoff: BackoffPolicy) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| CachePadded::new(PathCopyUc::with_backoff(PTreapMap::new(), backoff)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let commit_locks = (0..n)
            .map(|_| CachePadded::new(Mutex::new(())))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedTreapMap {
            shards,
            mask: (n - 1) as u64,
            commit_locks,
        }
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for<Q: Hash + ?Sized>(&self, key: &Q) -> &PathCopyUc<PTreapMap<K, V>> {
        &self.shards[shard_index(key, self.mask)]
    }

    /// Inserts `key -> value`, returning the previous value if any.
    /// Lock-free; contends only with updates that hash to the same shard.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard_for(&key).update(move |map| {
            let (next, old) = map.insert(key.clone(), value.clone());
            Update::Replace(next, old)
        })
    }

    /// Inserts only if `key` is absent; returns `true` on success. When
    /// the key exists, no CAS is performed.
    pub fn insert_if_absent(&self, key: K, value: V) -> bool {
        self.shard_for(&key).update(move |map| {
            match map.insert_if_absent(key.clone(), value.clone()) {
                Some(next) => Update::Replace(next, true),
                None => Update::Keep(false),
            }
        })
    }

    /// Removes `key`, returning its value if present (no CAS when absent).
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard_for(key).update(|map| match map.remove(key) {
            Some((next, v)) => Update::Replace(next, Some(v)),
            None => Update::Keep(None),
        })
    }

    /// Atomically applies `f` to the value at `key` (or `None` if absent)
    /// and stores its result (`None` removes the key). Returns the
    /// previous value. Linearized at the owning shard's root CAS.
    ///
    /// Like [`PathCopyUc::update`], `f` may run several times (once per
    /// CAS attempt under contention), so it must be a pure function of
    /// the value it is given — side effects would fire once per attempt.
    pub fn compute(&self, key: &K, f: impl Fn(Option<&V>) -> Option<V>) -> Option<V> {
        self.shard_for(key).update(|map| {
            let old = map.get(key).cloned();
            match f(old.as_ref()) {
                Some(new_v) => {
                    let (next, prev) = map.insert(key.clone(), new_v);
                    Update::Replace(next, prev)
                }
                None => match map.remove(key) {
                    Some((next, prev)) => Update::Replace(next, Some(prev)),
                    None => Update::Keep(None),
                },
            }
        })
    }

    /// Looks up `key`, cloning the value. Wait-free, except that it
    /// briefly spins if a cross-shard [`transact`](Self::transact) is
    /// mid-install on the owning shard.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard_for(key).read(|map| map.get(key).cloned())
    }

    /// `true` if `key` is present. Wait-free, with the same
    /// mid-install caveat as [`get`](Self::get).
    pub fn contains_key(&self, key: &K) -> bool {
        self.shard_for(key).read(|map| map.contains_key(key))
    }

    /// Total number of entries, summed shard by shard. Each per-shard
    /// count is exact; under concurrent updates the sum is a weakly
    /// consistent estimate (like `ConcurrentHashMap::size`). Use
    /// [`snapshot_all`](Self::snapshot_all)`.len()` for an exact count.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read(|m| m.len())).sum()
    }

    /// `true` if every shard is empty (weakly consistent, like
    /// [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read(|m| m.is_empty()))
    }

    /// O(1) snapshot of the single shard owning `key` (wait-free, with
    /// the mid-install caveat of [`get`](Self::get)).
    ///
    /// All operations on keys that hash to this shard are linearizable
    /// against the returned version; keys of other shards are absent.
    pub fn snapshot_shard_of(&self, key: &K) -> Arc<PTreapMap<K, V>> {
        self.shard_for(key).snapshot()
    }

    /// O(1) snapshot of shard `index` (wait-free, with the mid-install
    /// caveat of [`get`](Self::get)).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.shard_count()`.
    pub fn snapshot_shard(&self, index: usize) -> Arc<PTreapMap<K, V>> {
        self.shards[index].snapshot()
    }

    /// A coherent point-in-time snapshot of **all** shards.
    ///
    /// Linearizable: retries a double scan until every shard root is
    /// pointer-identical across two passes. Versions are never
    /// re-installed (every committed update allocates a fresh `Arc`, and
    /// the scan holds the first pass's versions alive, so their addresses
    /// cannot be recycled) — equality across both passes therefore proves
    /// each root was unchanged for the whole interval between the end of
    /// pass one and the start of pass two, and any instant in that gap is
    /// a consistent cut. Lock-free, not wait-free: sustained updates on
    /// every shard can force retries.
    pub fn snapshot_all(&self) -> ShardedSnapshot<K, V> {
        let mut pass: Vec<Arc<PTreapMap<K, V>>> =
            self.shards.iter().map(|s| s.snapshot()).collect();
        loop {
            let mut stable = true;
            for (i, shard) in self.shards.iter().enumerate() {
                if !shard.is_current_version(&pass[i]) {
                    pass[i] = shard.snapshot();
                    stable = false;
                }
            }
            if stable {
                return ShardedSnapshot {
                    shards: pass,
                    mask: self.mask,
                };
            }
        }
    }

    /// Merged attempt/retry statistics across all shards.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let mut merged = self.shards[0].stats().snapshot();
        for shard in &self.shards[1..] {
            let s = shard.stats().snapshot();
            merged.ops += s.ops;
            merged.attempts += s.attempts;
            merged.cas_failures += s.cas_failures;
            merged.noop_updates += s.noop_updates;
            merged.reads += s.reads;
            merged.frozen_installs += s.frozen_installs;
            for (acc, v) in merged.attempt_hist.iter_mut().zip(s.attempt_hist) {
                *acc += v;
            }
        }
        merged
    }
}

/// An immutable, coherent point-in-time view of a [`ShardedTreapMap`];
/// see [`ShardedTreapMap::snapshot_all`].
pub struct ShardedSnapshot<K, V> {
    shards: Vec<Arc<PTreapMap<K, V>>>,
    mask: u64,
}

impl<K, V> ShardedSnapshot<K, V>
where
    K: Ord + Clone + Hash,
    V: Clone,
{
    /// Looks up `key` in the snapshot.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.shards[shard_index(key, self.mask)].get(key)
    }

    /// `true` if `key` was present at snapshot time.
    pub fn contains_key(&self, key: &K) -> bool {
        self.shards[shard_index(key, self.mask)].contains_key(key)
    }

    /// Exact number of entries at snapshot time.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// `true` if the map was empty at snapshot time.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Number of shards in the snapshot.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The snapshot of shard `index`.
    pub fn shard(&self, index: usize) -> &Arc<PTreapMap<K, V>> {
        &self.shards[index]
    }

    /// Iterates every entry, shard by shard (ordered within a shard,
    /// unordered across shards).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.shards.iter().flat_map(|s| s.iter())
    }

    /// Collects all entries in global key order (the cross-shard merge
    /// hash partitioning makes necessary).
    pub fn to_sorted_vec(&self) -> Vec<(K, V)> {
        let mut out: Vec<(K, V)> = self.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let m: ShardedTreapMap<i64, ()> = ShardedTreapMap::with_shards(5);
        assert_eq!(m.shard_count(), 8);
        let m: ShardedTreapMap<i64, ()> = ShardedTreapMap::with_shards(0);
        assert_eq!(m.shard_count(), 1);
    }

    #[test]
    fn basic_map_semantics() {
        let m = ShardedTreapMap::with_shards(4);
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.get(&1), Some(11));
        assert!(m.contains_key(&1));
        assert_eq!(m.remove(&1), Some(11));
        assert_eq!(m.remove(&1), None);
        assert!(m.is_empty());
    }

    #[test]
    fn keys_spread_across_shards() {
        let m: ShardedTreapMap<i64, ()> = ShardedTreapMap::with_shards(16);
        for k in 0..4096 {
            m.insert(k, ());
        }
        let snap = m.snapshot_all();
        let loads: Vec<usize> = (0..m.shard_count()).map(|i| snap.shard(i).len()).collect();
        assert_eq!(loads.iter().sum::<usize>(), 4096);
        // Uniform hashing: no shard should be empty or grossly oversized.
        let expect = 4096 / 16;
        for (i, &l) in loads.iter().enumerate() {
            assert!(
                l > expect / 3 && l < expect * 3,
                "shard {i} holds {l} of 4096 keys (expected ~{expect})"
            );
        }
    }

    #[test]
    fn single_shard_degenerates_to_plain_uc() {
        let m: ShardedTreapMap<i64, i64> = ShardedTreapMap::with_shards(1);
        for k in 0..100 {
            m.insert(k, -k);
        }
        assert_eq!(m.snapshot_shard(0).len(), 100);
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn snapshot_all_is_immutable_and_exact() {
        let m = ShardedTreapMap::with_shards(8);
        for k in 0..500i64 {
            m.insert(k, k * 2);
        }
        let snap = m.snapshot_all();
        for k in 0..500 {
            m.remove(&k);
        }
        assert!(m.is_empty());
        assert_eq!(snap.len(), 500);
        for k in 0..500 {
            assert_eq!(snap.get(&k), Some(&(k * 2)));
        }
        let sorted = snap.to_sorted_vec();
        assert!(sorted.iter().map(|(k, _)| *k).eq(0..500));
    }

    #[test]
    fn compute_is_atomic_per_key() {
        let m: ShardedTreapMap<&'static str, u64> = ShardedTreapMap::with_shards(4);
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let m = &m;
                sc.spawn(move || {
                    for _ in 0..500 {
                        m.compute(&"hits", |v| Some(v.copied().unwrap_or(0) + 1));
                    }
                });
            }
        });
        assert_eq!(m.get(&"hits"), Some(2000));
    }

    #[test]
    fn concurrent_inserts_all_land() {
        let m: ShardedTreapMap<i64, i64> = ShardedTreapMap::with_shards(16);
        std::thread::scope(|sc| {
            for t in 0..8i64 {
                let m = &m;
                sc.spawn(move || {
                    for i in 0..500 {
                        let k = t * 500 + i;
                        assert_eq!(m.insert(k, k), None);
                    }
                });
            }
        });
        let snap = m.snapshot_all();
        assert_eq!(snap.len(), 4000);
        assert!(snap.to_sorted_vec().iter().map(|(k, _)| *k).eq(0..4000));
    }

    #[test]
    fn snapshot_all_never_observes_torn_transfers() {
        // A "bank transfer" invariant: two keys (in different shards with
        // high probability) always sum to 0 under paired updates; a
        // coherent snapshot must never see a half-applied pair. With
        // per-shard snapshots taken naively this fails quickly.
        let m: ShardedTreapMap<u32, i64> = ShardedTreapMap::with_shards(16);
        m.insert(0, 0);
        m.insert(1, 0);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|sc| {
            let m_ref = &m;
            let stop_ref = &stop;
            sc.spawn(move || {
                for _ in 0..20_000i64 {
                    m_ref.compute(&0, |v| Some(v.copied().unwrap_or(0) + 1));
                    m_ref.compute(&1, |v| Some(v.copied().unwrap_or(0) - 1));
                }
                stop_ref.store(true, std::sync::atomic::Ordering::Relaxed);
            });
            let mut coherent_cuts = 0u32;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let snap = m.snapshot_all();
                let a = *snap.get(&0).unwrap();
                let b = *snap.get(&1).unwrap();
                // The writer updates key 0 then key 1, so a cut between
                // the two computes may see the sum mid-transfer by design;
                // what must NEVER happen is seeing a *future* value of
                // key 1 with a *past* value of key 0 (sum < 0 is
                // impossible in any prefix-consistent cut).
                assert!(
                    (0..=1).contains(&(a + b)),
                    "torn snapshot: {a} + {b} = {}",
                    a + b
                );
                coherent_cuts += 1;
            }
            assert!(coherent_cuts > 0);
        });
    }

    #[test]
    fn stats_merge_across_shards() {
        let m: ShardedTreapMap<i64, ()> = ShardedTreapMap::with_shards(4);
        for k in 0..100 {
            m.insert(k, ());
        }
        let stats = m.stats_snapshot();
        assert_eq!(stats.ops, 100);
        assert!(stats.attempts >= 100);
    }
}
