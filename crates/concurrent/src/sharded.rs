//! Sharded universal construction: hash-partitioning keys across many
//! independent `Root_Ptr` registers.
//!
//! The paper's construction serializes every successful update through a
//! single [`VersionCell`](pathcopy_core::VersionCell) CAS. Its own model
//! (§3) shows that this stops scaling once the per-update path-copying
//! work no longer dominates the root CAS — the single register becomes
//! the ceiling. [`ShardedTreapMap`] pushes past that ceiling the way
//! production stores do: keys are hash-partitioned across `N` independent
//! [`PathCopyUc`] roots, so updates to different shards never contend,
//! while every per-shard operation keeps the UC's lock-freedom and
//! linearizability.
//!
//! What is preserved and what is traded:
//!
//! * **Per-key operations** (`insert`, `remove`, `get`, `compute`, …)
//!   remain linearizable: a key lives in exactly one shard, and that
//!   shard is a plain path-copying UC.
//! * **Per-shard snapshots** ([`ShardedTreapMap::snapshot_shard`]) remain
//!   O(1), and wait-free except while a cross-shard
//!   [`transact`](ShardedTreapMap::transact) is mid-install on the shard
//!   (a window of a few atomic operations, during which reads of the
//!   involved shards briefly spin so the batch flips atomically).
//! * **Whole-map snapshots** ([`ShardedTreapMap::snapshot_all`]) need a
//!   validated double scan over the shard roots: the scan retries until
//!   it observes every root unchanged across two passes, which proves a
//!   moment existed between the passes when all recorded versions were
//!   simultaneously current (versions are never re-installed, so pointer
//!   equality across both passes rules out intermediate changes). This
//!   is lock-free but no longer wait-free — the price of a consistent
//!   cut across `N` registers without a global serialization point.
//! * **Ordered whole-map iteration** requires merging shards
//!   ([`ShardedSnapshot::to_sorted_vec`]); hash partitioning destroys
//!   cross-shard key order.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::iter::Peekable;
use std::ops::Bound;
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use pathcopy_core::api::{self, DiffEntry};
use pathcopy_core::{BackoffPolicy, PathCopyUc, StatsSnapshot, Update};
use pathcopy_trees::hash::splitmix64;
use pathcopy_trees::{treap, TreapMap as PTreapMap};

use crate::snapshot::TreapRange;

/// A lock-free concurrent ordered-per-shard map: keys are hash-partitioned
/// across `N` independent path-copying universal constructions.
///
/// # Examples
///
/// ```
/// use pathcopy_concurrent::ShardedTreapMap;
///
/// let m = ShardedTreapMap::with_shards(8);
/// m.insert(1, "one");
/// m.insert(2, "two");
/// assert_eq!(m.get(&1), Some("one"));
///
/// // A coherent cut across all shards:
/// let snap = m.snapshot_all();
/// m.remove(&2);
/// assert_eq!(snap.get(&2), Some(&"two"));
/// assert_eq!(snap.len(), 2);
/// ```
pub struct ShardedTreapMap<K, V> {
    pub(crate) shards: Box<[Shard<K, V>]>,
    /// `shards.len() - 1`; shard count is always a power of two.
    pub(crate) mask: u64,
    /// Per-shard commit locks for cross-shard batch transactions
    /// ([`ShardedTreapMap::transact`]): a multi-shard commit acquires the
    /// locks of its shards in ascending index order (deadlock-free) to
    /// exclude rival multi-shard commits. Per-key operations and
    /// single-shard batches never touch these locks.
    pub(crate) commit_locks: Box<[CachePadded<Mutex<()>>]>,
}

/// One shard: a cache-padded single-root UC, so neighbouring `Root_Ptr`
/// registers never share a line (the whole point is independent CAS
/// targets).
pub(crate) type Shard<K, V> = CachePadded<PathCopyUc<PTreapMap<K, V>>>;

/// Salt folded into the shard hash so shard choice is decorrelated from
/// the treap priority (which is also derived from the key's hash).
const SHARD_SALT: u64 = 0x9e6c_63d0_876a_46b1;

pub(crate) fn shard_index<K: Hash + ?Sized>(key: &K, mask: u64) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (splitmix64(h.finish() ^ SHARD_SALT) & mask) as usize
}

impl<K, V> Default for ShardedTreapMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    /// An 8-shard map; see [`ShardedTreapMap::with_shards`] to choose.
    fn default() -> Self {
        Self::with_shards(8)
    }
}

impl<K, V> ShardedTreapMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Creates an empty map with `shards` partitions (rounded up to a
    /// power of two, minimum 1). With 1 shard this is exactly the paper's
    /// single-root construction.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_shards_and_backoff(shards, BackoffPolicy::None)
    }

    /// [`with_shards`](Self::with_shards) with an explicit per-shard CAS
    /// retry backoff policy.
    pub fn with_shards_and_backoff(shards: usize, backoff: BackoffPolicy) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| CachePadded::new(PathCopyUc::with_backoff(PTreapMap::new(), backoff)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let commit_locks = (0..n)
            .map(|_| CachePadded::new(Mutex::new(())))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedTreapMap {
            shards,
            mask: (n - 1) as u64,
            commit_locks,
        }
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for<Q: Hash + ?Sized>(&self, key: &Q) -> &PathCopyUc<PTreapMap<K, V>> {
        &self.shards[shard_index(key, self.mask)]
    }

    /// Inserts `key -> value`, returning the previous value if any.
    /// Lock-free; contends only with updates that hash to the same shard.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard_for(&key).update(move |map| {
            let (next, old) = map.insert(key.clone(), value.clone());
            Update::Replace(next, old)
        })
    }

    /// Inserts only if `key` is absent; returns `true` on success. When
    /// the key exists, no CAS is performed.
    pub fn insert_if_absent(&self, key: K, value: V) -> bool {
        self.shard_for(&key).update(move |map| {
            match map.insert_if_absent(key.clone(), value.clone()) {
                Some(next) => Update::Replace(next, true),
                None => Update::Keep(false),
            }
        })
    }

    /// Removes `key`, returning its value if present (no CAS when absent).
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard_for(key).update(|map| match map.remove(key) {
            Some((next, v)) => Update::Replace(next, Some(v)),
            None => Update::Keep(None),
        })
    }

    /// Atomically applies `f` to the value at `key` (or `None` if absent)
    /// and stores its result (`None` removes the key). Returns the
    /// previous value. Linearized at the owning shard's root CAS.
    ///
    /// Like [`PathCopyUc::update`], `f` may run several times (once per
    /// CAS attempt under contention), so it must be a pure function of
    /// the value it is given — side effects would fire once per attempt.
    pub fn compute(&self, key: &K, f: impl Fn(Option<&V>) -> Option<V>) -> Option<V> {
        self.shard_for(key).update(|map| {
            let old = map.get(key).cloned();
            match f(old.as_ref()) {
                Some(new_v) => {
                    let (next, prev) = map.insert(key.clone(), new_v);
                    Update::Replace(next, prev)
                }
                None => match map.remove(key) {
                    Some((next, prev)) => Update::Replace(next, Some(prev)),
                    None => Update::Keep(None),
                },
            }
        })
    }

    /// Looks up `key`, cloning the value. Wait-free, except that it
    /// briefly spins if a cross-shard [`transact`](Self::transact) is
    /// mid-install on the owning shard.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard_for(key).read(|map| map.get(key).cloned())
    }

    /// `true` if `key` is present. Wait-free, with the same
    /// mid-install caveat as [`get`](Self::get).
    pub fn contains_key(&self, key: &K) -> bool {
        self.shard_for(key).read(|map| map.contains_key(key))
    }

    /// Total number of entries, summed shard by shard.
    ///
    /// **Not a linearizable count.** Each per-shard count is exact, but
    /// the shards are read at different moments, so under concurrent
    /// updates the sum can correspond to no single point in time — e.g.
    /// a cross-shard [`transact`](Self::transact) that removes a key
    /// from one shard and inserts one into another can be observed
    /// half-summed, skewing the total by ±1 per in-flight batch (like
    /// `ConcurrentHashMap::size`). For an exact, linearizable count take
    /// a coherent cut: [`snapshot_all`](Self::snapshot_all)`.len()`
    /// (the trait form is
    /// [`Snapshottable::snapshot`](pathcopy_core::Snapshottable::snapshot)
    /// + [`MapSnapshot::len`](pathcopy_core::MapSnapshot::len)).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read(|m| m.len())).sum()
    }

    /// `true` if every shard is empty (weakly consistent, like
    /// [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read(|m| m.is_empty()))
    }

    /// O(1) snapshot of the single shard owning `key` (wait-free, with
    /// the mid-install caveat of [`get`](Self::get)).
    ///
    /// All operations on keys that hash to this shard are linearizable
    /// against the returned version; keys of other shards are absent.
    pub fn snapshot_shard_of(&self, key: &K) -> Arc<PTreapMap<K, V>> {
        self.shard_for(key).snapshot()
    }

    /// O(1) snapshot of shard `index` (wait-free, with the mid-install
    /// caveat of [`get`](Self::get)).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.shard_count()`.
    pub fn snapshot_shard(&self, index: usize) -> Arc<PTreapMap<K, V>> {
        self.shards[index].snapshot()
    }

    /// A coherent point-in-time snapshot of **all** shards.
    ///
    /// Linearizable: retries a double scan until every shard root is
    /// pointer-identical across two passes. Versions are never
    /// re-installed (every committed update allocates a fresh `Arc`, and
    /// the scan holds the first pass's versions alive, so their addresses
    /// cannot be recycled) — equality across both passes therefore proves
    /// each root was unchanged for the whole interval between the end of
    /// pass one and the start of pass two, and any instant in that gap is
    /// a consistent cut. Lock-free, not wait-free: sustained updates on
    /// every shard can force retries.
    pub fn snapshot_all(&self) -> ShardedSnapshot<K, V> {
        let mut pass: Vec<Arc<PTreapMap<K, V>>> =
            self.shards.iter().map(|s| s.snapshot()).collect();
        loop {
            let mut stable = true;
            for (i, shard) in self.shards.iter().enumerate() {
                if !shard.is_current_version(&pass[i]) {
                    pass[i] = shard.snapshot();
                    stable = false;
                }
            }
            if stable {
                return ShardedSnapshot {
                    shards: pass,
                    mask: self.mask,
                };
            }
        }
    }

    /// Merged attempt/retry statistics across all shards.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let mut merged = self.shards[0].stats().snapshot();
        for shard in &self.shards[1..] {
            let s = shard.stats().snapshot();
            merged.ops += s.ops;
            merged.attempts += s.attempts;
            merged.cas_failures += s.cas_failures;
            merged.noop_updates += s.noop_updates;
            merged.reads += s.reads;
            merged.frozen_installs += s.frozen_installs;
            merged.freeze_retries += s.freeze_retries;
            for (acc, v) in merged.attempt_hist.iter_mut().zip(s.attempt_hist) {
                *acc += v;
            }
        }
        merged
    }
}

/// An immutable, coherent point-in-time view of a [`ShardedTreapMap`];
/// see [`ShardedTreapMap::snapshot_all`].
///
/// Implements [`MapSnapshot`](pathcopy_core::MapSnapshot): iteration and
/// `range(..)` are **lazy** k-way merges of the per-shard persistent
/// trees (hash partitioning destroys cross-shard order, so the merge
/// restores it on the fly), `len` is exact, and `diff` runs shard by
/// shard, pruning shard roots — and subtrees — shared between the two
/// cuts.
pub struct ShardedSnapshot<K, V> {
    shards: Vec<Arc<PTreapMap<K, V>>>,
    mask: u64,
}

impl<K, V> Clone for ShardedSnapshot<K, V> {
    fn clone(&self) -> Self {
        ShardedSnapshot {
            shards: self.shards.clone(),
            mask: self.mask,
        }
    }
}

impl<K, V> ShardedSnapshot<K, V>
where
    K: Ord + Clone + Hash,
    V: Clone,
{
    /// Looks up `key` in the snapshot.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.shards[shard_index(key, self.mask)].get(key)
    }

    /// `true` if `key` was present at snapshot time.
    pub fn contains_key(&self, key: &K) -> bool {
        self.shards[shard_index(key, self.mask)].contains_key(key)
    }

    /// Exact number of entries at snapshot time.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// `true` if the map was empty at snapshot time.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Number of shards in the snapshot.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The snapshot of shard `index`.
    pub fn shard(&self, index: usize) -> &Arc<PTreapMap<K, V>> {
        &self.shards[index]
    }

    /// Lazy iterator over every entry in global key order (a k-way merge
    /// of the per-shard trees; no intermediate `Vec`).
    pub fn iter(&self) -> MergedRange<'_, K, V> {
        self.range_by(Bound::Unbounded, Bound::Unbounded)
    }

    /// Lazy iterator over the entries between the two bounds, in global
    /// key order.
    pub fn range_by(&self, lo: Bound<&K>, hi: Bound<&K>) -> MergedRange<'_, K, V> {
        MergedRange {
            arms: self
                .shards
                .iter()
                .map(|s| s.range((lo.cloned(), hi.cloned())).peekable())
                .collect(),
        }
    }

    /// Lazy iterator over the entries in `range`, in global key order.
    pub fn range<R: std::ops::RangeBounds<K>>(&self, range: R) -> MergedRange<'_, K, V> {
        self.range_by(range.start_bound(), range.end_bound())
    }

    /// Collects all entries in global key order.
    pub fn to_sorted_vec(&self) -> Vec<(K, V)> {
        self.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }
}

impl<K, V> fmt::Debug for ShardedSnapshot<K, V>
where
    K: Ord + Clone + Hash + fmt::Debug,
    V: Clone + fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K, V> api::MapSnapshot<K, V> for ShardedSnapshot<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + PartialEq + Send + Sync,
{
    type Range<'a>
        = MergedRange<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn get(&self, key: &K) -> Option<&V> {
        ShardedSnapshot::get(self, key)
    }

    fn len(&self) -> usize {
        ShardedSnapshot::len(self)
    }

    fn range_by(&self, lo: Bound<&K>, hi: Bound<&K>) -> Self::Range<'_> {
        ShardedSnapshot::range_by(self, lo, hi)
    }

    fn diff(&self, newer: &Self) -> Vec<DiffEntry<K, V>> {
        let mut out = Vec::new();
        if self.mask == newer.mask {
            // Keys never move between shards while the count is fixed,
            // so the diff decomposes per shard; unchanged shard roots
            // (and shared subtrees below changed roots) are pruned by
            // pointer equality inside the per-shard diff.
            for (a, b) in self.shards.iter().zip(&newer.shards) {
                out.extend(a.diff(b));
            }
            out.sort_by(|x, y| x.key().cmp(y.key()));
        } else {
            // Different shard counts (e.g. across a future re-sharding):
            // fall back to a linear merge of the ordered iterations.
            let mut a = self.iter().peekable();
            let mut b = newer.iter().peekable();
            loop {
                match (a.peek(), b.peek()) {
                    (None, None) => break,
                    (Some(_), None) => {
                        let (k, v) = a.next().expect("peeked");
                        out.push(DiffEntry::Removed(k.clone(), v.clone()));
                    }
                    (None, Some(_)) => {
                        let (k, v) = b.next().expect("peeked");
                        out.push(DiffEntry::Added(k.clone(), v.clone()));
                    }
                    (Some(&(ka, _)), Some(&(kb, _))) => match ka.cmp(kb) {
                        std::cmp::Ordering::Less => {
                            let (k, v) = a.next().expect("peeked");
                            out.push(DiffEntry::Removed(k.clone(), v.clone()));
                        }
                        std::cmp::Ordering::Greater => {
                            let (k, v) = b.next().expect("peeked");
                            out.push(DiffEntry::Added(k.clone(), v.clone()));
                        }
                        std::cmp::Ordering::Equal => {
                            let (k, va) = a.next().expect("peeked");
                            let (_, vb) = b.next().expect("peeked");
                            if va != vb {
                                out.push(DiffEntry::Changed(k.clone(), va.clone(), vb.clone()));
                            }
                        }
                    },
                }
            }
        }
        out
    }
}

/// Lazy k-way merge over the per-shard range iterators of a
/// [`ShardedSnapshot`]: yields entries in global key order without
/// materializing anything.
pub struct MergedRange<'a, K: Ord, V> {
    arms: Vec<Peekable<TreapRange<'a, K, V>>>,
}

impl<'a, K: Ord, V> Iterator for MergedRange<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        // Shard counts are small (a handful to a few dozen), so a linear
        // scan for the minimum head beats heap bookkeeping.
        let mut best: Option<(usize, &'a K)> = None;
        for (i, arm) in self.arms.iter_mut().enumerate() {
            if let Some(&(k, _)) = arm.peek() {
                let better = match best {
                    None => true,
                    Some((_, bk)) => k < bk,
                };
                if better {
                    best = Some((i, k));
                }
            }
        }
        let (i, _) = best?;
        self.arms[i].next()
    }
}

/// Owning form of [`MergedRange`]: consumes a [`ShardedSnapshot`],
/// yielding `(K, V)` clones in global key order.
/// One arm of [`ShardedIntoIter`]: the buffered head entry plus the rest
/// of that shard's stream.
type IntoArm<K, V> = (Option<(K, V)>, treap::IntoIter<K, V>);

/// Owning form of [`MergedRange`]: consumes a [`ShardedSnapshot`],
/// yielding `(K, V)` clones in global key order.
pub struct ShardedIntoIter<K, V> {
    arms: Vec<IntoArm<K, V>>,
}

impl<K: Ord + Clone, V: Clone> Iterator for ShardedIntoIter<K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<Self::Item> {
        let mut best: Option<usize> = None;
        for (i, (head, _)) in self.arms.iter().enumerate() {
            if let Some((k, _)) = head {
                let better = match best {
                    None => true,
                    Some(b) => {
                        let (bk, _) = self.arms[b].0.as_ref().expect("best head present");
                        k < bk
                    }
                };
                if better {
                    best = Some(i);
                }
            }
        }
        let i = best?;
        let item = self.arms[i].0.take();
        self.arms[i].0 = self.arms[i].1.next();
        item
    }
}

impl<K: Ord + Clone, V: Clone> IntoIterator for ShardedSnapshot<K, V> {
    type Item = (K, V);
    type IntoIter = ShardedIntoIter<K, V>;

    fn into_iter(self) -> Self::IntoIter {
        ShardedIntoIter {
            arms: self
                .shards
                .into_iter()
                .map(|s| {
                    let mut it = PTreapMap::clone(&s).into_iter();
                    (it.next(), it)
                })
                .collect(),
        }
    }
}

impl<'a, K, V> IntoIterator for &'a ShardedSnapshot<K, V>
where
    K: Ord + Clone + Hash,
    V: Clone,
{
    type Item = (&'a K, &'a V);
    type IntoIter = MergedRange<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<K, V> api::ConcurrentMap<K, V> for ShardedTreapMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    fn insert(&self, key: K, value: V) -> Option<V> {
        ShardedTreapMap::insert(self, key, value)
    }

    fn remove(&self, key: &K) -> Option<V> {
        ShardedTreapMap::remove(self, key)
    }

    fn get(&self, key: &K) -> Option<V> {
        ShardedTreapMap::get(self, key)
    }

    fn contains_key(&self, key: &K) -> bool {
        ShardedTreapMap::contains_key(self, key)
    }

    /// Weakly consistent per-shard sum — see [`ShardedTreapMap::len`].
    fn len(&self) -> usize {
        ShardedTreapMap::len(self)
    }

    fn compute(&self, key: &K, f: &dyn Fn(Option<&V>) -> Option<V>) -> Option<V> {
        ShardedTreapMap::compute(self, key, f)
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        ShardedTreapMap::stats_snapshot(self)
    }
}

impl<K, V> api::Snapshottable for ShardedTreapMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    type Snapshot = ShardedSnapshot<K, V>;

    /// A coherent cut of all shards via the validated double scan
    /// (lock-free, not wait-free) — see
    /// [`ShardedTreapMap::snapshot_all`].
    fn snapshot(&self) -> ShardedSnapshot<K, V> {
        self.snapshot_all()
    }
}

impl<K, V> fmt::Debug for ShardedTreapMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync + fmt::Debug,
    V: Clone + Send + Sync + fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot_all();
        f.debug_map().entries(snap.iter()).finish()
    }
}

impl<K, V> FromIterator<(K, V)> for ShardedTreapMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Builds a map with the default shard count
    /// ([`ShardedTreapMap::default`]).
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let map = ShardedTreapMap::default();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<K, V> Extend<(K, V)> for ShardedTreapMap<K, V>
where
    K: Ord + Clone + Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let m: ShardedTreapMap<i64, ()> = ShardedTreapMap::with_shards(5);
        assert_eq!(m.shard_count(), 8);
        let m: ShardedTreapMap<i64, ()> = ShardedTreapMap::with_shards(0);
        assert_eq!(m.shard_count(), 1);
    }

    #[test]
    fn basic_map_semantics() {
        let m = ShardedTreapMap::with_shards(4);
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.get(&1), Some(11));
        assert!(m.contains_key(&1));
        assert_eq!(m.remove(&1), Some(11));
        assert_eq!(m.remove(&1), None);
        assert!(m.is_empty());
    }

    #[test]
    fn keys_spread_across_shards() {
        let m: ShardedTreapMap<i64, ()> = ShardedTreapMap::with_shards(16);
        for k in 0..4096 {
            m.insert(k, ());
        }
        let snap = m.snapshot_all();
        let loads: Vec<usize> = (0..m.shard_count()).map(|i| snap.shard(i).len()).collect();
        assert_eq!(loads.iter().sum::<usize>(), 4096);
        // Uniform hashing: no shard should be empty or grossly oversized.
        let expect = 4096 / 16;
        for (i, &l) in loads.iter().enumerate() {
            assert!(
                l > expect / 3 && l < expect * 3,
                "shard {i} holds {l} of 4096 keys (expected ~{expect})"
            );
        }
    }

    #[test]
    fn single_shard_degenerates_to_plain_uc() {
        let m: ShardedTreapMap<i64, i64> = ShardedTreapMap::with_shards(1);
        for k in 0..100 {
            m.insert(k, -k);
        }
        assert_eq!(m.snapshot_shard(0).len(), 100);
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn snapshot_all_is_immutable_and_exact() {
        let m = ShardedTreapMap::with_shards(8);
        for k in 0..500i64 {
            m.insert(k, k * 2);
        }
        let snap = m.snapshot_all();
        for k in 0..500 {
            m.remove(&k);
        }
        assert!(m.is_empty());
        assert_eq!(snap.len(), 500);
        for k in 0..500 {
            assert_eq!(snap.get(&k), Some(&(k * 2)));
        }
        let sorted = snap.to_sorted_vec();
        assert!(sorted.iter().map(|(k, _)| *k).eq(0..500));
    }

    #[test]
    fn compute_is_atomic_per_key() {
        let m: ShardedTreapMap<&'static str, u64> = ShardedTreapMap::with_shards(4);
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let m = &m;
                sc.spawn(move || {
                    for _ in 0..500 {
                        m.compute(&"hits", |v| Some(v.copied().unwrap_or(0) + 1));
                    }
                });
            }
        });
        assert_eq!(m.get(&"hits"), Some(2000));
    }

    #[test]
    fn concurrent_inserts_all_land() {
        let m: ShardedTreapMap<i64, i64> = ShardedTreapMap::with_shards(16);
        std::thread::scope(|sc| {
            for t in 0..8i64 {
                let m = &m;
                sc.spawn(move || {
                    for i in 0..500 {
                        let k = t * 500 + i;
                        assert_eq!(m.insert(k, k), None);
                    }
                });
            }
        });
        let snap = m.snapshot_all();
        assert_eq!(snap.len(), 4000);
        assert!(snap.to_sorted_vec().iter().map(|(k, _)| *k).eq(0..4000));
    }

    #[test]
    fn snapshot_all_never_observes_torn_transfers() {
        // A "bank transfer" invariant: two keys (in different shards with
        // high probability) always sum to 0 under paired updates; a
        // coherent snapshot must never see a half-applied pair. With
        // per-shard snapshots taken naively this fails quickly.
        let m: ShardedTreapMap<u32, i64> = ShardedTreapMap::with_shards(16);
        m.insert(0, 0);
        m.insert(1, 0);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|sc| {
            let m_ref = &m;
            let stop_ref = &stop;
            sc.spawn(move || {
                for _ in 0..20_000i64 {
                    m_ref.compute(&0, |v| Some(v.copied().unwrap_or(0) + 1));
                    m_ref.compute(&1, |v| Some(v.copied().unwrap_or(0) - 1));
                }
                stop_ref.store(true, std::sync::atomic::Ordering::Relaxed);
            });
            let mut coherent_cuts = 0u32;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let snap = m.snapshot_all();
                let a = *snap.get(&0).unwrap();
                let b = *snap.get(&1).unwrap();
                // The writer updates key 0 then key 1, so a cut between
                // the two computes may see the sum mid-transfer by design;
                // what must NEVER happen is seeing a *future* value of
                // key 1 with a *past* value of key 0 (sum < 0 is
                // impossible in any prefix-consistent cut).
                assert!(
                    (0..=1).contains(&(a + b)),
                    "torn snapshot: {a} + {b} = {}",
                    a + b
                );
                coherent_cuts += 1;
            }
            assert!(coherent_cuts > 0);
        });
    }

    #[test]
    fn stats_merge_across_shards() {
        let m: ShardedTreapMap<i64, ()> = ShardedTreapMap::with_shards(4);
        for k in 0..100 {
            m.insert(k, ());
        }
        let stats = m.stats_snapshot();
        assert_eq!(stats.ops, 100);
        assert!(stats.attempts >= 100);
    }
}
