//! First-class snapshot handles for the single-root backends.
//!
//! A snapshot is the paper's headline capability made into an API: an
//! O(1), immutable, `Send + Sync` view of a concurrent structure that
//! stays valid forever and never blocks (or is blocked by) writers. The
//! wrapper types here implement the [`MapSnapshot`] / [`SetSnapshot`]
//! traits — **lazy** `iter()`/`range(..)` straight over the persistent
//! tree, exact `len()`, and pointer-equality-pruned `diff()` — and also
//! deref to the underlying persistent structure, so every read operation
//! of `pathcopy-trees` (rank/select, `check_invariants`, …) keeps
//! working on them.

use std::fmt;
use std::ops::{Bound, Deref};
use std::sync::Arc;

use pathcopy_core::api::{DiffEntry, MapSnapshot, SetDiffEntry, SetSnapshot};
use pathcopy_trees::external_bst::EbRange;
use pathcopy_trees::treap;
use pathcopy_trees::ExternalBstSet as PExternalBstSet;
use pathcopy_trees::TreapMap as PTreapMap;

/// Owned range type of the treap-backed snapshots.
pub type TreapRange<'a, K, V> = treap::Range<'a, K, V, (Bound<K>, Bound<K>)>;

/// Immutable point-in-time view of a treap-backed concurrent map
/// ([`TreapMap`](crate::TreapMap), [`LockedMap`](crate::LockedMap)).
///
/// Derefs to the persistent [`pathcopy_trees::TreapMap`], so all of its
/// read operations are available directly.
pub struct TreapSnapshot<K, V> {
    inner: Arc<PTreapMap<K, V>>,
}

impl<K, V> TreapSnapshot<K, V> {
    pub(crate) fn new(inner: Arc<PTreapMap<K, V>>) -> Self {
        TreapSnapshot { inner }
    }

    /// The underlying persistent version.
    pub fn as_inner(&self) -> &Arc<PTreapMap<K, V>> {
        &self.inner
    }
}

impl<K, V> Clone for TreapSnapshot<K, V> {
    fn clone(&self) -> Self {
        TreapSnapshot {
            inner: self.inner.clone(),
        }
    }
}

impl<K, V> Deref for TreapSnapshot<K, V> {
    type Target = PTreapMap<K, V>;

    fn deref(&self) -> &Self::Target {
        &self.inner
    }
}

impl<K: fmt::Debug + Ord, V: fmt::Debug> fmt::Debug for TreapSnapshot<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<K, V> MapSnapshot<K, V> for TreapSnapshot<K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + PartialEq + Send + Sync,
{
    type Range<'a>
        = TreapRange<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn get(&self, key: &K) -> Option<&V> {
        self.inner.get(key)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn range_by(&self, lo: Bound<&K>, hi: Bound<&K>) -> Self::Range<'_> {
        self.inner.range((lo.cloned(), hi.cloned()))
    }

    fn diff(&self, newer: &Self) -> Vec<DiffEntry<K, V>> {
        self.inner.diff(&newer.inner)
    }
}

impl<K: Clone, V: Clone> IntoIterator for TreapSnapshot<K, V> {
    type Item = (K, V);
    type IntoIter = treap::IntoIter<K, V>;

    fn into_iter(self) -> Self::IntoIter {
        PTreapMap::clone(&self.inner).into_iter()
    }
}

impl<'a, K, V> IntoIterator for &'a TreapSnapshot<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = treap::Iter<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.as_ref().into_iter()
    }
}

/// Lazy ascending key iterator over a treap-backed set snapshot.
pub struct SetRange<'a, K> {
    inner: TreapRange<'a, K, ()>,
}

impl<'a, K: Ord> Iterator for SetRange<'a, K> {
    type Item = &'a K;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(k, ())| k)
    }
}

/// Immutable point-in-time view of a treap-backed concurrent set
/// ([`TreapSet`](crate::TreapSet), [`LockedTreapSet`](crate::LockedTreapSet),
/// [`RwLockedTreapSet`](crate::RwLockedTreapSet)).
///
/// Derefs to the persistent [`pathcopy_trees::treap::TreapSet`].
pub struct TreapSetSnapshot<K> {
    inner: Arc<treap::TreapSet<K>>,
}

impl<K> TreapSetSnapshot<K> {
    pub(crate) fn new(inner: Arc<treap::TreapSet<K>>) -> Self {
        TreapSetSnapshot { inner }
    }

    /// The underlying persistent version.
    pub fn as_inner(&self) -> &Arc<treap::TreapSet<K>> {
        &self.inner
    }
}

impl<K> Clone for TreapSetSnapshot<K> {
    fn clone(&self) -> Self {
        TreapSetSnapshot {
            inner: self.inner.clone(),
        }
    }
}

impl<K> Deref for TreapSetSnapshot<K> {
    type Target = treap::TreapSet<K>;

    fn deref(&self) -> &Self::Target {
        &self.inner
    }
}

impl<K: fmt::Debug + Ord> fmt::Debug for TreapSetSnapshot<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<K> SetSnapshot<K> for TreapSetSnapshot<K>
where
    K: Ord + Clone + Send + Sync,
{
    type Range<'a>
        = SetRange<'a, K>
    where
        Self: 'a,
        K: 'a;

    fn contains(&self, key: &K) -> bool {
        self.inner.contains(key)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn range_by(&self, lo: Bound<&K>, hi: Bound<&K>) -> Self::Range<'_> {
        SetRange {
            inner: self.inner.as_map().range((lo.cloned(), hi.cloned())),
        }
    }

    fn diff(&self, newer: &Self) -> Vec<SetDiffEntry<K>> {
        SetDiffEntry::from_unit_diff(self.inner.as_map().diff(newer.inner.as_map()))
    }
}

impl<K: Clone> IntoIterator for TreapSetSnapshot<K> {
    type Item = K;
    type IntoIter = treap::SetIntoIter<K>;

    fn into_iter(self) -> Self::IntoIter {
        treap::TreapSet::clone(&self.inner).into_iter()
    }
}

/// Immutable point-in-time view of a concurrent
/// [`ExternalBstSet`](crate::ExternalBstSet).
///
/// Derefs to the persistent [`pathcopy_trees::ExternalBstSet`].
pub struct EbstSnapshot<K> {
    inner: Arc<PExternalBstSet<K>>,
}

impl<K> EbstSnapshot<K> {
    pub(crate) fn new(inner: Arc<PExternalBstSet<K>>) -> Self {
        EbstSnapshot { inner }
    }

    /// The underlying persistent version.
    pub fn as_inner(&self) -> &Arc<PExternalBstSet<K>> {
        &self.inner
    }
}

impl<K> Clone for EbstSnapshot<K> {
    fn clone(&self) -> Self {
        EbstSnapshot {
            inner: self.inner.clone(),
        }
    }
}

impl<K> Deref for EbstSnapshot<K> {
    type Target = PExternalBstSet<K>;

    fn deref(&self) -> &Self::Target {
        &self.inner
    }
}

impl<K: fmt::Debug + Ord + Clone> fmt::Debug for EbstSnapshot<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<K> SetSnapshot<K> for EbstSnapshot<K>
where
    K: Ord + Clone + Send + Sync,
{
    type Range<'a>
        = EbRange<'a, K>
    where
        Self: 'a,
        K: 'a;

    fn contains(&self, key: &K) -> bool {
        self.inner.contains(key)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn range_by(&self, lo: Bound<&K>, hi: Bound<&K>) -> Self::Range<'_> {
        self.inner.range_by(lo, hi)
    }

    fn diff(&self, newer: &Self) -> Vec<SetDiffEntry<K>> {
        self.inner.diff(&newer.inner)
    }
}
