//! Multi-entry-point structures (§2 of the paper): "one could imagine
//! generalizing these ideas by adding a level of indirection in data
//! structures with more than one entry point (e.g., one could add a dummy
//! root node containing all entry points)".
//!
//! [`Composite`] is that dummy root: a pair of persistent structures
//! versioned together under one `Root_Ptr`. Updates may touch **both**
//! components and commit atomically with a single CAS, giving
//! transactions across structures for free — e.g. an index plus a
//! secondary index, or a set plus its change-log queue.

use std::sync::Arc;

use pathcopy_core::{PathCopyUc, UcStats, Update};

/// Two persistent structures behind one atomically-versioned root.
///
/// # Examples
///
/// An ordered set with an append-only audit log, updated atomically: a
/// reader can never observe a set change without its log entry.
///
/// ```
/// use pathcopy_concurrent::Composite;
/// use pathcopy_trees::{list::PStack, treap::TreapSet};
///
/// let state = Composite::new(TreapSet::<i64>::empty(), PStack::<i64>::new());
/// state.update(|set, log| {
///     set.insert(7).map(|next_set| (next_set, log.push(7)))
/// });
/// let snap = state.snapshot();
/// assert_eq!(snap.0.len(), snap.1.len()); // invariant holds in every version
/// ```
pub struct Composite<A, B> {
    uc: PathCopyUc<(A, B)>,
}

impl<A, B> Composite<A, B>
where
    A: Clone + Send + Sync,
    B: Clone + Send + Sync,
{
    /// Creates a composite from initial versions of both components.
    pub fn new(a: A, b: B) -> Self {
        Composite {
            uc: PathCopyUc::new((a, b)),
        }
    }

    /// Atomically updates both components: `f` sees the current versions
    /// and returns replacement versions, or `None` for a no-op (which
    /// skips the CAS). Both replacements commit in one CAS — readers see
    /// either neither or both.
    pub fn update(&self, f: impl Fn(&A, &B) -> Option<(A, B)>) -> bool {
        self.uc.update(|(a, b)| match f(a, b) {
            Some((na, nb)) => Update::Replace((na, nb), true),
            None => Update::Keep(false),
        })
    }

    /// Like [`update`](Self::update) but with a result value.
    pub fn update_with<R>(&self, f: impl Fn(&A, &B) -> (Option<(A, B)>, R)) -> R {
        self.uc.update(|(a, b)| match f(a, b) {
            (Some((na, nb)), r) => Update::Replace((na, nb), r),
            (None, r) => Update::Keep(r),
        })
    }

    /// Runs a read-only operation on a consistent pair of versions.
    pub fn read<R>(&self, f: impl FnOnce(&A, &B) -> R) -> R {
        self.uc.read(|(a, b)| f(a, b))
    }

    /// A consistent point-in-time snapshot of both components.
    pub fn snapshot(&self) -> Arc<(A, B)> {
        self.uc.snapshot()
    }

    /// Attempt/retry statistics.
    pub fn stats(&self) -> &Arc<UcStats> {
        self.uc.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathcopy_trees::list::PStack;
    use pathcopy_trees::treap::{TreapMap, TreapSet};

    #[test]
    fn set_plus_log_stays_consistent_under_contention() {
        // Invariant: log length == number of successful inserts == set
        // size. A torn commit would break it in some snapshot.
        let state = Composite::new(TreapSet::<i64>::empty(), PStack::<i64>::new());
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let state = &state;
                s.spawn(move || {
                    for i in 0..300 {
                        let k = t * 300 + i;
                        let inserted =
                            state.update(|set, log| set.insert(k).map(|ns| (ns, log.push(k))));
                        assert!(inserted);
                    }
                });
            }
            // Concurrent invariant checker on live snapshots.
            let state = &state;
            s.spawn(move || {
                for _ in 0..200 {
                    let snap = state.snapshot();
                    assert_eq!(
                        snap.0.len(),
                        snap.1.len(),
                        "set and log torn apart in a snapshot"
                    );
                }
            });
        });
        let snap = state.snapshot();
        assert_eq!(snap.0.len(), 1200);
        assert_eq!(snap.1.len(), 1200);
    }

    #[test]
    fn atomic_move_between_two_maps() {
        // The classic two-account transfer: total is conserved in every
        // observable version.
        let accounts = Composite::new(
            TreapMap::new().insert("alice".to_string(), 100i64).0,
            TreapMap::new().insert("bob".to_string(), 100i64).0,
        );
        std::thread::scope(|s| {
            for _ in 0..2 {
                let accounts = &accounts;
                s.spawn(move || {
                    for _ in 0..200 {
                        accounts.update(|a, b| {
                            let alice = *a.get("alice")?;
                            if alice == 0 {
                                return None;
                            }
                            let bob = *b.get("bob")?;
                            Some((
                                a.insert("alice".to_string(), alice - 1).0,
                                b.insert("bob".to_string(), bob + 1).0,
                            ))
                        });
                    }
                });
            }
            let accounts = &accounts;
            s.spawn(move || {
                for _ in 0..500 {
                    let total = accounts.read(|a, b| {
                        a.get("alice").copied().unwrap() + b.get("bob").copied().unwrap()
                    });
                    assert_eq!(total, 200, "money created or destroyed");
                }
            });
        });
        let (a, b) = &*accounts.snapshot();
        assert_eq!(
            a.get("alice").copied().unwrap() + b.get("bob").copied().unwrap(),
            200
        );
    }

    #[test]
    fn noop_updates_skip_cas() {
        let state = Composite::new(TreapSet::<i64>::empty(), PStack::<i64>::new());
        state.update(|set, log| set.insert(1).map(|ns| (ns, log.push(1))));
        // Duplicate insert: f returns None, no CAS, stats record a no-op.
        let changed = state.update(|set, log| set.insert(1).map(|ns| (ns, log.push(1))));
        assert!(!changed);
        assert_eq!(state.stats().snapshot().noop_updates, 1);
    }

    #[test]
    fn update_with_returns_values() {
        let state = Composite::new(TreapSet::<i64>::empty(), PStack::<i64>::new());
        let prev_len = state.update_with(|set, log| {
            let r = set.len();
            (set.insert(5).map(|ns| (ns, log.push(5))), r)
        });
        assert_eq!(prev_len, 0);
        assert_eq!(state.read(|s, _| s.len()), 1);
    }
}
