//! Deterministic priority derivation for treaps.
//!
//! Seidel–Aragon treaps want priorities that are i.i.d. uniform. Drawing
//! them from an RNG at insert time makes the tree shape depend on the
//! insertion history, which is inconvenient both for testing and for the
//! universal construction (a retried insert would re-roll its priority).
//! Instead we derive the priority by hashing the key: `splitmix64(h(key))`
//! where `h` is SipHash-1-3 with fixed keys. For distinct keys this is
//! indistinguishable from random priorities, and the treap shape becomes a
//! pure function of its key set.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The splitmix64 finalizer: a fast, well-mixed 64-bit permutation.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derives a deterministic pseudo-random priority from a key.
#[inline]
pub fn priority_of<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    splitmix64(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Consecutive inputs should differ in many bits (avalanche).
        let d = (splitmix64(7) ^ splitmix64(8)).count_ones();
        assert!(d > 16, "poor mixing: only {d} differing bits");
    }

    #[test]
    fn priorities_are_stable_per_key() {
        assert_eq!(priority_of(&42i64), priority_of(&42i64));
        assert_ne!(priority_of(&42i64), priority_of(&43i64));
    }

    #[test]
    fn priorities_look_uniform() {
        // Crude uniformity check: the top bit should be set about half the
        // time over a few thousand keys.
        let n = 4096;
        let ones = (0..n).filter(|k| priority_of(k) >> 63 == 1).count();
        assert!(
            (n / 2 - n / 8..=n / 2 + n / 8).contains(&ones),
            "top-bit frequency {ones}/{n} is far from 1/2"
        );
    }
}
