//! Persistent AVL tree — a second balanced search tree under the same
//! universal construction (the paper's approach is structure-agnostic:
//! "one could imagine generalizing these ideas" to any rooted structure).
//!
//! Height-balanced with the classic invariant |h(L) − h(R)| ≤ 1; every
//! update path-copies the search path plus at most O(log n) rebalancing
//! copies.

use std::borrow::Borrow;
use std::cmp::Ordering::{Equal, Greater, Less};
use std::fmt;
use std::sync::Arc;

type Link<K, V> = Option<Arc<AvlNode<K, V>>>;

/// Shared, immutable AVL node.
#[derive(Debug)]
pub struct AvlNode<K, V> {
    key: K,
    value: V,
    height: u32,
    size: usize,
    left: Link<K, V>,
    right: Link<K, V>,
}

impl<K, V> AvlNode<K, V> {
    /// The node's key.
    pub fn key(&self) -> &K {
        &self.key
    }
    /// The node's value.
    pub fn value(&self) -> &V {
        &self.value
    }
    /// Left child.
    pub fn left(&self) -> Option<&Arc<AvlNode<K, V>>> {
        self.left.as_ref()
    }
    /// Right child.
    pub fn right(&self) -> Option<&Arc<AvlNode<K, V>>> {
        self.right.as_ref()
    }
}

#[inline]
fn height<K, V>(l: &Link<K, V>) -> u32 {
    l.as_ref().map_or(0, |n| n.height)
}

#[inline]
fn size<K, V>(l: &Link<K, V>) -> usize {
    l.as_ref().map_or(0, |n| n.size)
}

#[inline]
fn mk<K, V>(key: K, value: V, left: Link<K, V>, right: Link<K, V>) -> Arc<AvlNode<K, V>> {
    Arc::new(AvlNode {
        height: 1 + height(&left).max(height(&right)),
        size: 1 + size(&left) + size(&right),
        key,
        value,
        left,
        right,
    })
}

/// Balance factor must stay within ±1; rebuilds the subtree rooted here
/// with rotations when an update knocked it to ±2.
fn balance<K: Clone, V: Clone>(
    key: K,
    value: V,
    left: Link<K, V>,
    right: Link<K, V>,
) -> Arc<AvlNode<K, V>> {
    let hl = height(&left);
    let hr = height(&right);
    if hl > hr + 1 {
        let l = left.as_ref().expect("left higher than right+1");
        if height(&l.left) >= height(&l.right) {
            // Single right rotation.
            let new_right = mk(key, value, l.right.clone(), right);
            mk(
                l.key.clone(),
                l.value.clone(),
                l.left.clone(),
                Some(new_right),
            )
        } else {
            // Left-right double rotation.
            let lr = l.right.as_ref().expect("LR case needs l.right");
            let new_left = mk(
                l.key.clone(),
                l.value.clone(),
                l.left.clone(),
                lr.left.clone(),
            );
            let new_right = mk(key, value, lr.right.clone(), right);
            mk(
                lr.key.clone(),
                lr.value.clone(),
                Some(new_left),
                Some(new_right),
            )
        }
    } else if hr > hl + 1 {
        let r = right.as_ref().expect("right higher than left+1");
        if height(&r.right) >= height(&r.left) {
            // Single left rotation.
            let new_left = mk(key, value, left, r.left.clone());
            mk(
                r.key.clone(),
                r.value.clone(),
                Some(new_left),
                r.right.clone(),
            )
        } else {
            // Right-left double rotation.
            let rl = r.left.as_ref().expect("RL case needs r.left");
            let new_left = mk(key, value, left, rl.left.clone());
            let new_right = mk(
                r.key.clone(),
                r.value.clone(),
                rl.right.clone(),
                r.right.clone(),
            );
            mk(
                rl.key.clone(),
                rl.value.clone(),
                Some(new_left),
                Some(new_right),
            )
        }
    } else {
        mk(key, value, left, right)
    }
}

/// A persistent ordered map backed by an AVL tree.
///
/// # Examples
///
/// ```
/// use pathcopy_trees::avl::AvlMap;
///
/// let v0: AvlMap<i64, &str> = AvlMap::new();
/// let v1 = v0.insert(1, "one").0;
/// let v2 = v1.insert(2, "two").0;
/// assert_eq!(v2.get(&1), Some(&"one"));
/// assert_eq!(v0.len(), 0); // old versions intact
/// ```
pub struct AvlMap<K, V> {
    root: Link<K, V>,
}

impl<K, V> Clone for AvlMap<K, V> {
    fn clone(&self) -> Self {
        AvlMap {
            root: self.root.clone(),
        }
    }
}

impl<K, V> Default for AvlMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> AvlMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        AvlMap { root: None }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Tree height (0 if empty).
    pub fn height(&self) -> u32 {
        height(&self.root)
    }

    /// The root node, for structural inspection.
    pub fn root(&self) -> Option<&Arc<AvlNode<K, V>>> {
        self.root.as_ref()
    }
}

impl<K: Ord + Clone, V: Clone> AvlMap<K, V> {
    /// Inserts `key -> value`, returning the new version and the previous
    /// value if any.
    pub fn insert(&self, key: K, value: V) -> (Self, Option<V>) {
        let (root, old) = insert_rec(&self.root, key, value);
        (AvlMap { root: Some(root) }, old)
    }

    /// Inserts only if absent; `None` means present (no new version).
    pub fn insert_if_absent(&self, key: K, value: V) -> Option<Self> {
        if self.contains_key(&key) {
            None
        } else {
            Some(self.insert(key, value).0)
        }
    }

    /// Removes `key`; `None` means absent (no new version).
    pub fn remove<Q>(&self, key: &Q) -> Option<(Self, V)>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let (root, v) = remove_rec(&self.root, key)?;
        Some((AvlMap { root }, v))
    }
}

impl<K: Ord, V> AvlMap<K, V> {
    /// Looks up `key`.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match key.cmp(n.key.borrow()) {
                Less => cur = n.left.as_deref(),
                Equal => return Some(&n.value),
                Greater => cur = n.right.as_deref(),
            }
        }
        None
    }

    /// `true` if `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.get(key).is_some()
    }

    /// In-order iterator.
    pub fn iter(&self) -> AvlIter<'_, K, V> {
        AvlIter::new(&self.root)
    }

    /// Validates AVL invariants; returns the node count.
    ///
    /// # Panics
    ///
    /// Panics on violated order, balance, or bookkeeping.
    pub fn check_invariants(&self) -> usize {
        fn walk<K: Ord, V>(link: &Link<K, V>, lo: Option<&K>, hi: Option<&K>) -> (u32, usize) {
            match link {
                None => (0, 0),
                Some(n) => {
                    if let Some(lo) = lo {
                        assert!(n.key > *lo, "BST order violated");
                    }
                    if let Some(hi) = hi {
                        assert!(n.key < *hi, "BST order violated");
                    }
                    let (hl, sl) = walk(&n.left, lo, Some(&n.key));
                    let (hr, sr) = walk(&n.right, Some(&n.key), hi);
                    assert!(hl.abs_diff(hr) <= 1, "AVL balance violated: {hl} vs {hr}");
                    assert_eq!(n.height, 1 + hl.max(hr), "height field stale");
                    assert_eq!(n.size, 1 + sl + sr, "size field stale");
                    (n.height, n.size)
                }
            }
        }
        walk(&self.root, None, None).1
    }
}

fn insert_rec<K: Ord + Clone, V: Clone>(
    link: &Link<K, V>,
    key: K,
    value: V,
) -> (Arc<AvlNode<K, V>>, Option<V>) {
    match link {
        None => (mk(key, value, None, None), None),
        Some(n) => match key.cmp(&n.key) {
            Equal => (
                mk(key, value, n.left.clone(), n.right.clone()),
                Some(n.value.clone()),
            ),
            Less => {
                let (nl, old) = insert_rec(&n.left, key, value);
                (
                    balance(n.key.clone(), n.value.clone(), Some(nl), n.right.clone()),
                    old,
                )
            }
            Greater => {
                let (nr, old) = insert_rec(&n.right, key, value);
                (
                    balance(n.key.clone(), n.value.clone(), n.left.clone(), Some(nr)),
                    old,
                )
            }
        },
    }
}

fn remove_rec<K, V, Q>(link: &Link<K, V>, key: &Q) -> Option<(Link<K, V>, V)>
where
    K: Ord + Clone + Borrow<Q>,
    V: Clone,
    Q: Ord + ?Sized,
{
    let n = link.as_ref()?;
    match key.cmp(n.key.borrow()) {
        Equal => {
            let merged = match (&n.left, &n.right) {
                (None, r) => r.clone(),
                (l, None) => l.clone(),
                (Some(_), Some(_)) => {
                    // Replace with the in-order successor.
                    let (succ_k, succ_v) = min_entry(n.right.as_ref().expect("right nonempty"));
                    let (new_right, _) = remove_min(n.right.as_ref().expect("right nonempty"));
                    Some(balance(succ_k, succ_v, n.left.clone(), new_right))
                }
            };
            Some((merged, n.value.clone()))
        }
        Less => {
            let (nl, v) = remove_rec(&n.left, key)?;
            Some((
                Some(balance(n.key.clone(), n.value.clone(), nl, n.right.clone())),
                v,
            ))
        }
        Greater => {
            let (nr, v) = remove_rec(&n.right, key)?;
            Some((
                Some(balance(n.key.clone(), n.value.clone(), n.left.clone(), nr)),
                v,
            ))
        }
    }
}

fn min_entry<K: Clone, V: Clone>(mut n: &Arc<AvlNode<K, V>>) -> (K, V) {
    while let Some(l) = n.left.as_ref() {
        n = l;
    }
    (n.key.clone(), n.value.clone())
}

fn remove_min<K: Ord + Clone, V: Clone>(n: &Arc<AvlNode<K, V>>) -> (Link<K, V>, (K, V)) {
    match &n.left {
        None => (n.right.clone(), (n.key.clone(), n.value.clone())),
        Some(l) => {
            let (nl, min) = remove_min(l);
            (
                Some(balance(n.key.clone(), n.value.clone(), nl, n.right.clone())),
                min,
            )
        }
    }
}

/// In-order iterator over an [`AvlMap`].
pub struct AvlIter<'a, K, V> {
    stack: Vec<&'a AvlNode<K, V>>,
}

impl<'a, K, V> AvlIter<'a, K, V> {
    fn new(root: &'a Link<K, V>) -> Self {
        let mut it = AvlIter { stack: Vec::new() };
        it.push_left(root.as_deref());
        it
    }
    fn push_left(&mut self, mut cur: Option<&'a AvlNode<K, V>>) {
        while let Some(n) = cur {
            self.stack.push(n);
            cur = n.left.as_deref();
        }
    }
}

impl<'a, K, V> Iterator for AvlIter<'a, K, V> {
    type Item = (&'a K, &'a V);
    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        self.push_left(n.right.as_deref());
        Some((&n.key, &n.value))
    }
}

impl<K: Ord + Clone, V: Clone> FromIterator<(K, V)> for AvlMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = AvlMap::new();
        for (k, v) in iter {
            m = m.insert(k, v).0;
        }
        m
    }
}

impl<K: fmt::Debug + Ord, V: fmt::Debug> fmt::Debug for AvlMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// A persistent ordered set backed by [`AvlMap<K, ()>`].
#[derive(Clone, Default)]
pub struct AvlSet<K> {
    map: AvlMap<K, ()>,
}

impl<K: Ord + Clone> AvlSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        AvlSet { map: AvlMap::new() }
    }

    /// Inserts `key`; `None` means already present (no-op).
    pub fn insert(&self, key: K) -> Option<Self> {
        self.map.insert_if_absent(key, ()).map(|map| AvlSet { map })
    }

    /// Removes `key`; `None` means absent (no-op).
    pub fn remove<Q>(&self, key: &Q) -> Option<Self>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.map.remove(key).map(|(map, ())| AvlSet { map })
    }

    /// `true` if present.
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.map.contains_key(key)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Keys in order.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.map.iter().map(|(k, _)| k)
    }

    /// Underlying map.
    pub fn as_map(&self) -> &AvlMap<K, ()> {
        &self.map
    }

    /// Validates invariants; returns node count.
    pub fn check_invariants(&self) -> usize {
        self.map.check_invariants()
    }
}

impl<K: Ord + Clone> FromIterator<K> for AvlSet<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        AvlSet {
            map: iter.into_iter().map(|k| (k, ())).collect(),
        }
    }
}

// Sharing-measurement support.
impl<K: Ord, V> crate::sharing::SearchTree for AvlMap<K, V> {
    type Key = K;

    fn visit_path(&self, key: &K, visit: &mut dyn FnMut(usize)) {
        let mut cur = self.root();
        while let Some(n) = cur {
            visit(Arc::as_ptr(n) as usize);
            match key.cmp(n.key()) {
                Less => cur = n.left(),
                Equal => return,
                Greater => cur = n.right(),
            }
        }
    }

    fn visit_all(&self, visit: &mut dyn FnMut(usize)) {
        fn walk<K, V>(n: Option<&Arc<AvlNode<K, V>>>, visit: &mut dyn FnMut(usize)) {
            if let Some(n) = n {
                visit(Arc::as_ptr(n) as usize);
                walk(n.left(), visit);
                walk(n.right(), visit);
            }
        }
        walk(self.root(), visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn basic_ops() {
        let m: AvlMap<i64, i64> = AvlMap::new();
        let (m, old) = m.insert(1, 10);
        assert_eq!(old, None);
        let (m, old) = m.insert(1, 11);
        assert_eq!(old, Some(10));
        assert_eq!(m.get(&1), Some(&11));
        let (m, v) = m.remove(&1).unwrap();
        assert_eq!(v, 11);
        assert!(m.is_empty());
    }

    #[test]
    fn matches_btreemap_on_mixed_ops() {
        let mut reference = BTreeMap::new();
        let mut m: AvlMap<i64, i64> = AvlMap::new();
        let mut x = 31u64;
        for _ in 0..4000 {
            x = crate::hash::splitmix64(x);
            let k = (x % 350) as i64;
            if x % 3 == 0 {
                match (reference.remove(&k), m.remove(&k)) {
                    (None, None) => {}
                    (Some(ev), Some((nm, gv))) => {
                        assert_eq!(ev, gv);
                        m = nm;
                    }
                    other => panic!("mismatch: {other:?}"),
                }
            } else {
                let v = (x >> 40) as i64;
                let (nm, old) = m.insert(k, v);
                assert_eq!(old, reference.insert(k, v));
                m = nm;
            }
            if x % 512 == 0 {
                m.check_invariants();
            }
        }
        assert!(m.iter().map(|(k, v)| (*k, *v)).eq(reference.into_iter()));
        m.check_invariants();
    }

    #[test]
    fn height_is_tightly_logarithmic() {
        // Sorted insertion is the AVL worst case for naive BSTs; the AVL
        // must stay within 1.44 log2(n+2).
        let n = 1 << 12;
        let m: AvlMap<u64, ()> = (0..n).map(|k| (k, ())).collect();
        m.check_invariants();
        let bound = (1.45 * ((n + 2) as f64).log2()) as u32;
        assert!(m.height() <= bound, "height {} > {bound}", m.height());
    }

    #[test]
    fn persistence_between_versions() {
        let v1: AvlMap<i64, i64> = (0..100).map(|k| (k, k)).collect();
        let (v2, _) = v1.remove(&50).unwrap();
        assert!(v1.contains_key(&50));
        assert!(!v2.contains_key(&50));
        assert_eq!(v1.len(), 100);
        assert_eq!(v2.len(), 99);
    }

    #[test]
    fn rebalancing_preserves_sharing_bound() {
        use crate::sharing::sharing_stats;
        let v1: AvlMap<i64, i64> = (0..1024).map(|k| (k, k)).collect();
        let (v2, _) = v1.insert(5000, 0);
        let stats = sharing_stats(&v1, &v2);
        assert!(
            stats.fresh <= 3 * v1.height() as usize + 3,
            "AVL insert copied {} nodes",
            stats.fresh
        );
    }

    #[test]
    fn set_facade() {
        let s: AvlSet<i64> = AvlSet::new();
        let s = s.insert(1).unwrap();
        assert!(s.insert(1).is_none());
        assert!(s.contains(&1));
        let s2 = s.remove(&1).unwrap();
        assert!(s.contains(&1));
        assert!(s2.is_empty());
        let s3: AvlSet<i64> = (0..64).collect();
        assert_eq!(s3.len(), 64);
        assert!(s3.iter().copied().eq(0..64));
        s3.check_invariants();
    }

    #[test]
    fn remove_min_paths() {
        // Exercise the successor-replacement branch: remove nodes that
        // have two children.
        let mut m: AvlMap<i64, i64> = (0..64).map(|k| (k, k)).collect();
        for k in [31, 15, 47, 0, 63, 32] {
            let (nm, v) = m.remove(&k).unwrap();
            assert_eq!(v, k);
            nm.check_invariants();
            m = nm;
        }
        assert_eq!(m.len(), 58);
    }
}
