//! Persistent red–black tree.
//!
//! Insertion is Okasaki's classic four-case rebalancing (*Purely
//! functional data structures*, the paper's \[6\]); deletion follows
//! Germane & Might's "double-black / negative-black" method (*Deletion:
//! the curse of the red-black tree*, JFP 2014), which keeps the algorithm
//! purely functional — every update path-copies the search path plus
//! O(1) rebalancing nodes per level.
//!
//! The transient colors `DoubleBlack` and `NegativeBlack` (and the
//! double-black leaf `EE`) exist only while a deletion is in flight;
//! [`RbMap::check_invariants`] verifies that settled trees contain only
//! red and black.

use std::borrow::Borrow;
use std::cmp::Ordering::{Equal, Greater, Less};
use std::fmt;
use std::sync::Arc;

/// Node colors, including the two transient deletion colors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
    /// Transient: carries one unit of missing black height upward.
    DoubleBlack,
    /// Transient: a "negative" black produced by `redder(Red)`.
    NegativeBlack,
}

use Color::*;

impl Color {
    fn blacker(self) -> Color {
        match self {
            NegativeBlack => Red,
            Red => Black,
            Black => DoubleBlack,
            DoubleBlack => unreachable!("cannot blacken a double black"),
        }
    }
    fn redder(self) -> Color {
        match self {
            DoubleBlack => Black,
            Black => Red,
            Red => NegativeBlack,
            NegativeBlack => unreachable!("cannot redden a negative black"),
        }
    }
}

struct RbNode<K, V> {
    color: Color,
    size: usize,
    key: K,
    value: V,
    left: Tree<K, V>,
    right: Tree<K, V>,
}

enum Tree<K, V> {
    /// The (black) empty tree.
    E,
    /// Transient double-black empty tree.
    EE,
    /// An interior node.
    Node(Arc<RbNode<K, V>>),
}

use Tree::{Node, E, EE};

impl<K, V> Clone for Tree<K, V> {
    fn clone(&self) -> Self {
        match self {
            E => E,
            EE => EE,
            Node(n) => Node(n.clone()),
        }
    }
}

impl<K, V> Tree<K, V> {
    fn size(&self) -> usize {
        match self {
            E | EE => 0,
            Node(n) => n.size,
        }
    }

    fn is_bb(&self) -> bool {
        matches!(self, EE) || matches!(self, Node(n) if n.color == DoubleBlack)
    }
}

impl<K, V> Tree<K, V>
where
    K: Clone,
    V: Clone,
{
    fn with_color(&self, color: Color) -> Tree<K, V> {
        match self {
            Node(n) => mk(
                color,
                n.left.clone(),
                n.key.clone(),
                n.value.clone(),
                n.right.clone(),
            ),
            _ => unreachable!("recoloring an empty tree"),
        }
    }

    /// `redder` lifted to trees: removes one unit of double black.
    fn redder(self) -> Self {
        match self {
            EE => E,
            E => unreachable!("cannot redden the plain empty tree"),
            Node(n) => Node(Arc::new(RbNode {
                color: n.color.redder(),
                size: n.size,
                key: n.key.clone(),
                value: n.value.clone(),
                left: n.left.clone(),
                right: n.right.clone(),
            })),
        }
    }
}

fn mk<K, V>(color: Color, left: Tree<K, V>, key: K, value: V, right: Tree<K, V>) -> Tree<K, V> {
    let size = 1 + left.size() + right.size();
    Node(Arc::new(RbNode {
        color,
        size,
        key,
        value,
        left,
        right,
    }))
}

/// Matches `T Red (T Red a x b) y c`-style double-red patterns and other
/// balance shapes. Returns the rebalanced subtree for root color `c`.
fn balance<K: Ord + Clone, V: Clone>(
    color: Color,
    left: Tree<K, V>,
    key: K,
    value: V,
    right: Tree<K, V>,
) -> Tree<K, V> {
    // Double-red under a black or double-black root: rotate so the two
    // inner subtrees become siblings. Result root: Red for Black input,
    // Black for DoubleBlack input (absorbing one black unit).
    if color == Black || color == DoubleBlack {
        let out_color = if color == Black { Red } else { Black };
        // Case 1: left child red with red left child.
        if let Node(l) = &left {
            if l.color == Red {
                if let Node(ll) = &l.left {
                    if ll.color == Red {
                        let new_l = Node(ll.clone()).with_color(Black);
                        let new_r = mk(Black, l.right.clone(), key, value, right);
                        return mk_from(out_color, new_l, l, new_r);
                    }
                }
                // Case 2: left child red with red right child.
                if let Node(lr) = &l.right {
                    if lr.color == Red {
                        let new_l = mk(
                            Black,
                            l.left.clone(),
                            l.key.clone(),
                            l.value.clone(),
                            lr.left.clone(),
                        );
                        let new_r = mk(Black, lr.right.clone(), key, value, right);
                        return mk(out_color, new_l, lr.key.clone(), lr.value.clone(), new_r);
                    }
                }
            }
        }
        if let Node(r) = &right {
            if r.color == Red {
                // Case 3: right child red with red left child.
                if let Node(rl) = &r.left {
                    if rl.color == Red {
                        let new_l = mk(Black, left, key, value, rl.left.clone());
                        let new_r = mk(
                            Black,
                            rl.right.clone(),
                            r.key.clone(),
                            r.value.clone(),
                            r.right.clone(),
                        );
                        return mk(out_color, new_l, rl.key.clone(), rl.value.clone(), new_r);
                    }
                }
                // Case 4: right child red with red right child.
                if let Node(rr) = &r.right {
                    if rr.color == Red {
                        let new_l = mk(Black, left, key, value, r.left.clone());
                        let new_r = Node(rr.clone()).with_color(Black);
                        return mk_from(out_color, new_l, r, new_r);
                    }
                }
            }
        }
    }

    // Negative-black cases (deletion only): a double-black root with a
    // negative-black child whose children are both black.
    if color == DoubleBlack {
        if let Node(r) = &right {
            if r.color == NegativeBlack {
                if let (Node(rl), Node(rr)) = (&r.left, &r.right) {
                    if rl.color == Black && rr.color == Black {
                        let new_l = mk(Black, left, key, value, rl.left.clone());
                        let new_r = balance(
                            Black,
                            rl.right.clone(),
                            r.key.clone(),
                            r.value.clone(),
                            Node(rr.clone()).with_color(Red),
                        );
                        return mk(Black, new_l, rl.key.clone(), rl.value.clone(), new_r);
                    }
                }
            }
        }
        if let Node(l) = &left {
            if l.color == NegativeBlack {
                if let (Node(ll), Node(lr)) = (&l.left, &l.right) {
                    if ll.color == Black && lr.color == Black {
                        let new_l = balance(
                            Black,
                            Node(ll.clone()).with_color(Red),
                            l.key.clone(),
                            l.value.clone(),
                            lr.left.clone(),
                        );
                        let new_r = mk(Black, lr.right.clone(), key, value, right);
                        return mk(Black, new_l, lr.key.clone(), lr.value.clone(), new_r);
                    }
                }
            }
        }
    }

    mk(color, left, key, value, right)
}

/// Builds a node reusing `src`'s key/value with new children.
fn mk_from<K: Clone, V: Clone>(
    color: Color,
    left: Tree<K, V>,
    src: &Arc<RbNode<K, V>>,
    right: Tree<K, V>,
) -> Tree<K, V> {
    mk(color, left, src.key.clone(), src.value.clone(), right)
}

/// `bubble`: if either child is double black, push the extra black unit
/// up to this node and rebalance.
fn bubble<K: Ord + Clone, V: Clone>(
    color: Color,
    left: Tree<K, V>,
    key: K,
    value: V,
    right: Tree<K, V>,
) -> Tree<K, V> {
    if left.is_bb() || right.is_bb() {
        balance(color.blacker(), left.redder(), key, value, right.redder())
    } else {
        balance(color, left, key, value, right)
    }
}

fn ins<K: Ord + Clone, V: Clone>(t: &Tree<K, V>, key: K, value: V) -> (Tree<K, V>, Option<V>) {
    match t {
        E | EE => (mk(Red, E, key, value, E), None),
        Node(n) => match key.cmp(&n.key) {
            Equal => (
                mk(n.color, n.left.clone(), key, value, n.right.clone()),
                Some(n.value.clone()),
            ),
            Less => {
                let (l2, old) = ins(&n.left, key, value);
                (
                    balance(n.color, l2, n.key.clone(), n.value.clone(), n.right.clone()),
                    old,
                )
            }
            Greater => {
                let (r2, old) = ins(&n.right, key, value);
                (
                    balance(n.color, n.left.clone(), n.key.clone(), n.value.clone(), r2),
                    old,
                )
            }
        },
    }
}

/// Removes the root of `n` (the key to delete has been found).
fn remove_node<K: Ord + Clone, V: Clone>(n: &Arc<RbNode<K, V>>) -> Tree<K, V> {
    match (&n.left, &n.right) {
        (E, E) => match n.color {
            Red => E,
            Black => EE,
            _ => unreachable!("transient color in settled tree"),
        },
        // A black node with exactly one (necessarily red) child: the
        // child absorbs the black.
        (E, Node(c)) | (Node(c), E) => {
            debug_assert_eq!(c.color, Red, "single child of a black node must be red");
            Node(c.clone()).with_color(Black)
        }
        (Node(_), Node(_)) => {
            // Replace this node's entry with the maximum of the left
            // subtree, then remove that maximum.
            let (max_k, max_v) = max_entry(&n.left);
            let new_left = remove_max(&n.left);
            bubble(n.color, new_left, max_k, max_v, n.right.clone())
        }
        _ => unreachable!("EE cannot appear as a child of a settled node"),
    }
}

fn max_entry<K: Clone, V: Clone>(t: &Tree<K, V>) -> (K, V) {
    match t {
        Node(n) => match &n.right {
            E | EE => (n.key.clone(), n.value.clone()),
            _ => max_entry(&n.right),
        },
        _ => unreachable!("max of empty tree"),
    }
}

fn remove_max<K: Ord + Clone, V: Clone>(t: &Tree<K, V>) -> Tree<K, V> {
    match t {
        Node(n) => match &n.right {
            E | EE => remove_node(n),
            _ => bubble(
                n.color,
                n.left.clone(),
                n.key.clone(),
                n.value.clone(),
                remove_max(&n.right),
            ),
        },
        _ => unreachable!("remove_max of empty tree"),
    }
}

fn del<K, V, Q>(t: &Tree<K, V>, key: &Q) -> Option<(Tree<K, V>, V)>
where
    K: Ord + Clone + Borrow<Q>,
    V: Clone,
    Q: Ord + ?Sized,
{
    match t {
        E | EE => None,
        Node(n) => match key.cmp(n.key.borrow()) {
            Equal => Some((remove_node(n), n.value.clone())),
            Less => {
                let (l2, v) = del(&n.left, key)?;
                Some((
                    bubble(n.color, l2, n.key.clone(), n.value.clone(), n.right.clone()),
                    v,
                ))
            }
            Greater => {
                let (r2, v) = del(&n.right, key)?;
                Some((
                    bubble(n.color, n.left.clone(), n.key.clone(), n.value.clone(), r2),
                    v,
                ))
            }
        },
    }
}

/// Forces the root black and discharges a root double black.
fn blacken<K: Clone, V: Clone>(t: Tree<K, V>) -> Tree<K, V> {
    match t {
        E | EE => E,
        Node(n) => {
            if n.color == Black {
                Node(n)
            } else {
                Node(n.clone()).with_color(Black)
            }
        }
    }
}

/// A persistent ordered map backed by a red–black tree.
///
/// # Examples
///
/// ```
/// use pathcopy_trees::rbtree::RbMap;
///
/// let v0: RbMap<i64, &str> = RbMap::new();
/// let v1 = v0.insert(2, "two").0;
/// let v2 = v1.insert(1, "one").0;
/// let (v3, removed) = v2.remove(&2).unwrap();
/// assert_eq!(removed, "two");
/// assert!(v2.contains_key(&2)); // persistence
/// assert!(!v3.contains_key(&2));
/// ```
pub struct RbMap<K, V> {
    root: Tree<K, V>,
}

impl<K, V> Clone for RbMap<K, V> {
    fn clone(&self) -> Self {
        RbMap {
            root: self.root.clone(),
        }
    }
}

impl<K, V> Default for RbMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> RbMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        RbMap { root: E }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.root.size()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Ord + Clone, V: Clone> RbMap<K, V> {
    /// Inserts `key -> value`, returning the new version and the previous
    /// value if any.
    pub fn insert(&self, key: K, value: V) -> (Self, Option<V>) {
        let (t, old) = ins(&self.root, key, value);
        (RbMap { root: blacken(t) }, old)
    }

    /// Inserts only if absent; `None` means present (no new version).
    pub fn insert_if_absent(&self, key: K, value: V) -> Option<Self> {
        if self.contains_key(&key) {
            None
        } else {
            Some(self.insert(key, value).0)
        }
    }

    /// Removes `key`; `None` means absent (no new version).
    pub fn remove<Q>(&self, key: &Q) -> Option<(Self, V)>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let (t, v) = del(&self.root, key)?;
        Some((RbMap { root: blacken(t) }, v))
    }
}

impl<K: Ord, V> RbMap<K, V> {
    /// Looks up `key`.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut cur = &self.root;
        while let Node(n) = cur {
            match key.cmp(n.key.borrow()) {
                Less => cur = &n.left,
                Equal => return Some(&n.value),
                Greater => cur = &n.right,
            }
        }
        None
    }

    /// `true` if `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.get(key).is_some()
    }

    /// In-order iterator.
    pub fn iter(&self) -> RbIter<'_, K, V> {
        RbIter::new(&self.root)
    }

    /// Validates red–black invariants; returns the black height.
    ///
    /// # Panics
    ///
    /// Panics on violated order, color, or black-height balance, or if a
    /// transient color leaked into a settled tree.
    pub fn check_invariants(&self) -> usize {
        fn walk<K: Ord, V>(
            t: &Tree<K, V>,
            lo: Option<&K>,
            hi: Option<&K>,
            parent_red: bool,
        ) -> (usize, usize) {
            match t {
                E => (1, 0),
                EE => panic!("double-black leaf in settled tree"),
                Node(n) => {
                    assert!(
                        n.color == Red || n.color == Black,
                        "transient color {:?} in settled tree",
                        n.color
                    );
                    if n.color == Red {
                        assert!(!parent_red, "red node with red parent");
                    }
                    if let Some(lo) = lo {
                        assert!(n.key > *lo, "BST order violated");
                    }
                    if let Some(hi) = hi {
                        assert!(n.key < *hi, "BST order violated");
                    }
                    let (bh_l, sz_l) = walk(&n.left, lo, Some(&n.key), n.color == Red);
                    let (bh_r, sz_r) = walk(&n.right, Some(&n.key), hi, n.color == Red);
                    assert_eq!(bh_l, bh_r, "black height mismatch");
                    assert_eq!(n.size, 1 + sz_l + sz_r, "size field stale");
                    (bh_l + usize::from(n.color == Black), 1 + sz_l + sz_r)
                }
            }
        }
        if let Node(n) = &self.root {
            assert_eq!(n.color, Black, "root must be black");
        }
        walk(&self.root, None, None, false).0
    }
}

/// In-order iterator over an [`RbMap`].
pub struct RbIter<'a, K, V> {
    stack: Vec<&'a RbNode<K, V>>,
}

impl<'a, K, V> RbIter<'a, K, V> {
    fn new(root: &'a Tree<K, V>) -> Self {
        let mut it = RbIter { stack: Vec::new() };
        it.push_left(root);
        it
    }
    fn push_left(&mut self, mut cur: &'a Tree<K, V>) {
        while let Node(n) = cur {
            self.stack.push(n);
            cur = &n.left;
        }
    }
}

impl<'a, K, V> Iterator for RbIter<'a, K, V> {
    type Item = (&'a K, &'a V);
    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        self.push_left(&n.right);
        Some((&n.key, &n.value))
    }
}

impl<K: Ord + Clone, V: Clone> FromIterator<(K, V)> for RbMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = RbMap::new();
        for (k, v) in iter {
            m = m.insert(k, v).0;
        }
        m
    }
}

impl<K: fmt::Debug + Ord, V: fmt::Debug> fmt::Debug for RbMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// A persistent ordered set backed by [`RbMap<K, ()>`].
#[derive(Clone, Default)]
pub struct RbSet<K> {
    map: RbMap<K, ()>,
}

impl<K: Ord + Clone> RbSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        RbSet { map: RbMap::new() }
    }

    /// Inserts `key`; `None` means already present (no-op).
    pub fn insert(&self, key: K) -> Option<Self> {
        self.map.insert_if_absent(key, ()).map(|map| RbSet { map })
    }

    /// Removes `key`; `None` means absent (no-op).
    pub fn remove<Q>(&self, key: &Q) -> Option<Self>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.map.remove(key).map(|(map, ())| RbSet { map })
    }

    /// `true` if present.
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.map.contains_key(key)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Keys in order.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.map.iter().map(|(k, _)| k)
    }

    /// Validates invariants; returns the black height.
    pub fn check_invariants(&self) -> usize {
        self.map.check_invariants()
    }
}

impl<K: Ord + Clone> FromIterator<K> for RbSet<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        RbSet {
            map: iter.into_iter().map(|k| (k, ())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove() {
        let m: RbMap<i64, i64> = RbMap::new();
        let (m, old) = m.insert(5, 50);
        assert_eq!(old, None);
        let (m, old) = m.insert(5, 51);
        assert_eq!(old, Some(50));
        assert_eq!(m.get(&5), Some(&51));
        m.check_invariants();
        let (m, v) = m.remove(&5).unwrap();
        assert_eq!(v, 51);
        assert!(m.is_empty());
        assert!(m.remove(&5).is_none());
    }

    #[test]
    fn sorted_insertion_stays_balanced() {
        let n = 1 << 12;
        let m: RbMap<u64, ()> = (0..n).map(|k| (k, ())).collect();
        let bh = m.check_invariants();
        // Black height of an n-node RB tree is between log2(n)/2 and
        // log2(n)+1.
        assert!((6..=14).contains(&bh), "black height {bh} out of range");
        assert_eq!(m.len() as u64, n);
        assert!(m.iter().map(|(k, _)| *k).eq(0..n));
    }

    #[test]
    fn matches_btreemap_on_mixed_ops() {
        let mut reference = BTreeMap::new();
        let mut m: RbMap<i64, i64> = RbMap::new();
        let mut x = 77u64;
        for i in 0..6000 {
            x = crate::hash::splitmix64(x);
            let k = (x % 400) as i64;
            if x % 3 == 0 {
                match (reference.remove(&k), m.remove(&k)) {
                    (None, None) => {}
                    (Some(ev), Some((nm, gv))) => {
                        assert_eq!(ev, gv);
                        m = nm;
                    }
                    other => panic!("mismatch at step {i}: {other:?}"),
                }
            } else {
                let v = (x >> 33) as i64;
                let (nm, old) = m.insert(k, v);
                assert_eq!(old, reference.insert(k, v));
                m = nm;
            }
            if x % 256 == 0 {
                m.check_invariants();
            }
        }
        m.check_invariants();
        assert!(m.iter().map(|(k, v)| (*k, *v)).eq(reference.into_iter()));
    }

    #[test]
    fn deletion_stress_every_key_order() {
        // Delete in ascending, descending and shuffled orders; the
        // double-black machinery must hold in all of them.
        let base: RbMap<i64, i64> = (0..256).map(|k| (k, k)).collect();
        for mode in 0..3 {
            let mut m = base.clone();
            let keys: Vec<i64> = match mode {
                0 => (0..256).collect(),
                1 => (0..256).rev().collect(),
                _ => (0..256).map(|k| (k * 97) % 256).collect(),
            };
            for (i, k) in keys.iter().enumerate() {
                let (nm, v) = m.remove(k).unwrap_or_else(|| panic!("missing {k}"));
                assert_eq!(v, *k);
                m = nm;
                if i % 32 == 0 {
                    m.check_invariants();
                }
            }
            assert!(m.is_empty());
        }
    }

    #[test]
    fn persistence_between_versions() {
        let v1: RbMap<i64, i64> = (0..128).map(|k| (k, k)).collect();
        let (v2, _) = v1.remove(&64).unwrap();
        let (v3, _) = v2.insert(1000, 1000);
        assert!(v1.contains_key(&64));
        assert!(!v2.contains_key(&64));
        assert!(!v1.contains_key(&1000));
        assert!(v3.contains_key(&1000));
        v1.check_invariants();
        v2.check_invariants();
        v3.check_invariants();
    }

    #[test]
    fn set_facade_noop_semantics() {
        let s: RbSet<i64> = RbSet::new();
        let s = s.insert(1).unwrap();
        assert!(s.insert(1).is_none());
        assert!(s.remove(&2).is_none());
        let s2 = s.remove(&1).unwrap();
        assert!(s.contains(&1));
        assert!(s2.is_empty());
    }
}
