//! # pathcopy-trees
//!
//! Persistent (path-copying) sequential data structures: the substrates
//! the universal construction of `pathcopy-core` is applied to.
//!
//! Every structure here is immutable: modifying operations return a new
//! version that shares all untouched nodes with the old one. Operations
//! that would not change the structure return `None`, allowing the UC to
//! skip its CAS.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod avl;
pub mod external_bst;
pub mod hash;
pub mod list;
pub mod mutable;
pub mod pvec;
pub mod queue;
pub mod rbtree;
pub mod sharing;
pub mod treap;

pub use avl::{AvlMap, AvlSet};
pub use external_bst::ExternalBstSet;
pub use list::PStack;
pub use mutable::MutTreapSet;
pub use pvec::PVec;
pub use queue::PQueue;
pub use rbtree::{RbMap, RbSet};
pub use sharing::{node_count, sharing_stats, uncached_on_retry, SearchTree, SharingStats};
pub use treap::{TreapMap, TreapSet};
