//! Persistent FIFO queue (Okasaki's batched two-stack queue).
//!
//! `push_back` conses onto the back stack; `pop_front` pops the front
//! stack, reversing the back stack into the front when the front runs
//! dry. Amortized O(1) per operation for single-version use.

use std::fmt;

use crate::list::PStack;

/// A persistent FIFO queue.
///
/// # Examples
///
/// ```
/// use pathcopy_trees::queue::PQueue;
///
/// let q: PQueue<i32> = PQueue::new();
/// let q = q.push_back(1).push_back(2).push_back(3);
/// let (q, first) = q.pop_front().unwrap();
/// assert_eq!(first, 1);
/// assert_eq!(q.len(), 2);
/// ```
pub struct PQueue<T> {
    front: PStack<T>,
    back: PStack<T>,
}

impl<T> Clone for PQueue<T> {
    fn clone(&self) -> Self {
        PQueue {
            front: self.front.clone(),
            back: self.back.clone(),
        }
    }
}

impl<T> Default for PQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        PQueue {
            front: PStack::new(),
            back: PStack::new(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.front.len() + self.back.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.front.is_empty() && self.back.is_empty()
    }

    /// Returns a new version with `value` at the back. O(1).
    pub fn push_back(&self, value: T) -> Self {
        PQueue {
            front: self.front.clone(),
            back: self.back.push(value),
        }
    }
}

impl<T: Clone> PQueue<T> {
    /// Returns the version without the front element plus that element;
    /// `None` if empty (UC no-op). Amortized O(1).
    pub fn pop_front(&self) -> Option<(Self, T)> {
        if let Some((front, v)) = self.front.pop() {
            return Some((
                PQueue {
                    front,
                    back: self.back.clone(),
                },
                v,
            ));
        }
        // Front empty: reverse the back stack into the front.
        let reversed = self.back.reversed();
        let (front, v) = reversed.pop()?;
        Some((
            PQueue {
                front,
                back: PStack::new(),
            },
            v,
        ))
    }

    /// The front element, if any.
    pub fn peek_front(&self) -> Option<T> {
        if let Some(v) = self.front.peek() {
            return Some(v.clone());
        }
        self.back.iter().last().cloned()
    }

    /// Drains into a `Vec` in FIFO order (test/diagnostic helper; O(n)).
    pub fn to_vec(&self) -> Vec<T> {
        let mut out: Vec<T> = self.front.iter().cloned().collect();
        let tail: Vec<T> = self.back.iter().cloned().collect();
        out.extend(tail.into_iter().rev());
        out
    }
}

impl<T: fmt::Debug + Clone> fmt::Debug for PQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.to_vec()).finish()
    }
}

impl<T> FromIterator<T> for PQueue<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut q = PQueue::new();
        for v in iter {
            q = q.push_back(v);
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[test]
    fn fifo_order() {
        let q: PQueue<i32> = (1..=5).collect();
        let mut got = Vec::new();
        let mut cur = q;
        while let Some((next, v)) = cur.pop_front() {
            got.push(v);
            cur = next;
        }
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn matches_vecdeque_on_mixed_ops() {
        let mut reference = VecDeque::new();
        let mut q: PQueue<u64> = PQueue::new();
        let mut x = 9u64;
        for _ in 0..2000 {
            x = crate::hash::splitmix64(x);
            if x % 3 != 0 {
                reference.push_back(x);
                q = q.push_back(x);
            } else {
                let expected = reference.pop_front();
                match q.pop_front() {
                    Some((nq, v)) => {
                        assert_eq!(Some(v), expected);
                        q = nq;
                    }
                    None => assert_eq!(expected, None),
                }
            }
            assert_eq!(q.len(), reference.len());
        }
        assert_eq!(q.to_vec(), Vec::from(reference));
    }

    #[test]
    fn persistence_of_versions() {
        let v1: PQueue<i32> = (0..10).collect();
        let (v2, _) = v1.pop_front().unwrap();
        let v3 = v1.push_back(99);
        assert_eq!(v1.len(), 10);
        assert_eq!(v2.len(), 9);
        assert_eq!(v3.len(), 11);
        assert_eq!(v1.peek_front(), Some(0));
        assert_eq!(v2.peek_front(), Some(1));
    }

    #[test]
    fn peek_front_spans_both_stacks() {
        let q = PQueue::new().push_back(1).push_back(2);
        assert_eq!(q.peek_front(), Some(1)); // still in the back stack
        let (q, _) = q.pop_front().unwrap(); // forces the reversal
        assert_eq!(q.peek_front(), Some(2));
    }

    #[test]
    fn empty_pop_is_none() {
        let q: PQueue<i32> = PQueue::new();
        assert!(q.pop_front().is_none());
        assert_eq!(q.peek_front(), None);
    }
}
