//! Persistent bit-partitioned vector (Clojure/Scala-style, 32-way).
//!
//! A *wide* path-copying tree: updates copy a root-to-leaf path of
//! 32-ary nodes, so the path is `log₃₂ n` long but each copied node is
//! 32 pointers wide. Under the universal construction this gives a
//! different point in the cache-cost trade-off the paper's model
//! analyzes (shorter paths, larger copies) — see the branching-factor
//! ablation in EXPERIMENTS.md.

use std::fmt;
use std::sync::Arc;

/// Branching factor (2^BITS).
const BITS: usize = 5;
/// Node width.
const WIDTH: usize = 1 << BITS;
/// Index mask within one level.
const MASK: usize = WIDTH - 1;

enum VNode<T> {
    Branch(Vec<Option<Arc<VNode<T>>>>),
    Leaf(Vec<T>),
}

impl<T> VNode<T> {
    fn empty_branch() -> VNode<T> {
        VNode::Branch((0..WIDTH).map(|_| None).collect())
    }
}

/// A persistent growable array with O(log₃₂ n) indexed reads and
/// path-copying updates.
///
/// # Examples
///
/// ```
/// use pathcopy_trees::pvec::PVec;
///
/// let v0: PVec<i32> = (0..100).collect();
/// let v1 = v0.set(50, -1).unwrap();
/// assert_eq!(v0.get(50), Some(&50)); // old version intact
/// assert_eq!(v1.get(50), Some(&-1));
/// let v2 = v1.push(100);
/// assert_eq!(v2.len(), 101);
/// ```
pub struct PVec<T> {
    len: usize,
    /// Number of index bits consumed below the root.
    shift: usize,
    root: Option<Arc<VNode<T>>>,
}

impl<T> Clone for PVec<T> {
    fn clone(&self) -> Self {
        PVec {
            len: self.len,
            shift: self.shift,
            root: self.root.clone(),
        }
    }
}

impl<T> Default for PVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PVec<T> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        PVec {
            len: 0,
            shift: 0,
            root: None,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Indexed read; `None` out of bounds. O(log₃₂ n).
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            return None;
        }
        let mut node = self.root.as_deref()?;
        let mut shift = self.shift;
        loop {
            match node {
                VNode::Branch(children) => {
                    let slot = (index >> shift) & MASK;
                    node = children[slot].as_deref()?;
                    shift -= BITS;
                }
                VNode::Leaf(items) => return items.get(index & MASK),
            }
        }
    }
}

impl<T: Clone> PVec<T> {
    /// Returns a new version with `value` appended. Copies one
    /// root-to-leaf path (plus a new root when the tree grows a level).
    pub fn push(&self, value: T) -> Self {
        let index = self.len;
        if self.root.is_none() {
            return PVec {
                len: 1,
                shift: 0,
                root: Some(Arc::new(VNode::Leaf(vec![value]))),
            };
        }
        // Does the current tree have room for `index`?
        let capacity = WIDTH << self.shift;
        if index < capacity {
            let root = self.root.as_ref().expect("non-empty");
            let new_root = push_rec(Some(root), self.shift, index, value);
            PVec {
                len: self.len + 1,
                shift: self.shift,
                root: Some(new_root),
            }
        } else {
            // Grow a level: the old root becomes child 0 of a new root.
            let mut children: Vec<Option<Arc<VNode<T>>>> = (0..WIDTH).map(|_| None).collect();
            children[0] = self.root.clone();
            let new_shift = self.shift + BITS;
            let grown = Arc::new(VNode::Branch(children));
            let new_root = push_rec(Some(&grown), new_shift, index, value);
            PVec {
                len: self.len + 1,
                shift: new_shift,
                root: Some(new_root),
            }
        }
    }

    /// Returns a new version with index `index` replaced; `None` if out
    /// of bounds (a UC no-op).
    pub fn set(&self, index: usize, value: T) -> Option<Self> {
        if index >= self.len {
            return None;
        }
        let root = self.root.as_ref().expect("non-empty");
        Some(PVec {
            len: self.len,
            shift: self.shift,
            root: Some(set_rec(root, self.shift, index, value)),
        })
    }

    /// Returns the version without the last element plus that element;
    /// `None` if empty.
    pub fn pop(&self) -> Option<(Self, T)> {
        if self.len == 0 {
            return None;
        }
        let value = self.get(self.len - 1).expect("in bounds").clone();
        if self.len == 1 {
            return Some((PVec::new(), value));
        }
        let root = self.root.as_ref().expect("non-empty");
        let new_root = pop_rec(root, self.shift, self.len - 1).expect("non-empty after pop");
        // Shrink the root if it has a single child branch.
        let (root, shift) = shrink(new_root, self.shift);
        Some((
            PVec {
                len: self.len - 1,
                shift,
                root: Some(root),
            },
            value,
        ))
    }

    /// Iterator over elements in index order.
    pub fn iter(&self) -> PVecIter<'_, T> {
        PVecIter {
            vec: self,
            index: 0,
        }
    }
}

fn push_rec<T: Clone>(
    node: Option<&Arc<VNode<T>>>,
    shift: usize,
    index: usize,
    value: T,
) -> Arc<VNode<T>> {
    if shift == 0 {
        // Leaf level.
        return match node {
            None => Arc::new(VNode::Leaf(vec![value])),
            Some(n) => match &**n {
                VNode::Leaf(items) => {
                    debug_assert!(items.len() < WIDTH, "leaf overflow");
                    let mut new_items = items.clone();
                    new_items.push(value);
                    Arc::new(VNode::Leaf(new_items))
                }
                VNode::Branch(_) => unreachable!("branch at leaf level"),
            },
        };
    }
    let slot = (index >> shift) & MASK;
    let mut children = match node {
        None => return push_rec(Some(&Arc::new(VNode::empty_branch())), shift, index, value),
        Some(n) => match &**n {
            VNode::Branch(children) => children.clone(),
            VNode::Leaf(_) => unreachable!("leaf above leaf level"),
        },
    };
    let child = push_rec(children[slot].as_ref(), shift - BITS, index, value);
    children[slot] = Some(child);
    Arc::new(VNode::Branch(children))
}

fn set_rec<T: Clone>(node: &Arc<VNode<T>>, shift: usize, index: usize, value: T) -> Arc<VNode<T>> {
    match &**node {
        VNode::Leaf(items) => {
            let mut new_items = items.clone();
            new_items[index & MASK] = value;
            Arc::new(VNode::Leaf(new_items))
        }
        VNode::Branch(children) => {
            let slot = (index >> shift) & MASK;
            let child = children[slot].as_ref().expect("path exists");
            let new_child = set_rec(child, shift - BITS, index, value);
            let mut new_children = children.clone();
            new_children[slot] = Some(new_child);
            Arc::new(VNode::Branch(new_children))
        }
    }
}

/// Removes the element at `last` (the final index); returns `None` if the
/// subtree becomes empty.
fn pop_rec<T: Clone>(node: &Arc<VNode<T>>, shift: usize, last: usize) -> Option<Arc<VNode<T>>> {
    match &**node {
        VNode::Leaf(items) => {
            if items.len() == 1 {
                None
            } else {
                let mut new_items = items.clone();
                new_items.pop();
                Some(Arc::new(VNode::Leaf(new_items)))
            }
        }
        VNode::Branch(children) => {
            let slot = (last >> shift) & MASK;
            let child = children[slot].as_ref().expect("path exists");
            let new_child = pop_rec(child, shift - BITS, last);
            let mut new_children = children.clone();
            new_children[slot] = new_child;
            if slot == 0 && new_children[0].is_none() {
                None
            } else {
                Some(Arc::new(VNode::Branch(new_children)))
            }
        }
    }
}

/// Collapses single-child root branches after a pop.
fn shrink<T>(mut root: Arc<VNode<T>>, mut shift: usize) -> (Arc<VNode<T>>, usize) {
    loop {
        let collapse = match &*root {
            VNode::Branch(children) if shift > 0 => {
                let occupied: Vec<usize> = children
                    .iter()
                    .enumerate()
                    .filter_map(|(i, c)| c.as_ref().map(|_| i))
                    .collect();
                if occupied == [0] {
                    children[0].clone()
                } else {
                    None
                }
            }
            _ => None,
        };
        match collapse {
            Some(only_child) => {
                root = only_child;
                shift -= BITS;
            }
            None => return (root, shift),
        }
    }
}

/// Index-order iterator over a [`PVec`].
pub struct PVecIter<'a, T> {
    vec: &'a PVec<T>,
    index: usize,
}

impl<'a, T: Clone> Iterator for PVecIter<'a, T> {
    type Item = &'a T;
    fn next(&mut self) -> Option<Self::Item> {
        let item = self.vec.get(self.index)?;
        self.index += 1;
        Some(item)
    }
}

impl<T: Clone> FromIterator<T> for PVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = PVec::new();
        for item in iter {
            v = v.push(item);
        }
        v
    }
}

impl<T: fmt::Debug + Clone> fmt::Debug for PVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_across_level_growth() {
        // Cross the 32 and 1024 boundaries.
        let n = 40 * WIDTH;
        let v: PVec<usize> = (0..n).collect();
        assert_eq!(v.len(), n);
        for i in (0..n).step_by(7) {
            assert_eq!(v.get(i), Some(&i), "index {i}");
        }
        assert_eq!(v.get(n), None);
    }

    #[test]
    fn set_is_persistent() {
        let v0: PVec<i32> = (0..1000).collect();
        let v1 = v0.set(500, -1).unwrap();
        assert_eq!(v0.get(500), Some(&500));
        assert_eq!(v1.get(500), Some(&-1));
        assert!(v0.set(1000, 0).is_none(), "out of bounds is a no-op");
    }

    #[test]
    fn pop_reverses_push() {
        let n = 3 * WIDTH + 5;
        let v: PVec<usize> = (0..n).collect();
        let mut cur = v;
        for expect in (0..n).rev() {
            let (next, popped) = cur.pop().unwrap();
            assert_eq!(popped, expect);
            cur = next;
            assert_eq!(cur.len(), expect);
        }
        assert!(cur.pop().is_none());
    }

    #[test]
    fn iterator_matches_contents() {
        let v: PVec<usize> = (0..200).collect();
        let collected: Vec<usize> = v.iter().copied().collect();
        assert_eq!(collected, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn matches_vec_on_mixed_ops() {
        let mut reference: Vec<u64> = Vec::new();
        let mut v: PVec<u64> = PVec::new();
        let mut x = 3u64;
        for _ in 0..3000 {
            x = crate::hash::splitmix64(x);
            match x % 4 {
                0 | 1 => {
                    reference.push(x);
                    v = v.push(x);
                }
                2 if !reference.is_empty() => {
                    let i = (x % reference.len() as u64) as usize;
                    reference[i] = x;
                    v = v.set(i, x).unwrap();
                }
                _ => {
                    let expected = reference.pop();
                    match v.pop() {
                        Some((nv, got)) => {
                            assert_eq!(Some(got), expected);
                            v = nv;
                        }
                        None => assert_eq!(expected, None),
                    }
                }
            }
            assert_eq!(v.len(), reference.len());
        }
        assert!(v.iter().copied().eq(reference.into_iter()));
    }

    #[test]
    fn structural_sharing_on_set() {
        // A set on a large vector must not copy most leaves: verify by
        // pointer identity of an untouched leaf's element.
        let v0: PVec<usize> = (0..100_000).collect();
        let v1 = v0.set(0, 1).unwrap();
        let a = v0.get(99_999).unwrap() as *const usize;
        let b = v1.get(99_999).unwrap() as *const usize;
        assert_eq!(a, b, "untouched leaf must be shared");
    }
}
