//! Persistent treap — the data structure the paper benchmarks.
//!
//! A treap (Seidel & Aragon, *Randomized search trees*, Algorithmica 1996)
//! is a binary search tree in key order that is simultaneously a max-heap
//! in priority order; with uniform random priorities its height is
//! `O(log n)` with high probability.
//!
//! This implementation is **persistent**: every modifying operation
//! returns a *new* version and leaves the receiver untouched. New versions
//! share all untouched nodes with the old version; an update allocates
//! only the nodes on (roughly) the root-to-key search path — this is the
//! *path copying* of the paper's title, and the source of the cache
//! effect it analyzes.
//!
//! Priorities are derived by hashing the key (see [`crate::hash`]), so a
//! given key set always produces the same canonical tree, regardless of
//! operation order. Explicit-priority entry points exist for callers that
//! want classical randomized behaviour.

use std::borrow::Borrow;
use std::cmp::Ordering::{Equal, Greater, Less};
use std::fmt;
use std::hash::Hash;
use std::ops::Bound;
use std::ops::RangeBounds;
use std::sync::Arc;

use pathcopy_core::api::DiffEntry;

use crate::hash::priority_of;

/// Shared, immutable treap node.
#[derive(Debug)]
pub struct Node<K, V> {
    key: K,
    value: V,
    priority: u64,
    /// Number of nodes in this subtree (enables rank/select in O(log n)).
    size: usize,
    left: Link<K, V>,
    right: Link<K, V>,
}

pub(crate) type Link<K, V> = Option<Arc<Node<K, V>>>;

impl<K, V> Node<K, V> {
    /// The node's key.
    pub fn key(&self) -> &K {
        &self.key
    }
    /// The node's value.
    pub fn value(&self) -> &V {
        &self.value
    }
    /// The node's heap priority.
    pub fn priority(&self) -> u64 {
        self.priority
    }
    /// Left child, if any.
    pub fn left(&self) -> Option<&Arc<Node<K, V>>> {
        self.left.as_ref()
    }
    /// Right child, if any.
    pub fn right(&self) -> Option<&Arc<Node<K, V>>> {
        self.right.as_ref()
    }
}

#[inline]
fn size_of<K, V>(link: &Link<K, V>) -> usize {
    link.as_ref().map_or(0, |n| n.size)
}

#[inline]
fn mk<K, V>(
    key: K,
    value: V,
    priority: u64,
    left: Link<K, V>,
    right: Link<K, V>,
) -> Arc<Node<K, V>> {
    let size = 1 + size_of(&left) + size_of(&right);
    Arc::new(Node {
        key,
        value,
        priority,
        size,
        left,
        right,
    })
}

/// A persistent ordered map backed by a treap.
///
/// Cloning is O(1) (it clones an `Arc` and a counter); all updates are
/// O(log n) expected time and allocate O(log n) nodes, sharing the rest
/// with the previous version.
///
/// # Examples
///
/// ```
/// use pathcopy_trees::TreapMap;
///
/// let v0: TreapMap<i64, &str> = TreapMap::new();
/// let (v1, _) = v0.insert(1, "one");
/// let (v2, _) = v1.insert(2, "two");
/// let (v3, old) = v2.insert(1, "uno");
/// assert_eq!(old, Some("one"));
///
/// // Every version is still intact:
/// assert_eq!(v1.get(&1), Some(&"one"));
/// assert_eq!(v3.get(&1), Some(&"uno"));
/// assert_eq!(v0.len(), 0);
/// ```
pub struct TreapMap<K, V> {
    root: Link<K, V>,
}

impl<K, V> Clone for TreapMap<K, V> {
    fn clone(&self) -> Self {
        TreapMap {
            root: self.root.clone(),
        }
    }
}

impl<K, V> Default for TreapMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> TreapMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        TreapMap { root: None }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        size_of(&self.root)
    }

    /// `true` if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// The root node, exposed for structural inspection (sharing
    /// measurements, invariant checks).
    pub fn root(&self) -> Option<&Arc<Node<K, V>>> {
        self.root.as_ref()
    }
}

impl<K: Ord + Clone + Hash, V: Clone> TreapMap<K, V> {
    /// Inserts `key -> value` with the canonical hashed priority,
    /// returning the new version and the previous value, if any.
    pub fn insert(&self, key: K, value: V) -> (Self, Option<V>) {
        let priority = priority_of(&key);
        self.insert_with_priority(key, value, priority)
    }

    /// Inserts `key -> value` only if absent; `None` means the key was
    /// already present and **no new version was created** (the operation
    /// is a no-op, letting the universal construction skip its CAS).
    ///
    /// Single traversal: presence is detected during the descent, so a
    /// no-op costs no allocation.
    pub fn insert_if_absent(&self, key: K, value: V) -> Option<Self> {
        let priority = priority_of(&key);
        insert_new_rec(&self.root, key, value, priority).map(|root| TreapMap { root: Some(root) })
    }
}

impl<K: Ord + Clone, V: Clone> TreapMap<K, V> {
    /// Inserts with an explicit priority (classical randomized treap use).
    pub fn insert_with_priority(&self, key: K, value: V, priority: u64) -> (Self, Option<V>) {
        let (root, old) = insert_rec(&self.root, key, value, priority);
        (TreapMap { root: Some(root) }, old)
    }

    /// Removes `key`, returning the new version and the removed value;
    /// `None` means the key was absent (no new version created).
    pub fn remove<Q>(&self, key: &Q) -> Option<(Self, V)>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        remove_rec(&self.root, key).map(|(root, v)| (TreapMap { root }, v))
    }

    /// Splits into (`< key`, value at `key`, `> key`).
    pub fn split<Q>(&self, key: &Q) -> (Self, Option<V>, Self)
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let (l, m, r) = split_rec(&self.root, key);
        (
            TreapMap { root: l },
            m.map(|n| n.value.clone()),
            TreapMap { root: r },
        )
    }

    /// Joins two maps; every key of `self` must be strictly less than
    /// every key of `right`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the key ranges overlap.
    pub fn join(&self, right: &Self) -> Self {
        debug_assert!(
            match (self.max_entry(), right.min_entry()) {
                (Some((a, _)), Some((b, _))) => a < b,
                _ => true,
            },
            "join requires disjoint, ordered key ranges"
        );
        TreapMap {
            root: merge(&self.root, &right.root),
        }
    }

    /// Set-union of two maps; on key collisions values from `self` win.
    pub fn union(&self, other: &Self) -> Self {
        TreapMap {
            root: union_rec(&self.root, &other.root),
        }
    }

    /// Returns the entry with the smallest key ≥ `key`.
    pub fn ceiling<Q>(&self, key: &Q) -> Option<(&K, &V)>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut best = None;
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match key.cmp(n.key.borrow()) {
                Less => {
                    best = Some((&n.key, &n.value));
                    cur = n.left.as_deref();
                }
                Equal => return Some((&n.key, &n.value)),
                Greater => cur = n.right.as_deref(),
            }
        }
        best
    }

    /// Returns the entry with the largest key ≤ `key`.
    pub fn floor<Q>(&self, key: &Q) -> Option<(&K, &V)>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut best = None;
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match key.cmp(n.key.borrow()) {
                Greater => {
                    best = Some((&n.key, &n.value));
                    cur = n.right.as_deref();
                }
                Equal => return Some((&n.key, &n.value)),
                Less => cur = n.left.as_deref(),
            }
        }
        best
    }
}

impl<K: Ord, V> TreapMap<K, V> {
    /// Looks up a key.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match key.cmp(n.key.borrow()) {
                Less => cur = n.left.as_deref(),
                Equal => return Some(&n.value),
                Greater => cur = n.right.as_deref(),
            }
        }
        None
    }

    /// `true` if the key is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Entry with the minimum key.
    pub fn min_entry(&self) -> Option<(&K, &V)> {
        let mut cur = self.root.as_deref()?;
        while let Some(l) = cur.left.as_deref() {
            cur = l;
        }
        Some((&cur.key, &cur.value))
    }

    /// Entry with the maximum key.
    pub fn max_entry(&self) -> Option<(&K, &V)> {
        let mut cur = self.root.as_deref()?;
        while let Some(r) = cur.right.as_deref() {
            cur = r;
        }
        Some((&cur.key, &cur.value))
    }

    /// Entry with rank `k` (0-based in key order).
    pub fn select(&self, mut k: usize) -> Option<(&K, &V)> {
        let mut cur = self.root.as_deref()?;
        loop {
            let ls = size_of(&cur.left);
            match k.cmp(&ls) {
                Less => cur = cur.left.as_deref()?,
                Equal => return Some((&cur.key, &cur.value)),
                Greater => {
                    k -= ls + 1;
                    cur = cur.right.as_deref()?;
                }
            }
        }
    }

    /// Number of keys strictly less than `key`.
    pub fn rank<Q>(&self, key: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut cur = self.root.as_deref();
        let mut acc = 0;
        while let Some(n) = cur {
            match key.cmp(n.key.borrow()) {
                Less => cur = n.left.as_deref(),
                Equal => return acc + size_of(&n.left),
                Greater => {
                    acc += size_of(&n.left) + 1;
                    cur = n.right.as_deref();
                }
            }
        }
        acc
    }

    /// In-order iterator over `(&K, &V)`.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter::new(&self.root)
    }

    /// In-order iterator over keys.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// In-order iterator over the entries whose keys lie in `range`.
    pub fn range<R>(&self, range: R) -> Range<'_, K, V, R>
    where
        R: RangeBounds<K>,
    {
        Range::new(&self.root, range)
    }

    /// Tree height (0 for the empty tree). O(n).
    pub fn height(&self) -> usize {
        fn h<K, V>(link: &Link<K, V>) -> usize {
            link.as_ref().map_or(0, |n| 1 + h(&n.left).max(h(&n.right)))
        }
        h(&self.root)
    }

    /// Number of nodes on the root-to-key search path (the quantity the
    /// paper's cost model charges per operation). Counts nodes visited
    /// until the key is found or a nil child is reached.
    pub fn path_len<Q>(&self, key: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut cur = self.root.as_deref();
        let mut n_visited = 0;
        while let Some(n) = cur {
            n_visited += 1;
            match key.cmp(n.key.borrow()) {
                Less => cur = n.left.as_deref(),
                Equal => break,
                Greater => cur = n.right.as_deref(),
            }
        }
        n_visited
    }

    /// Validates the treap invariants, returning the node count.
    ///
    /// # Panics
    ///
    /// Panics if key order, heap order, or size bookkeeping is violated.
    pub fn check_invariants(&self) -> usize {
        fn walk<K: Ord, V>(link: &Link<K, V>, lo: Option<&K>, hi: Option<&K>) -> usize {
            match link {
                None => 0,
                Some(n) => {
                    if let Some(lo) = lo {
                        assert!(n.key > *lo, "BST order violated (left bound)");
                    }
                    if let Some(hi) = hi {
                        assert!(n.key < *hi, "BST order violated (right bound)");
                    }
                    for c in [&n.left, &n.right].into_iter().flatten() {
                        assert!(
                            c.priority <= n.priority,
                            "heap order violated: child priority above parent"
                        );
                    }
                    let ls = walk(&n.left, lo, Some(&n.key));
                    let rs = walk(&n.right, Some(&n.key), hi);
                    assert_eq!(n.size, ls + rs + 1, "size field out of date");
                    n.size
                }
            }
        }
        walk(&self.root, None, None)
    }
}

impl<K: Ord + Clone, V: Clone + PartialEq> TreapMap<K, V> {
    /// Difference between this (older) version and `newer`, in ascending
    /// key order.
    ///
    /// Exploits path copying: a subtree that is pointer-identical in both
    /// versions is skipped without being visited, so the cost is
    /// proportional to the changed region plus its boundary search paths
    /// — sublinear in the map size for nearby versions.
    pub fn diff(&self, newer: &Self) -> Vec<DiffEntry<K, V>> {
        self.diff_counted(newer).0
    }

    /// [`diff`](Self::diff) that also reports how many tree nodes the
    /// walk visited — the observable form of the shared-subtree
    /// short-circuit (two identical versions visit 0 nodes).
    pub fn diff_counted(&self, newer: &Self) -> (Vec<DiffEntry<K, V>>, usize) {
        let mut old = DiffWalk::new(&self.root);
        let mut new = DiffWalk::new(&newer.root);
        let mut out = Vec::new();
        let mut visited = 0usize;
        loop {
            // Skip subtrees shared between the versions: both walks are
            // positioned just before the same run of entries, so the run
            // contributes nothing to the diff.
            while let (Some(a), Some(b)) = (old.top_subtree(), new.top_subtree()) {
                if Arc::ptr_eq(a, b) {
                    old.pop();
                    new.pop();
                } else {
                    break;
                }
            }
            // Expand unexplored tops one level at a time so the skip
            // check above sees every shared child before it is opened.
            if old.top_subtree().is_some() {
                visited += 1;
                old.expand_top();
                continue;
            }
            if new.top_subtree().is_some() {
                visited += 1;
                new.expand_top();
                continue;
            }
            match (old.top_entry(), new.top_entry()) {
                (None, None) => break,
                (Some(n), None) => {
                    out.push(DiffEntry::Removed(n.key.clone(), n.value.clone()));
                    old.pop();
                }
                (None, Some(n)) => {
                    out.push(DiffEntry::Added(n.key.clone(), n.value.clone()));
                    new.pop();
                }
                (Some(a), Some(b)) => match a.key.cmp(&b.key) {
                    Less => {
                        out.push(DiffEntry::Removed(a.key.clone(), a.value.clone()));
                        old.pop();
                    }
                    Greater => {
                        out.push(DiffEntry::Added(b.key.clone(), b.value.clone()));
                        new.pop();
                    }
                    Equal => {
                        if a.value != b.value {
                            out.push(DiffEntry::Changed(
                                a.key.clone(),
                                a.value.clone(),
                                b.value.clone(),
                            ));
                        }
                        old.pop();
                        new.pop();
                    }
                },
            }
        }
        (out, visited)
    }
}

/// One pending step of an in-order diff walk.
enum DiffFrame<'a, K, V> {
    /// A node whose own entry is the next thing in order (its left
    /// subtree has already been dispatched).
    Entry(&'a Node<K, V>),
    /// An unexplored subtree, still skippable as a whole.
    Subtree(&'a Arc<Node<K, V>>),
}

/// In-order walk that exposes its unexplored subtrees, so the diff can
/// skip ones shared with the other version before opening them.
struct DiffWalk<'a, K, V> {
    frames: Vec<DiffFrame<'a, K, V>>,
}

impl<'a, K, V> DiffWalk<'a, K, V> {
    fn new(root: &'a Link<K, V>) -> Self {
        DiffWalk {
            frames: root.as_ref().map(DiffFrame::Subtree).into_iter().collect(),
        }
    }

    fn top_subtree(&self) -> Option<&'a Arc<Node<K, V>>> {
        match self.frames.last() {
            Some(DiffFrame::Subtree(s)) => Some(s),
            _ => None,
        }
    }

    fn top_entry(&self) -> Option<&'a Node<K, V>> {
        match self.frames.last() {
            Some(DiffFrame::Entry(n)) => Some(n),
            _ => None,
        }
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    /// Replaces the top `Subtree` frame by (right subtree, own entry,
    /// left subtree), leaving the left subtree on top.
    fn expand_top(&mut self) {
        let Some(DiffFrame::Subtree(s)) = self.frames.pop() else {
            unreachable!("expand_top requires a Subtree top");
        };
        if let Some(r) = s.right.as_ref() {
            self.frames.push(DiffFrame::Subtree(r));
        }
        self.frames.push(DiffFrame::Entry(s.as_ref()));
        if let Some(l) = s.left.as_ref() {
            self.frames.push(DiffFrame::Subtree(l));
        }
    }
}

impl<K: Ord + Clone + Hash, V: Clone> FromIterator<(K, V)> for TreapMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = TreapMap::new();
        for (k, v) in iter {
            map = map.insert(k, v).0;
        }
        map
    }
}

impl<K: fmt::Debug + Ord, V: fmt::Debug> fmt::Debug for TreapMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Ord, V: PartialEq> PartialEq for TreapMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}
impl<K: Ord, V: Eq> Eq for TreapMap<K, V> {}

// ---------------------------------------------------------------------------
// Recursive machinery. Every function here allocates only along the search
// path: untouched subtrees are shared via `Arc` clones.
// ---------------------------------------------------------------------------

/// Copies a node, replacing its children.
#[inline]
fn with_children<K: Clone, V: Clone>(
    n: &Node<K, V>,
    left: Link<K, V>,
    right: Link<K, V>,
) -> Arc<Node<K, V>> {
    mk(n.key.clone(), n.value.clone(), n.priority, left, right)
}

fn insert_rec<K: Ord + Clone, V: Clone>(
    link: &Link<K, V>,
    key: K,
    value: V,
    priority: u64,
) -> (Arc<Node<K, V>>, Option<V>) {
    match link {
        None => (mk(key, value, priority, None, None), None),
        Some(n) => {
            if priority > n.priority {
                // The new node belongs above this subtree: split the
                // subtree around the key and put the new node on top.
                let (l, m, r) = split_rec(link, &key);
                let old = m.map(|mid| mid.value.clone());
                (mk(key, value, priority, l, r), old)
            } else {
                match key.cmp(&n.key) {
                    Equal => (
                        // Same key: replace the value, keep shape.
                        mk(key, value, n.priority, n.left.clone(), n.right.clone()),
                        Some(n.value.clone()),
                    ),
                    Less => {
                        let (nl, old) = insert_rec(&n.left, key, value, priority);
                        // `nl.priority <= n.priority` (the new node either
                        // stayed below or had priority <= ours), so the
                        // heap property holds without rotations here.
                        (with_children(n, Some(nl), n.right.clone()), old)
                    }
                    Greater => {
                        let (nr, old) = insert_rec(&n.right, key, value, priority);
                        (with_children(n, n.left.clone(), Some(nr)), old)
                    }
                }
            }
        }
    }
}

/// Insert-if-absent in one pass: returns `None` (no allocation beyond the
/// already-built spine) when the key is found.
fn insert_new_rec<K: Ord + Clone, V: Clone>(
    link: &Link<K, V>,
    key: K,
    value: V,
    priority: u64,
) -> Option<Arc<Node<K, V>>> {
    match link {
        None => Some(mk(key, value, priority, None, None)),
        Some(n) => {
            if priority > n.priority {
                // With hashed priorities an existing key would have our
                // exact priority and we could not be above it, so `m` is
                // None except under explicit priorities or hash ties.
                let (l, m, r) = split_rec(link, &key);
                if m.is_some() {
                    return None;
                }
                Some(mk(key, value, priority, l, r))
            } else {
                match key.cmp(&n.key) {
                    Equal => None,
                    Less => {
                        let nl = insert_new_rec(&n.left, key, value, priority)?;
                        Some(with_children(n, Some(nl), n.right.clone()))
                    }
                    Greater => {
                        let nr = insert_new_rec(&n.right, key, value, priority)?;
                        Some(with_children(n, n.left.clone(), Some(nr)))
                    }
                }
            }
        }
    }
}

fn remove_rec<K, V, Q>(link: &Link<K, V>, key: &Q) -> Option<(Link<K, V>, V)>
where
    K: Ord + Clone + Borrow<Q>,
    V: Clone,
    Q: Ord + ?Sized,
{
    let n = link.as_ref()?;
    match key.cmp(n.key.borrow()) {
        Equal => Some((merge(&n.left, &n.right), n.value.clone())),
        Less => {
            let (nl, v) = remove_rec(&n.left, key)?;
            Some((Some(with_children(n, nl, n.right.clone())), v))
        }
        Greater => {
            let (nr, v) = remove_rec(&n.right, key)?;
            Some((Some(with_children(n, n.left.clone(), nr)), v))
        }
    }
}

/// Merges two treaps where every key of `l` < every key of `r`.
fn merge<K: Ord + Clone, V: Clone>(l: &Link<K, V>, r: &Link<K, V>) -> Link<K, V> {
    match (l, r) {
        (None, _) => r.clone(),
        (_, None) => l.clone(),
        (Some(a), Some(b)) => {
            if a.priority >= b.priority {
                Some(with_children(a, a.left.clone(), merge(&a.right, r)))
            } else {
                Some(with_children(b, merge(l, &b.left), b.right.clone()))
            }
        }
    }
}

/// Splits around `key` into (`< key`, the node with `key` if present,
/// `> key`).
#[allow(clippy::type_complexity)]
fn split_rec<K, V, Q>(
    link: &Link<K, V>,
    key: &Q,
) -> (Link<K, V>, Option<Arc<Node<K, V>>>, Link<K, V>)
where
    K: Ord + Clone + Borrow<Q>,
    V: Clone,
    Q: Ord + ?Sized,
{
    match link {
        None => (None, None, None),
        Some(n) => match key.cmp(n.key.borrow()) {
            Equal => (n.left.clone(), Some(n.clone()), n.right.clone()),
            Less => {
                let (l, m, lr) = split_rec(&n.left, key);
                (l, m, Some(with_children(n, lr, n.right.clone())))
            }
            Greater => {
                let (rl, m, r) = split_rec(&n.right, key);
                (Some(with_children(n, n.left.clone(), rl)), m, r)
            }
        },
    }
}

/// Union by split-and-recurse; `a`'s values win on collisions. The root
/// of the result is whichever input root has the higher priority, which
/// keeps the heap order intact.
fn union_rec<K: Ord + Clone, V: Clone>(a: &Link<K, V>, b: &Link<K, V>) -> Link<K, V> {
    match (a, b) {
        (None, _) => b.clone(),
        (_, None) => a.clone(),
        (Some(an), Some(bn)) => {
            if an.priority >= bn.priority {
                let (bl, _bm, br) = split_rec(b, an.key.borrow());
                let left = union_rec(&an.left, &bl);
                let right = union_rec(&an.right, &br);
                Some(with_children(an, left, right))
            } else {
                let (al, am, ar) = split_rec(a, bn.key.borrow());
                let left = union_rec(&al, &bn.left);
                let right = union_rec(&ar, &bn.right);
                // `a`'s value wins if both trees carry `bn.key`.
                let value = am.map_or_else(|| bn.value.clone(), |m| m.value.clone());
                Some(mk(bn.key.clone(), value, bn.priority, left, right))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Iterators
// ---------------------------------------------------------------------------

/// In-order iterator over a [`TreapMap`].
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<'a, K, V> Iter<'a, K, V> {
    fn new(root: &'a Link<K, V>) -> Self {
        let mut it = Iter { stack: Vec::new() };
        it.push_left_spine(root.as_deref());
        it
    }

    fn push_left_spine(&mut self, mut cur: Option<&'a Node<K, V>>) {
        while let Some(n) = cur {
            self.stack.push(n);
            cur = n.left.as_deref();
        }
    }
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        self.push_left_spine(n.right.as_deref());
        Some((&n.key, &n.value))
    }
}

/// Owning in-order iterator over a [`TreapMap`] version.
///
/// Holds `Arc` references to the pending subtrees, so it is independent
/// of any borrow of the map — the iterator form of a snapshot handle.
/// Entries are cloned out of the shared nodes as they are produced.
pub struct IntoIter<K, V> {
    stack: Vec<Arc<Node<K, V>>>,
}

impl<K, V> IntoIter<K, V> {
    fn new(root: Link<K, V>) -> Self {
        let mut it = IntoIter { stack: Vec::new() };
        it.push_left_spine(root);
        it
    }

    fn push_left_spine(&mut self, mut cur: Link<K, V>) {
        while let Some(n) = cur {
            cur = n.left.clone();
            self.stack.push(n);
        }
    }
}

impl<K: Clone, V: Clone> Iterator for IntoIter<K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        self.push_left_spine(n.right.clone());
        Some((n.key.clone(), n.value.clone()))
    }
}

impl<K: Clone, V: Clone> IntoIterator for TreapMap<K, V> {
    type Item = (K, V);
    type IntoIter = IntoIter<K, V>;

    fn into_iter(self) -> Self::IntoIter {
        IntoIter::new(self.root)
    }
}

impl<'a, K, V> IntoIterator for &'a TreapMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Iter<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        Iter::new(&self.root)
    }
}

/// Iterator over a key range of a [`TreapMap`].
pub struct Range<'a, K, V, R> {
    stack: Vec<&'a Node<K, V>>,
    range: R,
}

impl<'a, K: Ord, V, R: RangeBounds<K>> Range<'a, K, V, R> {
    fn new(root: &'a Link<K, V>, range: R) -> Self {
        let mut it = Range {
            stack: Vec::new(),
            range,
        };
        it.push_from(root.as_deref());
        it
    }

    /// Pushes the left spine, skipping subtrees entirely below the lower
    /// bound.
    fn push_from(&mut self, mut cur: Option<&'a Node<K, V>>) {
        while let Some(n) = cur {
            let below = match self.range.start_bound() {
                Bound::Included(lo) => n.key < *lo,
                Bound::Excluded(lo) => n.key <= *lo,
                Bound::Unbounded => false,
            };
            if below {
                cur = n.right.as_deref();
            } else {
                self.stack.push(n);
                cur = n.left.as_deref();
            }
        }
    }
}

impl<'a, K: Ord, V, R: RangeBounds<K>> Iterator for Range<'a, K, V, R> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        self.push_from(n.right.as_deref());
        let above = match self.range.end_bound() {
            Bound::Included(hi) => n.key > *hi,
            Bound::Excluded(hi) => n.key >= *hi,
            Bound::Unbounded => false,
        };
        if above {
            self.stack.clear();
            return None;
        }
        Some((&n.key, &n.value))
    }
}

// ---------------------------------------------------------------------------
// Set façade
// ---------------------------------------------------------------------------

/// A persistent ordered set backed by [`TreapMap<K, ()>`].
///
/// `insert`/`remove` return `None` when the operation would not change the
/// set, so the universal construction can skip its CAS (paper §4.2: "some
/// operations do not modify the data structure").
#[derive(Clone, Default)]
pub struct TreapSet<K> {
    map: TreapMap<K, ()>,
}

impl<K: Ord + Clone + Hash> TreapSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self
    where
        K: Default,
    {
        TreapSet {
            map: TreapMap::new(),
        }
    }

    /// Creates an empty set (no `Default` bound).
    pub fn empty() -> Self {
        TreapSet {
            map: TreapMap::new(),
        }
    }

    /// Inserts `key`; `None` means it was already present.
    pub fn insert(&self, key: K) -> Option<Self> {
        self.map
            .insert_if_absent(key, ())
            .map(|map| TreapSet { map })
    }

    /// Removes `key`; `None` means it was absent.
    pub fn remove<Q>(&self, key: &Q) -> Option<Self>
    where
        K: Borrow<Q>,
        Q: Ord + Hash + ?Sized,
    {
        self.map.remove(key).map(|(map, ())| TreapSet { map })
    }

    /// Set union.
    pub fn union(&self, other: &Self) -> Self {
        TreapSet {
            map: self.map.union(&other.map),
        }
    }
}

impl<K: Ord> TreapSet<K> {
    /// `true` if `key` is present.
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.map.contains_key(key)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterator over keys in order.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }

    /// The underlying map (for structural inspection).
    pub fn as_map(&self) -> &TreapMap<K, ()> {
        &self.map
    }

    /// Validates treap invariants; returns the node count.
    pub fn check_invariants(&self) -> usize {
        self.map.check_invariants()
    }
}

/// Owning ascending key iterator over a [`TreapSet`] version.
pub struct SetIntoIter<K> {
    inner: IntoIter<K, ()>,
}

impl<K: Clone> Iterator for SetIntoIter<K> {
    type Item = K;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(k, ())| k)
    }
}

impl<K: Clone> IntoIterator for TreapSet<K> {
    type Item = K;
    type IntoIter = SetIntoIter<K>;

    fn into_iter(self) -> Self::IntoIter {
        SetIntoIter {
            inner: self.map.into_iter(),
        }
    }
}

impl<K: fmt::Debug + Ord> fmt::Debug for TreapSet<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<K: Ord + Clone + Hash> FromIterator<K> for TreapSet<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        TreapSet {
            map: iter.into_iter().map(|k| (k, ())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_map_basics() {
        let m: TreapMap<i64, i64> = TreapMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(&1), None);
        assert_eq!(m.iter().count(), 0);
        m.check_invariants();
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let m = TreapMap::new();
        let (m, old) = m.insert(5, "five");
        assert_eq!(old, None);
        let (m, old) = m.insert(3, "three");
        assert_eq!(old, None);
        let (m, old) = m.insert(5, "FIVE");
        assert_eq!(old, Some("five"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&5), Some(&"FIVE"));
        let (m, v) = m.remove(&5).unwrap();
        assert_eq!(v, "FIVE");
        assert_eq!(m.len(), 1);
        assert!(m.remove(&5).is_none());
        m.check_invariants();
    }

    #[test]
    fn persistence_versions_are_independent() {
        let v0: TreapMap<i64, i64> = TreapMap::new();
        let (v1, _) = v0.insert(1, 10);
        let (v2, _) = v1.insert(2, 20);
        let (v3, _) = v2.remove(&1).unwrap();
        assert_eq!(v0.len(), 0);
        assert_eq!(v1.len(), 1);
        assert_eq!(v2.len(), 2);
        assert_eq!(v3.len(), 1);
        assert_eq!(v1.get(&1), Some(&10));
        assert_eq!(v3.get(&1), None);
        for v in [&v0, &v1, &v2, &v3] {
            v.check_invariants();
        }
    }

    #[test]
    fn canonical_shape_is_history_independent() {
        // Hashed priorities: the same key set must give the same tree no
        // matter the insertion/removal history.
        let a: TreapMap<i64, i64> = (0..100).map(|k| (k, k)).collect();
        let mut b: TreapMap<i64, i64> = (0..200).rev().map(|k| (k, k)).collect();
        for k in 100..200 {
            b = b.remove(&k).unwrap().0;
        }
        fn same_shape<K: Ord, V>(a: &Link<K, V>, b: &Link<K, V>) -> bool {
            match (a, b) {
                (None, None) => true,
                (Some(x), Some(y)) => {
                    x.key == y.key && same_shape(&x.left, &y.left) && same_shape(&x.right, &y.right)
                }
                _ => false,
            }
        }
        assert!(same_shape(&a.root, &b.root));
    }

    #[test]
    fn matches_btreemap_on_mixed_ops() {
        let mut reference = BTreeMap::new();
        let mut m: TreapMap<i64, i64> = TreapMap::new();
        let mut x = 12345u64;
        for _ in 0..4000 {
            x = crate::hash::splitmix64(x);
            let k = (x % 500) as i64;
            if x % 3 == 0 {
                let expected = reference.remove(&k);
                let got = m.remove(&k);
                match (expected, got) {
                    (None, None) => {}
                    (Some(ev), Some((nm, gv))) => {
                        assert_eq!(ev, gv);
                        m = nm;
                    }
                    other => panic!("remove mismatch: {other:?}"),
                }
            } else {
                let v = (x >> 32) as i64;
                let expected = reference.insert(k, v);
                let (nm, got) = m.insert(k, v);
                assert_eq!(expected, got);
                m = nm;
            }
        }
        assert_eq!(m.len(), reference.len());
        assert!(m.iter().map(|(k, v)| (*k, *v)).eq(reference.into_iter()));
        m.check_invariants();
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let m: TreapMap<i64, i64> = (0..1000).map(|k| (k * 7 % 1000, k)).collect();
        let keys: Vec<i64> = m.keys().copied().collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), m.len());
    }

    #[test]
    fn range_queries() {
        let m: TreapMap<i64, i64> = (0..100).map(|k| (k, k)).collect();
        let got: Vec<i64> = m.range(10..20).map(|(k, _)| *k).collect();
        assert_eq!(got, (10..20).collect::<Vec<_>>());
        let got: Vec<i64> = m.range(90..).map(|(k, _)| *k).collect();
        assert_eq!(got, (90..100).collect::<Vec<_>>());
        let got: Vec<i64> = m.range(..=5).map(|(k, _)| *k).collect();
        assert_eq!(got, (0..=5).collect::<Vec<_>>());
        let got: Vec<i64> = m.range(200..300).map(|(k, _)| *k).collect();
        assert!(got.is_empty());
    }

    #[test]
    fn rank_select_floor_ceiling() {
        let m: TreapMap<i64, i64> = (0..100).map(|k| (k * 2, k)).collect(); // evens 0..198
        assert_eq!(m.select(0).unwrap().0, &0);
        assert_eq!(m.select(99).unwrap().0, &198);
        assert!(m.select(100).is_none());
        assert_eq!(m.rank(&0), 0);
        assert_eq!(m.rank(&7), 4); // 0,2,4,6
        assert_eq!(m.rank(&500), 100);
        assert_eq!(m.floor(&7).unwrap().0, &6);
        assert_eq!(m.ceiling(&7).unwrap().0, &8);
        assert_eq!(m.floor(&-1), None);
        assert_eq!(m.ceiling(&199), None);
        assert_eq!(m.min_entry().unwrap().0, &0);
        assert_eq!(m.max_entry().unwrap().0, &198);
    }

    #[test]
    fn split_and_join() {
        let m: TreapMap<i64, i64> = (0..100).map(|k| (k, k)).collect();
        let (l, mid, r) = m.split(&50);
        assert_eq!(mid, Some(50));
        assert_eq!(l.len(), 50);
        assert_eq!(r.len(), 49);
        l.check_invariants();
        r.check_invariants();
        let joined = l.join(&r);
        assert_eq!(joined.len(), 99);
        assert!(!joined.contains_key(&50));
        joined.check_invariants();
    }

    #[test]
    fn union_prefers_left_values() {
        let a: TreapMap<i64, &str> = [(1, "a1"), (2, "a2")].into_iter().collect();
        let b: TreapMap<i64, &str> = [(2, "b2"), (3, "b3")].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert_eq!(u.get(&2), Some(&"a2"));
        assert_eq!(u.get(&3), Some(&"b3"));
        u.check_invariants();
    }

    #[test]
    fn path_copying_shares_structure() {
        let m: TreapMap<i64, i64> = (0..1024).map(|k| (k, k)).collect();
        let height = m.height();
        let (m2, _) = m.insert(5000, 5000);
        // Count nodes of m2 not shared with m: must be bounded by the
        // path length (+1 for a possible split spine), not the tree size.
        let olds: std::collections::HashSet<*const Node<i64, i64>> = {
            fn collect<K, V>(
                l: &Link<K, V>,
                out: &mut std::collections::HashSet<*const Node<K, V>>,
            ) {
                if let Some(n) = l {
                    out.insert(Arc::as_ptr(n));
                    collect(&n.left, out);
                    collect(&n.right, out);
                }
            }
            let mut s = std::collections::HashSet::new();
            collect(&m.root, &mut s);
            s
        };
        fn count_fresh<K, V>(
            l: &Link<K, V>,
            olds: &std::collections::HashSet<*const Node<K, V>>,
        ) -> usize {
            match l {
                None => 0,
                Some(n) => {
                    if olds.contains(&Arc::as_ptr(n)) {
                        0 // entire subtree is shared
                    } else {
                        1 + count_fresh(&n.left, olds) + count_fresh(&n.right, olds)
                    }
                }
            }
        }
        let fresh = count_fresh(&m2.root, &olds);
        assert!(fresh > 0);
        assert!(
            fresh <= 2 * height + 2,
            "insert allocated {fresh} nodes, expected O(path) = O({height})"
        );
    }

    #[test]
    fn height_is_logarithmic() {
        let n = 1 << 14;
        let m: TreapMap<u64, ()> = (0..n).map(|k| (k, ())).collect();
        let h = m.height();
        // E[height] ≈ 3 log2 n for treaps; 6 log2 n is a generous bound.
        let bound = 6 * (n as f64).log2() as usize;
        assert!(h <= bound, "height {h} exceeds {bound}");
    }

    #[test]
    fn set_facade_noop_semantics() {
        let s: TreapSet<i64> = TreapSet::empty();
        let s = s.insert(1).unwrap();
        assert!(s.insert(1).is_none(), "duplicate insert is a no-op");
        assert!(s.remove(&2).is_none(), "absent remove is a no-op");
        let s2 = s.remove(&1).unwrap();
        assert!(s.contains(&1), "old version untouched");
        assert!(!s2.contains(&1));
        assert_eq!(s2.len(), 0);
    }

    #[test]
    fn diff_reports_adds_removes_changes_in_key_order() {
        let v1: TreapMap<i64, i64> = (0..100).map(|k| (k, k)).collect();
        let (v2, _) = v1.insert(200, 200); // added
        let (v2, _) = v2.remove(&10).unwrap(); // removed
        let (v2, _) = v2.insert(50, -50); // changed
        let diff = v1.diff(&v2);
        assert_eq!(
            diff,
            vec![
                DiffEntry::Removed(10, 10),
                DiffEntry::Changed(50, 50, -50),
                DiffEntry::Added(200, 200),
            ]
        );
        // Reversed direction swaps the roles.
        let back = v2.diff(&v1);
        assert_eq!(
            back,
            vec![
                DiffEntry::Added(10, 10),
                DiffEntry::Changed(50, -50, 50),
                DiffEntry::Removed(200, 200),
            ]
        );
    }

    #[test]
    fn diff_of_identical_versions_visits_nothing() {
        let v: TreapMap<i64, i64> = (0..1000).map(|k| (k, k)).collect();
        let (diff, visited) = v.diff_counted(&v.clone());
        assert!(diff.is_empty());
        assert_eq!(visited, 0, "shared root must short-circuit the walk");
    }

    #[test]
    fn diff_against_empty_is_the_full_contents() {
        let v: TreapMap<i64, i64> = (0..50).map(|k| (k, k * 3)).collect();
        let empty = TreapMap::new();
        let diff = empty.diff(&v);
        assert_eq!(diff.len(), 50);
        assert!(diff
            .iter()
            .enumerate()
            .all(|(i, e)| *e == DiffEntry::Added(i as i64, i as i64 * 3)));
        assert!(v.diff(&v).is_empty());
        assert!(empty.diff(&empty).is_empty());
    }

    #[test]
    fn owning_into_iter_matches_borrowing_iter() {
        let m: TreapMap<i64, i64> = (0..500).map(|k| (k * 3 % 500, k)).collect();
        let borrowed: Vec<(i64, i64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        let owned: Vec<(i64, i64)> = m.clone().into_iter().collect();
        assert_eq!(owned, borrowed);
        let set: TreapSet<i64> = (0..100).collect();
        assert!(set.clone().into_iter().eq(0..100));
    }

    #[test]
    fn insert_with_priority_can_build_spines() {
        // Monotone priorities force a right spine: check it stays a valid
        // treap (exercise explicit-priority path, incl. `split_rec`).
        let mut m: TreapMap<i64, ()> = TreapMap::new();
        for (i, k) in (0..64).enumerate() {
            m = m.insert_with_priority(k, (), 1000 + i as u64).0;
        }
        m.check_invariants();
        assert_eq!(m.len(), 64);
        // Re-insert an existing key with a much higher priority: it must
        // move to the root while preserving the key set.
        let (m2, old) = m.insert_with_priority(32, (), u64::MAX);
        assert_eq!(old, Some(()));
        assert_eq!(m2.len(), 64);
        m2.check_invariants();
        assert_eq!(m2.root().unwrap().key(), &32);
    }
}
