//! Structural-sharing measurements between versions.
//!
//! These utilities quantify the two effects at the heart of the paper:
//!
//! * **Fig. 1** — after an update, the new version shares all but the
//!   copied path with the old version: [`sharing_stats`].
//! * **Fig. 5 / Appendix A** — when a process retries an operation on the
//!   version installed by a competitor, the number of nodes on its search
//!   path that it has not already loaded (and therefore has not cached)
//!   is small — in expectation ≤ 2: [`uncached_on_retry`].
//!
//! Node identity is the `Arc` allocation address; two versions share a
//! node exactly when the addresses match.

use std::collections::HashSet;

/// Structure-agnostic view of a search tree for sharing measurements.
///
/// Implemented by the persistent trees in this crate. Addresses reported
/// to the callbacks must be stable node identities (allocation addresses).
pub trait SearchTree {
    /// Key type ordered by the tree.
    type Key: Ord;

    /// Visits the node addresses on the root-to-`key` search path, in
    /// root-first order, stopping at the key or at a nil child.
    fn visit_path(&self, key: &Self::Key, visit: &mut dyn FnMut(usize));

    /// Visits every node address in the tree (any order).
    fn visit_all(&self, visit: &mut dyn FnMut(usize));
}

/// Node-sharing breakdown between two versions (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharingStats {
    /// Nodes in the old version.
    pub old_nodes: usize,
    /// Nodes in the new version.
    pub new_nodes: usize,
    /// Nodes present in both (by address).
    pub shared: usize,
    /// Nodes only in the new version — the freshly copied path.
    pub fresh: usize,
    /// Nodes only in the old version — retired by the update.
    pub retired: usize,
}

/// Computes the node-sharing breakdown between two versions. O(n) in the
/// tree sizes; intended for tests, examples and offline analysis.
pub fn sharing_stats<T: SearchTree>(old: &T, new: &T) -> SharingStats {
    let mut old_set = HashSet::new();
    old.visit_all(&mut |addr| {
        old_set.insert(addr);
    });
    let mut new_nodes = 0usize;
    let mut shared = 0usize;
    new.visit_all(&mut |addr| {
        new_nodes += 1;
        if old_set.contains(&addr) {
            shared += 1;
        }
    });
    SharingStats {
        old_nodes: old_set.len(),
        new_nodes,
        shared,
        fresh: new_nodes - shared,
        retired: old_set.len() - shared,
    }
}

/// The Fig.-5 quantity: how many nodes on the search path for `key` in
/// `new` were **not** on the search path for `key` in `old`.
///
/// In the paper's model, a process that just traversed `old` has exactly
/// the `old` path in its cache; on retry against `new` every path node it
/// has not seen is an uncached (cost-`R`) load. Appendix A shows the
/// expectation of this count is at most 2 for uniformly random keys.
pub fn uncached_on_retry<T: SearchTree>(old: &T, new: &T, key: &T::Key) -> usize {
    // Search paths are O(log n); a tiny Vec + linear scan beats hashing.
    let mut old_path = Vec::with_capacity(64);
    old.visit_path(key, &mut |addr| old_path.push(addr));
    let mut uncached = 0usize;
    new.visit_path(key, &mut |addr| {
        if !old_path.contains(&addr) {
            uncached += 1;
        }
    });
    uncached
}

/// Total node count of a tree via [`SearchTree::visit_all`].
pub fn node_count<T: SearchTree>(tree: &T) -> usize {
    let mut n = 0usize;
    tree.visit_all(&mut |_| n += 1);
    n
}

// --- implementations for the crate's trees ------------------------------

use crate::treap::{TreapMap, TreapSet};
use std::sync::Arc;

impl<K: Ord, V> SearchTree for TreapMap<K, V> {
    type Key = K;

    fn visit_path(&self, key: &K, visit: &mut dyn FnMut(usize)) {
        let mut cur = self.root();
        while let Some(n) = cur {
            visit(Arc::as_ptr(n) as usize);
            match key.cmp(n.key()) {
                std::cmp::Ordering::Less => cur = n.left(),
                std::cmp::Ordering::Equal => return,
                std::cmp::Ordering::Greater => cur = n.right(),
            }
        }
    }

    fn visit_all(&self, visit: &mut dyn FnMut(usize)) {
        fn walk<K, V>(node: Option<&Arc<crate::treap::Node<K, V>>>, visit: &mut dyn FnMut(usize)) {
            if let Some(n) = node {
                visit(Arc::as_ptr(n) as usize);
                walk(n.left(), visit);
                walk(n.right(), visit);
            }
        }
        walk(self.root(), visit);
    }
}

impl<K: Ord> SearchTree for TreapSet<K> {
    type Key = K;

    fn visit_path(&self, key: &K, visit: &mut dyn FnMut(usize)) {
        self.as_map().visit_path(key, visit);
    }

    fn visit_all(&self, visit: &mut dyn FnMut(usize)) {
        self.as_map().visit_all(visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_after_one_insert_is_high() {
        let v1: TreapMap<i64, i64> = (0..1000).map(|k| (k, k)).collect();
        let (v2, _) = v1.insert(5000, 0);
        let stats = sharing_stats(&v1, &v2);
        assert_eq!(stats.old_nodes, 1000);
        assert_eq!(stats.new_nodes, 1001);
        assert_eq!(stats.fresh + stats.shared, stats.new_nodes);
        // Path copying: fresh nodes are O(log n), not O(n).
        assert!(
            stats.fresh <= 2 * v1.height() + 2,
            "fresh = {} too large",
            stats.fresh
        );
        // Almost everything is shared.
        assert!(stats.shared >= 1000 - 2 * v1.height());
    }

    #[test]
    fn identical_versions_share_everything() {
        let v: TreapMap<i64, i64> = (0..100).map(|k| (k, k)).collect();
        let stats = sharing_stats(&v, &v.clone());
        assert_eq!(stats.fresh, 0);
        assert_eq!(stats.retired, 0);
        assert_eq!(stats.shared, 100);
    }

    #[test]
    fn uncached_on_retry_zero_when_unchanged() {
        let v: TreapMap<i64, i64> = (0..100).map(|k| (k, k)).collect();
        assert_eq!(uncached_on_retry(&v, &v.clone(), &42), 0);
    }

    #[test]
    fn uncached_on_retry_counts_winner_path_overlap() {
        let v1: TreapMap<i64, i64> = (0..1024).map(|k| (k * 2, k)).collect();
        // A competitor inserts some key; our retried path to another key
        // shares only a prefix with the competitor's path.
        let (v2, _) = v1.insert(777, 0);
        let our_key = 1600;
        let uncached = uncached_on_retry(&v1, &v2, &our_key);
        let path = v2.path_len(&our_key);
        assert!(uncached <= path);
        // The overlap is at most the whole path, usually much less; the
        // root always changed, so at least one node is uncached.
        assert!(uncached >= 1);
    }

    #[test]
    fn expected_uncached_is_small_over_random_keys() {
        // Empirical check of the Appendix-A lemma on the *real* treap:
        // average "uncached on retry" over many random winner/retry pairs
        // should be small (the model bound is 2 for external trees; the
        // internal treap with split/merge shuffling stays close).
        use crate::hash::splitmix64;
        let n = 4096i64;
        let base: TreapMap<i64, i64> = (0..n).map(|k| (k, k)).collect();
        let mut x = 7u64;
        let mut total = 0usize;
        let trials = 2000;
        for _ in 0..trials {
            x = splitmix64(x);
            let winner_key = (x % (n as u64)) as i64;
            x = splitmix64(x);
            let our_key = (x % (n as u64)) as i64;
            // Winner commits a remove+insert cycle on its key.
            let (after, _) = base.remove(&winner_key).unwrap().0.insert(winner_key, 1);
            total += uncached_on_retry(&base, &after, &our_key);
        }
        let mean = total as f64 / trials as f64;
        assert!(
            mean < 4.0,
            "mean uncached-on-retry {mean:.2} is far above the model's 2"
        );
    }

    #[test]
    fn node_count_matches_len() {
        let v: TreapMap<i64, i64> = (0..321).map(|k| (k, k)).collect();
        assert_eq!(node_count(&v), 321);
    }
}
