//! Persistent **external** binary search tree — the tree analysed in the
//! paper's Appendix A.
//!
//! In an external (leaf-oriented) BST, data lives only in the leaves;
//! internal nodes carry routing keys. Our routing convention: an internal
//! node with router `k` sends keys `< k` left and keys `>= k` right, and
//! its router equals the minimum key of its right subtree.
//!
//! Updates path-copy exactly the root-to-leaf search path:
//! * insert replaces the reached leaf by an internal node over two leaves;
//! * remove replaces the removed leaf's parent by the leaf's sibling.
//!
//! There are no rotations, so — unlike the treap — the search path for a
//! key changes **only** when a committed update's path overlaps it, which
//! is the exact premise of the paper's cache analysis. Built from random
//! keys the tree is balanced with high probability.

use std::borrow::Borrow;
use std::cmp::Ordering::{Equal, Greater, Less};
use std::fmt;
use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

use pathcopy_core::api::SetDiffEntry;

/// A node of the external BST.
#[derive(Debug)]
pub enum EbNode<K> {
    /// A data-carrying leaf.
    Leaf {
        /// The stored key.
        key: K,
    },
    /// A routing node: keys `< router` live on the left, `>= router` on
    /// the right.
    Internal {
        /// The routing key.
        router: K,
        /// Keys `< router`.
        left: Arc<EbNode<K>>,
        /// Keys `>= router`.
        right: Arc<EbNode<K>>,
        /// Number of leaves below this node.
        size: usize,
    },
}

impl<K> EbNode<K> {
    fn size(&self) -> usize {
        match self {
            EbNode::Leaf { .. } => 1,
            EbNode::Internal { size, .. } => *size,
        }
    }
}

/// A persistent ordered set stored as an external BST.
///
/// # Examples
///
/// ```
/// use pathcopy_trees::ExternalBstSet;
///
/// let s0: ExternalBstSet<i64> = ExternalBstSet::new();
/// let s1 = s0.insert(10).unwrap();
/// let s2 = s1.insert(20).unwrap();
/// assert!(s2.insert(10).is_none()); // duplicate: no-op
/// assert!(s2.contains(&10) && s2.contains(&20));
/// assert!(!s1.contains(&20)); // old version untouched
/// ```
pub struct ExternalBstSet<K> {
    root: Option<Arc<EbNode<K>>>,
}

impl<K> Clone for ExternalBstSet<K> {
    fn clone(&self) -> Self {
        ExternalBstSet {
            root: self.root.clone(),
        }
    }
}

impl<K> Default for ExternalBstSet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> ExternalBstSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        ExternalBstSet { root: None }
    }

    /// Number of keys (leaves).
    pub fn len(&self) -> usize {
        self.root.as_ref().map_or(0, |r| r.size())
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// The root node, for structural inspection.
    pub fn root(&self) -> Option<&Arc<EbNode<K>>> {
        self.root.as_ref()
    }
}

fn mk_internal<K: Clone + Ord>(left: Arc<EbNode<K>>, right: Arc<EbNode<K>>) -> Arc<EbNode<K>> {
    let router = min_key(&right).clone();
    let size = left.size() + right.size();
    Arc::new(EbNode::Internal {
        router,
        left,
        right,
        size,
    })
}

fn min_key<K>(node: &EbNode<K>) -> &K {
    match node {
        EbNode::Leaf { key } => key,
        EbNode::Internal { left, .. } => min_key(left),
    }
}

impl<K: Ord + Clone> ExternalBstSet<K> {
    /// Inserts `key`; `None` means it was already present (no-op).
    pub fn insert(&self, key: K) -> Option<Self> {
        match &self.root {
            None => Some(ExternalBstSet {
                root: Some(Arc::new(EbNode::Leaf { key })),
            }),
            Some(root) => insert_rec(root, key).map(|root| ExternalBstSet { root: Some(root) }),
        }
    }

    /// Removes `key`; `None` means it was absent (no-op).
    pub fn remove<Q>(&self, key: &Q) -> Option<Self>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        match &self.root {
            None => None,
            Some(root) => match remove_rec(root, key)? {
                Removed::Empty => Some(ExternalBstSet { root: None }),
                Removed::Tree(root) => Some(ExternalBstSet { root: Some(root) }),
            },
        }
    }

    /// `true` if `key` is present.
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut cur = match &self.root {
            None => return false,
            Some(r) => r,
        };
        loop {
            match &**cur {
                EbNode::Leaf { key: leaf_key } => return leaf_key.borrow() == key,
                EbNode::Internal {
                    router,
                    left,
                    right,
                    ..
                } => {
                    cur = if key < router.borrow() { left } else { right };
                }
            }
        }
    }

    /// Keys in ascending order.
    pub fn iter(&self) -> EbIter<'_, K> {
        EbIter::new(self.root.as_deref())
    }

    /// Lazy ascending iterator over the keys between the two bounds.
    /// Routing keys steer the descent, so whole subtrees below the lower
    /// bound are skipped without being visited.
    pub fn range_by(&self, lo: Bound<&K>, hi: Bound<&K>) -> EbRange<'_, K> {
        EbRange::new(self.root.as_ref(), lo.cloned(), hi.cloned())
    }

    /// Lazy ascending iterator over the keys in `range`
    /// (e.g. `set.range(10..20)`).
    pub fn range<R: RangeBounds<K>>(&self, range: R) -> EbRange<'_, K> {
        self.range_by(range.start_bound(), range.end_bound())
    }

    /// Difference between this (older) version and `newer`, in ascending
    /// key order, skipping subtrees shared by pointer equality (see
    /// [`diff_counted`](Self::diff_counted)).
    pub fn diff(&self, newer: &Self) -> Vec<SetDiffEntry<K>> {
        self.diff_counted(newer).0
    }

    /// [`diff`](Self::diff) that also reports how many tree nodes the
    /// walk visited — two identical versions visit 0 nodes, and nearby
    /// versions visit only the changed region plus its boundary paths.
    pub fn diff_counted(&self, newer: &Self) -> (Vec<SetDiffEntry<K>>, usize) {
        let mut old: Vec<&Arc<EbNode<K>>> = self.root.iter().collect();
        let mut new: Vec<&Arc<EbNode<K>>> = newer.root.iter().collect();
        let mut out = Vec::new();
        let mut visited = 0usize;
        loop {
            // Skip subtrees (and leaves) shared between the versions.
            while let (Some(a), Some(b)) = (old.last(), new.last()) {
                if Arc::ptr_eq(a, b) {
                    old.pop();
                    new.pop();
                } else {
                    break;
                }
            }
            // Open internal tops one level at a time so the skip check
            // above sees every shared child before it is expanded.
            if let Some(top) = old.last() {
                if let EbNode::Internal { left, right, .. } = &***top {
                    visited += 1;
                    old.pop();
                    old.push(right);
                    old.push(left);
                    continue;
                }
            }
            if let Some(top) = new.last() {
                if let EbNode::Internal { left, right, .. } = &***top {
                    visited += 1;
                    new.pop();
                    new.push(right);
                    new.push(left);
                    continue;
                }
            }
            // Both tops are now leaves (or a side is exhausted).
            fn leaf<K>(n: &EbNode<K>) -> &K {
                match n {
                    EbNode::Leaf { key } => key,
                    EbNode::Internal { .. } => unreachable!("internal tops expanded above"),
                }
            }
            match (old.last(), new.last()) {
                (None, None) => break,
                (Some(a), None) => {
                    visited += 1;
                    out.push(SetDiffEntry::Removed(leaf(a).clone()));
                    old.pop();
                }
                (None, Some(b)) => {
                    visited += 1;
                    out.push(SetDiffEntry::Added(leaf(b).clone()));
                    new.pop();
                }
                (Some(a), Some(b)) => match leaf(a).cmp(leaf(b)) {
                    Less => {
                        visited += 1;
                        out.push(SetDiffEntry::Removed(leaf(a).clone()));
                        old.pop();
                    }
                    Greater => {
                        visited += 1;
                        out.push(SetDiffEntry::Added(leaf(b).clone()));
                        new.pop();
                    }
                    Equal => {
                        visited += 2;
                        old.pop();
                        new.pop();
                    }
                },
            }
        }
        (out, visited)
    }

    /// Height in edges on the longest root-to-leaf path (0 for empty or a
    /// single leaf). O(n).
    pub fn height(&self) -> usize {
        fn h<K>(n: &EbNode<K>) -> usize {
            match n {
                EbNode::Leaf { .. } => 0,
                EbNode::Internal { left, right, .. } => 1 + h(left).max(h(right)),
            }
        }
        self.root.as_deref().map_or(0, h)
    }

    /// Validates external-BST invariants; returns the leaf count.
    ///
    /// # Panics
    ///
    /// Panics on violated key order, router placement, or size fields.
    pub fn check_invariants(&self) -> usize {
        fn walk<K: Ord>(n: &EbNode<K>, lo: Option<&K>, hi: Option<&K>) -> usize {
            match n {
                EbNode::Leaf { key } => {
                    if let Some(lo) = lo {
                        assert!(key >= lo, "leaf below its lower bound");
                    }
                    if let Some(hi) = hi {
                        assert!(key < hi, "leaf at/above its upper bound");
                    }
                    1
                }
                EbNode::Internal {
                    router,
                    left,
                    right,
                    size,
                } => {
                    assert!(
                        min_key(right) == router,
                        "router must equal the right subtree's minimum"
                    );
                    let ls = walk(left, lo, Some(router));
                    let rs = walk(right, Some(router), hi);
                    assert_eq!(*size, ls + rs, "size field out of date");
                    *size
                }
            }
        }
        self.root.as_deref().map_or(0, |r| walk(r, None, None))
    }
}

enum Removed<K> {
    Empty,
    Tree(Arc<EbNode<K>>),
}

fn insert_rec<K: Ord + Clone>(node: &Arc<EbNode<K>>, key: K) -> Option<Arc<EbNode<K>>> {
    match &**node {
        EbNode::Leaf { key: leaf_key } => match key.cmp(leaf_key) {
            Equal => None,
            Less => {
                let new_leaf = Arc::new(EbNode::Leaf { key });
                Some(mk_internal(new_leaf, node.clone()))
            }
            Greater => {
                let new_leaf = Arc::new(EbNode::Leaf { key });
                Some(mk_internal(node.clone(), new_leaf))
            }
        },
        EbNode::Internal {
            router,
            left,
            right,
            ..
        } => {
            if key < *router {
                let new_left = insert_rec(left, key)?;
                Some(mk_internal(new_left, right.clone()))
            } else {
                let new_right = insert_rec(right, key)?;
                Some(mk_internal(left.clone(), new_right))
            }
        }
    }
}

fn remove_rec<K, Q>(node: &Arc<EbNode<K>>, key: &Q) -> Option<Removed<K>>
where
    K: Ord + Clone + Borrow<Q>,
    Q: Ord + ?Sized,
{
    match &**node {
        EbNode::Leaf { key: leaf_key } => {
            if leaf_key.borrow() == key {
                Some(Removed::Empty)
            } else {
                None
            }
        }
        EbNode::Internal {
            router,
            left,
            right,
            ..
        } => {
            if key < router.borrow() {
                match remove_rec(left, key)? {
                    // Removed the left child entirely: the sibling replaces
                    // this internal node (the paper's leaf-removal rule).
                    Removed::Empty => Some(Removed::Tree(right.clone())),
                    Removed::Tree(new_left) => {
                        Some(Removed::Tree(mk_internal(new_left, right.clone())))
                    }
                }
            } else {
                match remove_rec(right, key)? {
                    Removed::Empty => Some(Removed::Tree(left.clone())),
                    Removed::Tree(new_right) => {
                        Some(Removed::Tree(mk_internal(left.clone(), new_right)))
                    }
                }
            }
        }
    }
}

/// Ascending key iterator over an [`ExternalBstSet`].
pub struct EbIter<'a, K> {
    stack: Vec<&'a EbNode<K>>,
}

impl<'a, K> EbIter<'a, K> {
    fn new(root: Option<&'a EbNode<K>>) -> Self {
        let mut it = EbIter { stack: Vec::new() };
        if let Some(r) = root {
            it.descend(r);
        }
        it
    }

    fn descend(&mut self, mut cur: &'a EbNode<K>) {
        loop {
            match cur {
                EbNode::Leaf { .. } => {
                    self.stack.push(cur);
                    return;
                }
                EbNode::Internal { left, .. } => {
                    self.stack.push(cur);
                    cur = left;
                }
            }
        }
    }
}

impl<'a, K> Iterator for EbIter<'a, K> {
    type Item = &'a K;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let top = self.stack.pop()?;
            match top {
                EbNode::Leaf { key } => return Some(key),
                EbNode::Internal { right, .. } => self.descend(right),
            }
        }
    }
}

/// Lazy ascending iterator over a key range of an [`ExternalBstSet`].
pub struct EbRange<'a, K> {
    stack: Vec<&'a EbNode<K>>,
    lo: Bound<K>,
    hi: Bound<K>,
}

impl<'a, K: Ord> EbRange<'a, K> {
    fn new(root: Option<&'a Arc<EbNode<K>>>, lo: Bound<K>, hi: Bound<K>) -> Self {
        let mut it = EbRange {
            stack: Vec::new(),
            lo,
            hi,
        };
        if let Some(r) = root {
            it.descend(r);
        }
        it
    }

    /// Walks to the first in-range leaf, skipping left subtrees whose
    /// keys all lie below the lower bound (`keys < router <= lo`).
    fn descend(&mut self, mut cur: &'a EbNode<K>) {
        loop {
            match cur {
                EbNode::Leaf { .. } => {
                    self.stack.push(cur);
                    return;
                }
                EbNode::Internal {
                    router,
                    left,
                    right,
                    ..
                } => {
                    let left_below = match &self.lo {
                        Bound::Included(lo) | Bound::Excluded(lo) => router <= lo,
                        Bound::Unbounded => false,
                    };
                    if left_below {
                        cur = right;
                    } else {
                        self.stack.push(cur);
                        cur = left;
                    }
                }
            }
        }
    }

    fn below_lower(&self, key: &K) -> bool {
        match &self.lo {
            Bound::Included(lo) => key < lo,
            Bound::Excluded(lo) => key <= lo,
            Bound::Unbounded => false,
        }
    }

    fn above_upper(&self, key: &K) -> bool {
        match &self.hi {
            Bound::Included(hi) => key > hi,
            Bound::Excluded(hi) => key >= hi,
            Bound::Unbounded => false,
        }
    }
}

impl<'a, K: Ord> Iterator for EbRange<'a, K> {
    type Item = &'a K;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let top = self.stack.pop()?;
            match top {
                EbNode::Leaf { key } => {
                    // The first reached leaf can still sit below the
                    // lower bound (only whole subtrees are pruned).
                    if self.below_lower(key) {
                        continue;
                    }
                    if self.above_upper(key) {
                        self.stack.clear();
                        return None;
                    }
                    return Some(key);
                }
                EbNode::Internal { right, .. } => self.descend(right),
            }
        }
    }
}

impl<K: Ord + Clone> FromIterator<K> for ExternalBstSet<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut s = ExternalBstSet::new();
        for k in iter {
            if let Some(next) = s.insert(k) {
                s = next;
            }
        }
        s
    }
}

impl<K: fmt::Debug + Ord + Clone> fmt::Debug for ExternalBstSet<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

// Sharing-measurement support.
impl<K: Ord + Clone> crate::sharing::SearchTree for ExternalBstSet<K> {
    type Key = K;

    fn visit_path(&self, key: &K, visit: &mut dyn FnMut(usize)) {
        let mut cur = match self.root() {
            None => return,
            Some(r) => r,
        };
        loop {
            visit(Arc::as_ptr(cur) as usize);
            match &**cur {
                EbNode::Leaf { .. } => return,
                EbNode::Internal {
                    router,
                    left,
                    right,
                    ..
                } => {
                    cur = if key < router { left } else { right };
                }
            }
        }
    }

    fn visit_all(&self, visit: &mut dyn FnMut(usize)) {
        fn walk<K>(n: &Arc<EbNode<K>>, visit: &mut dyn FnMut(usize)) {
            visit(Arc::as_ptr(n) as usize);
            if let EbNode::Internal { left, right, .. } = &**n {
                walk(left, visit);
                walk(right, visit);
            }
        }
        if let Some(r) = self.root() {
            walk(r, visit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharing::{sharing_stats, uncached_on_retry, SearchTree};
    use std::collections::BTreeSet;

    #[test]
    fn empty_set_basics() {
        let s: ExternalBstSet<i64> = ExternalBstSet::new();
        assert!(s.is_empty());
        assert!(!s.contains(&1));
        assert!(s.remove(&1).is_none());
        assert_eq!(s.check_invariants(), 0);
    }

    #[test]
    fn insert_remove_contains() {
        let s: ExternalBstSet<i64> = ExternalBstSet::new();
        let s = s.insert(5).unwrap();
        let s = s.insert(3).unwrap();
        let s = s.insert(8).unwrap();
        assert!(s.insert(5).is_none());
        assert_eq!(s.len(), 3);
        assert!(s.contains(&3) && s.contains(&5) && s.contains(&8));
        assert!(!s.contains(&4));
        s.check_invariants();
        let s = s.remove(&5).unwrap();
        assert!(!s.contains(&5));
        assert_eq!(s.len(), 2);
        assert!(s.remove(&5).is_none());
        s.check_invariants();
    }

    #[test]
    fn matches_btreeset_on_mixed_ops() {
        let mut reference = BTreeSet::new();
        let mut s: ExternalBstSet<i64> = ExternalBstSet::new();
        let mut x = 99u64;
        for _ in 0..4000 {
            x = crate::hash::splitmix64(x);
            let k = (x % 300) as i64;
            if x % 2 == 0 {
                let expected = reference.insert(k);
                match s.insert(k) {
                    Some(next) => {
                        assert!(expected);
                        s = next;
                    }
                    None => assert!(!expected),
                }
            } else {
                let expected = reference.remove(&k);
                match s.remove(&k) {
                    Some(next) => {
                        assert!(expected);
                        s = next;
                    }
                    None => assert!(!expected),
                }
            }
        }
        assert_eq!(s.len(), reference.len());
        assert!(s.iter().copied().eq(reference.into_iter()));
        s.check_invariants();
    }

    #[test]
    fn iter_sorted() {
        let s: ExternalBstSet<i64> = [5, 1, 9, 3, 7].into_iter().collect();
        let got: Vec<i64> = s.iter().copied().collect();
        assert_eq!(got, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn remove_last_key_empties() {
        let s: ExternalBstSet<i64> = [42].into_iter().collect();
        let s = s.remove(&42).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn persistence_and_sharing() {
        let v1: ExternalBstSet<i64> = (0..1024).collect();
        let v2 = v1.insert(5000).unwrap();
        assert!(!v1.contains(&5000));
        assert!(v2.contains(&5000));
        let stats = sharing_stats(&v1, &v2);
        // Insert copies the search path only: internal path + 1 internal +
        // 1 leaf.
        assert!(
            stats.fresh <= v1.height() + 3,
            "fresh {} exceeds path bound",
            stats.fresh
        );
    }

    #[test]
    fn random_build_is_balanced() {
        use crate::hash::splitmix64;
        let mut s: ExternalBstSet<u64> = ExternalBstSet::new();
        let mut x = 5u64;
        for _ in 0..4096 {
            x = splitmix64(x);
            if let Some(next) = s.insert(x) {
                s = next;
            }
        }
        let h = s.height();
        assert!(h <= 40, "height {h} too large for ~4096 random keys");
    }

    #[test]
    fn modified_on_path_expectation_close_to_two() {
        // The Appendix-A lemma on the exact structure it is proved for:
        // uniform random winner key, uniform random retry key, external
        // tree, no rotations. The expectation must be <= 2 and empirically
        // close to it from below on a balanced tree.
        use crate::hash::splitmix64;
        let keys: Vec<u64> = {
            let mut x = 11u64;
            (0..4096)
                .map(|_| {
                    x = splitmix64(x);
                    x
                })
                .collect()
        };
        let base: ExternalBstSet<u64> = keys.iter().copied().collect();
        let mut x = 17u64;
        let mut total = 0usize;
        let trials = 4000;
        for _ in 0..trials {
            x = splitmix64(x);
            let winner = keys[(x % keys.len() as u64) as usize];
            x = splitmix64(x);
            let ours = keys[(x % keys.len() as u64) as usize];
            // Winner removes+reinserts its key: copies its search path.
            let after = base.remove(&winner).unwrap().insert(winner).unwrap();
            total += uncached_on_retry(&base, &after, &ours);
        }
        let mean = total as f64 / trials as f64;
        assert!(
            mean <= 2.5,
            "mean modified-on-path {mean:.3} violates the <=2 lemma margin"
        );
        assert!(mean > 0.5, "suspiciously low mean {mean:.3}");
    }

    #[test]
    fn range_iterates_lazily_and_in_order() {
        let s: ExternalBstSet<i64> = (0..100).collect();
        let got: Vec<i64> = s.range(10..20).copied().collect();
        assert_eq!(got, (10..20).collect::<Vec<_>>());
        let got: Vec<i64> = s.range(90..).copied().collect();
        assert_eq!(got, (90..100).collect::<Vec<_>>());
        let got: Vec<i64> = s.range(..=5).copied().collect();
        assert_eq!(got, (0..=5).collect::<Vec<_>>());
        assert_eq!(s.range(200..300).count(), 0);
        let empty: ExternalBstSet<i64> = ExternalBstSet::new();
        assert_eq!(empty.range(..).count(), 0);
    }

    #[test]
    fn diff_reports_membership_changes_in_order() {
        let v1: ExternalBstSet<i64> = (0..100).collect();
        let v2 = v1.insert(500).unwrap().remove(&7).unwrap();
        assert_eq!(
            v1.diff(&v2),
            vec![SetDiffEntry::Removed(7), SetDiffEntry::Added(500)]
        );
        assert_eq!(
            v2.diff(&v1),
            vec![SetDiffEntry::Added(7), SetDiffEntry::Removed(500)]
        );
        let (diff, visited) = v1.diff_counted(&v1.clone());
        assert!(diff.is_empty());
        assert_eq!(visited, 0, "shared root must short-circuit");
    }

    #[test]
    fn visit_path_ends_at_leaf() {
        let s: ExternalBstSet<i64> = (0..64).collect();
        let mut path = Vec::new();
        s.visit_path(&13, &mut |a| path.push(a));
        assert!(!path.is_empty());
        assert!(path.len() <= s.height() + 1);
    }
}
