//! Classical **mutable** sequential treap — the paper's "Seq Treap"
//! baseline column.
//!
//! This is a textbook split/merge treap with owned (`Box`) nodes and
//! in-place mutation: no persistence, no sharing, no synchronization.
//! Like typical reference implementations, `insert` and `remove` always
//! perform their full split/merge work even when the operation turns out
//! not to change the set (inserting a present key, removing an absent
//! one). That matters for reproducing the paper's Random-workload
//! numbers: the universal construction *skips* such no-ops, which is a
//! large part of why `UC 1p` beats `Seq Treap` there (1.48×) while
//! losing on Batch (0.89×), where every operation modifies the set.

use std::cmp::Ordering::{Equal, Greater, Less};
use std::hash::Hash;

use crate::hash::priority_of;

type Link<K> = Option<Box<MutNode<K>>>;

#[derive(Debug)]
struct MutNode<K> {
    key: K,
    priority: u64,
    left: Link<K>,
    right: Link<K>,
}

/// A mutable sequential treap set (single-threaded baseline).
///
/// # Examples
///
/// ```
/// use pathcopy_trees::mutable::MutTreapSet;
///
/// let mut s = MutTreapSet::new();
/// assert!(s.insert(3));
/// assert!(!s.insert(3));
/// assert!(s.contains(&3));
/// assert!(s.remove(&3));
/// assert!(s.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct MutTreapSet<K> {
    root: Link<K>,
    len: usize,
}

impl<K: Ord + Hash> MutTreapSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        MutTreapSet { root: None, len: 0 }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Less => cur = n.left.as_deref(),
                Equal => return true,
                Greater => cur = n.right.as_deref(),
            }
        }
        false
    }

    /// Inserts `key`; returns `true` if the set changed. Always performs
    /// the full split/merge work (see the module docs).
    pub fn insert(&mut self, key: K) -> bool {
        let priority = priority_of(&key);
        let root = self.root.take();
        let (left, mid, right) = split(root, &key);
        let changed = mid.is_none();
        let mid = match mid {
            Some(existing) => existing, // key already present: keep it
            None => Box::new(MutNode {
                key,
                priority,
                left: None,
                right: None,
            }),
        };
        self.root = merge(merge(left, Some(mid)), right);
        if changed {
            self.len += 1;
        }
        changed
    }

    /// Removes `key`; returns `true` if the set changed. Always performs
    /// the full split/merge work.
    pub fn remove(&mut self, key: &K) -> bool {
        let root = self.root.take();
        let (left, mid, right) = split(root, key);
        let changed = mid.is_some();
        self.root = merge(left, right);
        if changed {
            self.len -= 1;
        }
        changed
    }

    /// Keys in ascending order (for verification).
    pub fn to_vec(&self) -> Vec<&K> {
        let mut out = Vec::with_capacity(self.len);
        fn walk<'a, K>(link: &'a Link<K>, out: &mut Vec<&'a K>) {
            if let Some(n) = link {
                walk(&n.left, out);
                out.push(&n.key);
                walk(&n.right, out);
            }
        }
        walk(&self.root, &mut out);
        out
    }

    /// Validates treap invariants; returns the node count.
    ///
    /// # Panics
    ///
    /// Panics on violated key or heap order, or a stale `len`.
    pub fn check_invariants(&self) -> usize {
        fn walk<K: Ord>(link: &Link<K>, lo: Option<&K>, hi: Option<&K>) -> usize {
            match link {
                None => 0,
                Some(n) => {
                    if let Some(lo) = lo {
                        assert!(n.key > *lo, "BST order violated");
                    }
                    if let Some(hi) = hi {
                        assert!(n.key < *hi, "BST order violated");
                    }
                    for c in [&n.left, &n.right].into_iter().flatten() {
                        assert!(c.priority <= n.priority, "heap order violated");
                    }
                    1 + walk(&n.left, lo, Some(&n.key)) + walk(&n.right, Some(&n.key), hi)
                }
            }
        }
        let count = walk(&self.root, None, None);
        assert_eq!(count, self.len, "len out of date");
        count
    }
}

impl<K> Drop for MutTreapSet<K> {
    fn drop(&mut self) {
        // Iterative teardown: treap height is O(log n) w.h.p., but a
        // pathological priority stream could make recursion deep.
        let mut stack = Vec::new();
        if let Some(root) = self.root.take() {
            stack.push(root);
        }
        while let Some(mut n) = stack.pop() {
            if let Some(l) = n.left.take() {
                stack.push(l);
            }
            if let Some(r) = n.right.take() {
                stack.push(r);
            }
        }
    }
}

impl<K: Ord + Hash> FromIterator<K> for MutTreapSet<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut s = MutTreapSet::new();
        for k in iter {
            s.insert(k);
        }
        s
    }
}

/// Splits into (`< key`, node with `key` if present, `> key`).
fn split<K: Ord>(link: Link<K>, key: &K) -> (Link<K>, Option<Box<MutNode<K>>>, Link<K>) {
    match link {
        None => (None, None, None),
        Some(mut n) => match key.cmp(&n.key) {
            Equal => {
                let left = n.left.take();
                let right = n.right.take();
                (left, Some(n), right)
            }
            Less => {
                let (l, m, lr) = split(n.left.take(), key);
                n.left = lr;
                (l, m, Some(n))
            }
            Greater => {
                let (rl, m, r) = split(n.right.take(), key);
                n.right = rl;
                (Some(n), m, r)
            }
        },
    }
}

/// Merges two treaps with `l`'s keys all below `r`'s.
fn merge<K: Ord>(l: Link<K>, r: Link<K>) -> Link<K> {
    match (l, r) {
        (None, r) => r,
        (l, None) => l,
        (Some(mut a), Some(mut b)) => {
            if a.priority >= b.priority {
                a.right = merge(a.right.take(), Some(b));
                Some(a)
            } else {
                b.left = merge(Some(a), b.left.take());
                Some(b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_remove_contains() {
        let mut s = MutTreapSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(!s.insert(5));
        assert_eq!(s.len(), 2);
        assert!(s.contains(&1));
        assert!(s.remove(&1));
        assert!(!s.remove(&1));
        assert_eq!(s.len(), 1);
        s.check_invariants();
    }

    #[test]
    fn matches_btreeset() {
        let mut reference = BTreeSet::new();
        let mut s = MutTreapSet::new();
        let mut x = 1u64;
        for _ in 0..4000 {
            x = crate::hash::splitmix64(x);
            let k = (x % 400) as i64;
            if x % 2 == 0 {
                assert_eq!(s.insert(k), reference.insert(k));
            } else {
                assert_eq!(s.remove(&k), reference.remove(&k));
            }
        }
        assert_eq!(s.len(), reference.len());
        let got: Vec<i64> = s.to_vec().into_iter().copied().collect();
        let want: Vec<i64> = reference.into_iter().collect();
        assert_eq!(got, want);
        s.check_invariants();
    }

    #[test]
    fn same_canonical_shape_as_persistent_treap() {
        // Both treaps use hashed priorities, so the same key set should
        // give the same sorted contents and identical heights.
        let keys: Vec<i64> = (0..512).map(|k| k * 3 % 512).collect();
        let mutable: MutTreapSet<i64> = keys.iter().copied().collect();
        let persistent: crate::TreapSet<i64> = keys.iter().copied().collect();
        let a: Vec<i64> = mutable.to_vec().into_iter().copied().collect();
        let b: Vec<i64> = persistent.iter().copied().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn large_set_stays_valid_and_drops_cleanly() {
        let mut s: MutTreapSet<u64> = (0..100_000).collect();
        assert_eq!(s.len(), 100_000);
        for k in 0..50_000 {
            assert!(s.remove(&k));
        }
        s.check_invariants();
        drop(s); // iterative drop must not overflow the stack
    }
}
