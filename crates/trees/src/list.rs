//! Persistent singly linked list (cons list / stack).
//!
//! The simplest possible path-copying structure: `push` copies nothing
//! (it shares the entire old list as its tail) and `pop` shares
//! everything but the head. Included to demonstrate that the universal
//! construction is structure-agnostic — the paper's §2 applies to any
//! rooted persistent structure, not just trees.

use std::fmt;
use std::sync::Arc;

struct ListNode<T> {
    value: T,
    next: Option<Arc<ListNode<T>>>,
}

/// A persistent stack (LIFO list).
///
/// # Examples
///
/// ```
/// use pathcopy_trees::list::PStack;
///
/// let v0: PStack<i32> = PStack::new();
/// let v1 = v0.push(1);
/// let v2 = v1.push(2);
/// assert_eq!(v2.peek(), Some(&2));
/// let (v3, popped) = v2.pop().unwrap();
/// assert_eq!(popped, 2);
/// assert_eq!(v1.len(), 1); // old versions intact
/// assert_eq!(v3.len(), 1);
/// ```
pub struct PStack<T> {
    head: Option<Arc<ListNode<T>>>,
    len: usize,
}

impl<T> Clone for PStack<T> {
    fn clone(&self) -> Self {
        PStack {
            head: self.head.clone(),
            len: self.len,
        }
    }
}

impl<T> Default for PStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        PStack { head: None, len: 0 }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.head.is_none()
    }

    /// The top element.
    pub fn peek(&self) -> Option<&T> {
        self.head.as_ref().map(|n| &n.value)
    }

    /// Returns a new version with `value` on top. O(1); shares the whole
    /// receiver as the tail.
    pub fn push(&self, value: T) -> Self {
        PStack {
            head: Some(Arc::new(ListNode {
                value,
                next: self.head.clone(),
            })),
            len: self.len + 1,
        }
    }

    /// Iterator from top to bottom.
    pub fn iter(&self) -> PStackIter<'_, T> {
        PStackIter {
            cur: self.head.as_deref(),
        }
    }
}

impl<T: Clone> PStack<T> {
    /// Returns the version without the top element and that element;
    /// `None` if empty (a no-op for the universal construction).
    pub fn pop(&self) -> Option<(Self, T)> {
        let head = self.head.as_ref()?;
        Some((
            PStack {
                head: head.next.clone(),
                len: self.len - 1,
            },
            head.value.clone(),
        ))
    }

    /// Returns the reversed stack (O(n), used by the queue).
    pub fn reversed(&self) -> Self {
        let mut out = PStack::new();
        for v in self.iter() {
            out = out.push(v.clone());
        }
        out
    }
}

impl<T> Drop for PStack<T> {
    fn drop(&mut self) {
        // Iterative teardown of uniquely-owned prefixes: a deep list would
        // otherwise recurse once per node. Stop at the first shared node —
        // some other version still owns the rest.
        let mut cur = self.head.take();
        while let Some(node) = cur {
            match Arc::try_unwrap(node) {
                Ok(mut inner) => cur = inner.next.take(),
                Err(_) => break,
            }
        }
    }
}

/// Iterator over a [`PStack`], top to bottom.
pub struct PStackIter<'a, T> {
    cur: Option<&'a ListNode<T>>,
}

impl<'a, T> Iterator for PStackIter<'a, T> {
    type Item = &'a T;
    fn next(&mut self) -> Option<Self::Item> {
        let n = self.cur?;
        self.cur = n.next.as_deref();
        Some(&n.value)
    }
}

impl<T: fmt::Debug> fmt::Debug for PStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T> FromIterator<T> for PStack<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut s = PStack::new();
        for v in iter {
            s = s.push(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_order() {
        let s: PStack<i32> = PStack::new();
        let s = s.push(1).push(2).push(3);
        assert_eq!(s.len(), 3);
        let (s, a) = s.pop().unwrap();
        let (s, b) = s.pop().unwrap();
        let (s, c) = s.pop().unwrap();
        assert_eq!((a, b, c), (3, 2, 1));
        assert!(s.pop().is_none());
    }

    #[test]
    fn versions_are_independent() {
        let v1 = PStack::new().push(1);
        let v2 = v1.push(2);
        let v3 = v1.push(3);
        assert_eq!(v2.iter().copied().collect::<Vec<_>>(), vec![2, 1]);
        assert_eq!(v3.iter().copied().collect::<Vec<_>>(), vec![3, 1]);
        assert_eq!(v1.len(), 1);
    }

    #[test]
    fn reversed() {
        let s: PStack<i32> = [1, 2, 3].into_iter().collect();
        let r = s.reversed();
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn deep_list_drops_without_overflow() {
        let mut s = PStack::new();
        for i in 0..1_000_000 {
            s = s.push(i);
        }
        assert_eq!(s.len(), 1_000_000);
        drop(s); // must not blow the stack
    }

    #[test]
    fn shared_suffix_survives_drop() {
        let base: PStack<i32> = (0..1000).collect();
        let branch = base.push(-1);
        drop(base);
        assert_eq!(branch.len(), 1001);
        assert_eq!(branch.iter().count(), 1001);
    }
}
