//! Crash-recovery oracle tests: random op sequences are published
//! through the real feed-sink path, the process "crashes" by copying
//! the log directory and truncating its newest segment at an arbitrary
//! byte offset (record boundaries *and* mid-record torn writes), and
//! recovery must rebuild exactly the `BTreeMap` oracle's state — at the
//! recovered head and at every retained epoch via point-in-time
//! restore.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use pathcopy_concurrent::ShardedTreapMap;
use pathcopy_durable::{EpochLog, FeedPersister, LogConfig, LogError};
use pathcopy_server::backend::{ServeBackend, ShardedServe};
use pathcopy_server::{FeedSink, VersionFeed};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique, empty scratch directory per call (tests share a process).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pathcopy-durable-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// The newest segment file (the only place a torn tail can legally be).
fn newest_segment(dir: &Path) -> Option<PathBuf> {
    let mut segs: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "seg")).then_some(p)
        })
        .collect();
    segs.sort();
    segs.pop()
}

fn assert_matches_oracle(map: &ShardedTreapMap<i64, i64>, oracle: &BTreeMap<i64, i64>, what: &str) {
    assert_eq!(map.len(), oracle.len(), "{what}: len diverged");
    for k in 0..48i64 {
        assert_eq!(map.get(&k), oracle.get(&k).copied(), "{what}: key {k}");
    }
}

/// A primary whose publishes go through the real `FeedSink` path.
struct LoggedPrimary {
    backend: ShardedServe,
    feed: VersionFeed,
    log: Arc<EpochLog>,
    persister: Arc<FeedPersister>,
}

fn logged_primary(dir: &Path, config: LogConfig, feed_capacity: usize) -> LoggedPrimary {
    let (log, _) = EpochLog::open(dir, config).unwrap();
    let log = Arc::new(log);
    let persister = FeedPersister::new(Arc::clone(&log));
    let feed = VersionFeed::configured(
        feed_capacity,
        log.head() + 1,
        Some(Arc::clone(&persister) as Arc<dyn FeedSink>),
    );
    LoggedPrimary {
        backend: ShardedServe::with_shards(4),
        feed,
        log,
        persister,
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Remove(i64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // A small key space so removes and overwrites actually hit.
    prop_oneof![
        (0i64..48, -1000i64..1000).prop_map(|(k, v)| Op::Insert(k, v)),
        (0i64..48).prop_map(Op::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn recovery_matches_oracle_at_every_retained_epoch(
        rounds in prop::collection::vec(prop::collection::vec(arb_op(), 1..8), 1..14),
        cut_permille in 0u64..=1000,
    ) {
        let dir = scratch("oracle");
        let config = LogConfig {
            segment_bytes: 384, // several rotations per run
            max_total_bytes: 1 << 20, // no retirement: every epoch stays restorable
            checkpoint_every: 3,
            fsync: false,
        };
        let primary = logged_primary(&dir, config.clone(), usize::MAX);

        // Publish one epoch per round, remembering the oracle's state at
        // each; `states[e]` is the primary's content at epoch `e`.
        let mut oracle = BTreeMap::new();
        let mut states = vec![oracle.clone()];
        for round in &rounds {
            for op in round {
                match *op {
                    Op::Insert(k, v) => {
                        primary.backend.insert(k, v);
                        oracle.insert(k, v);
                    }
                    Op::Remove(k) => {
                        primary.backend.remove(k);
                        oracle.remove(&k);
                    }
                }
            }
            primary.feed.publish(primary.backend.snapshot());
            states.push(oracle.clone());
        }
        prop_assert_eq!(primary.persister.error_count(), 0);
        prop_assert_eq!(primary.log.head(), rounds.len() as u64);
        drop(primary); // "clean" process exit

        // The crash: copy the log, then shear the newest segment at an
        // arbitrary byte offset — 1000‰ is a clean shutdown, anything
        // else lands on a record boundary or tears a record in half.
        let crashed = scratch("oracle-crashed");
        copy_dir(&dir, &crashed);
        if let Some(seg) = newest_segment(&crashed) {
            let len = std::fs::metadata(&seg).unwrap().len();
            let cut = len * cut_permille / 1000;
            std::fs::OpenOptions::new()
                .write(true)
                .open(&seg)
                .unwrap()
                .set_len(cut)
                .unwrap();
        }

        let (log, recovered) = EpochLog::open(&crashed, config).unwrap();
        prop_assert!(recovered.head <= rounds.len() as u64);
        let (map, head) = log.replay().unwrap();
        prop_assert_eq!(head, recovered.head);
        assert_matches_oracle(&map, &states[head as usize], "replayed head");

        // Point-in-time restore of *every* retained epoch.
        match log.retained() {
            None => prop_assert_eq!(head, 0, "empty log only when nothing survived"),
            Some((oldest, retained_head)) => {
                prop_assert_eq!(retained_head, head);
                prop_assert_eq!(oldest, 1, "no retirement in this config");
                for epoch in oldest..=retained_head {
                    let restored = log.restore_epoch(epoch).unwrap();
                    assert_matches_oracle(
                        &restored,
                        &states[epoch as usize],
                        &format!("restore_epoch({epoch})"),
                    );
                }
                prop_assert!(matches!(
                    log.restore_epoch(retained_head + 1),
                    Err(LogError::UnknownEpoch { .. })
                ));
            }
        }

        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&crashed).unwrap();
    }
}

#[test]
fn torn_tail_garbage_is_truncated_and_appends_resume() {
    let dir = scratch("torn");
    let config = LogConfig {
        fsync: false,
        ..LogConfig::default()
    };
    {
        let primary = logged_primary(&dir, config.clone(), 8);
        for k in 1..=3i64 {
            primary.backend.insert(k, k * 10);
            primary.feed.publish(primary.backend.snapshot());
        }
        assert_eq!(primary.log.head(), 3);
    }
    // A crash mid-append: a plausible header promising a body that never
    // made it to disk.
    let seg = newest_segment(&dir).unwrap();
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&200u32.to_le_bytes()).unwrap();
        f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
        f.write_all(&[0xAB; 17]).unwrap();
    }

    let (log, recovered) = EpochLog::open(&dir, config).unwrap();
    assert_eq!(recovered.head, 3, "complete epochs survive the tear");
    assert_eq!(recovered.truncated_bytes, 25, "the torn record is gone");
    let (map, head) = log.replay().unwrap();
    assert_eq!(head, 3);
    assert_eq!(map.get(&3), Some(30));

    // The truncated tail is a clean unit boundary: appends continue.
    log.append_diff(4, &[pathcopy_core::DiffEntry::Added(4, 40)])
        .unwrap();
    assert_eq!(log.head(), 4);
    assert_eq!(log.restore_epoch(4).unwrap().get(&4), Some(40));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn segments_rotate_and_old_chains_retire_under_the_byte_cap() {
    let dir = scratch("retire");
    let config = LogConfig {
        segment_bytes: 256,
        max_total_bytes: 2048,
        checkpoint_every: 4,
        fsync: false,
    };
    let primary = logged_primary(&dir, config, 8);
    let mut oracle = BTreeMap::new();
    let mut states = vec![oracle.clone()];
    for e in 1..=40i64 {
        primary.backend.insert(e % 48, e);
        oracle.insert(e % 48, e);
        primary.feed.publish(primary.backend.snapshot());
        states.push(oracle.clone());
    }
    assert_eq!(primary.persister.error_count(), 0);

    let log = &primary.log;
    assert!(log.segment_count() >= 2, "small segments must rotate");
    let written = log.io_stats().bytes_written;
    assert!(
        log.total_bytes() < written,
        "retirement must have dropped bytes ({} on disk of {written} written)",
        log.total_bytes()
    );
    let (oldest, head) = log.retained().unwrap();
    assert_eq!(head, 40);
    assert!(oldest > 1, "the oldest chain was retired");

    // Every retained epoch restores to the oracle; a retired one errors.
    for epoch in oldest..=head {
        let restored = log.restore_epoch(epoch).unwrap();
        assert_matches_oracle(
            &restored,
            &states[epoch as usize],
            &format!("retained epoch {epoch}"),
        );
    }
    assert!(matches!(
        log.restore_epoch(oldest - 1),
        Err(LogError::UnknownEpoch { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovered_primary_continues_the_epoch_sequence() {
    let dir = scratch("continue");
    let config = LogConfig {
        fsync: false,
        ..LogConfig::default()
    };
    {
        let primary = logged_primary(&dir, config.clone(), 8);
        for k in 1..=3i64 {
            primary.backend.insert(k, k);
            primary.feed.publish(primary.backend.snapshot());
        }
    }

    // Restart: replay the state, continue the feed at head + 1.
    let (log, recovered) = EpochLog::open(&dir, config.clone()).unwrap();
    assert_eq!(recovered.head, 3);
    let (map, head) = log.replay().unwrap();
    let backend = ShardedServe::new(map);
    let log = Arc::new(log);
    let persister = FeedPersister::new(Arc::clone(&log));
    let feed = VersionFeed::configured(
        8,
        head + 1,
        Some(Arc::clone(&persister) as Arc<dyn FeedSink>),
    );
    backend.insert(9, 9);
    assert_eq!(feed.publish(backend.snapshot()), 4, "no epoch reuse");
    assert_eq!(persister.error_count(), 0);
    assert_eq!(log.head(), 4);
    assert_eq!(
        log.last_checkpoint(),
        4,
        "first post-recovery publish has no prev snapshot, so it re-bases"
    );
    // History from before the crash is still restorable.
    let old = log.restore_epoch(2).unwrap();
    assert_eq!((old.get(&2), old.get(&9)), (Some(2), None));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn io_counters_track_appends_fsyncs_and_recovery_reads() {
    let dir = scratch("iostats");
    let (log, _) = EpochLog::open(&dir, LogConfig::default()).unwrap();
    let backend = ShardedServe::with_shards(2);
    backend.insert(1, 1);
    log.append_checkpoint(1, backend.snapshot().as_ref())
        .unwrap();
    log.append_diff(2, &[pathcopy_core::DiffEntry::Added(2, 2)])
        .unwrap();
    let io = log.io_stats();
    assert_eq!(io.appends, 2, "one checkpoint page + one diff record");
    assert!(io.fsyncs >= 2, "durable config syncs every epoch");
    assert!(io.bytes_written > 0);
    assert_eq!(io.bytes_read, 0, "no replay yet");
    log.replay().unwrap();
    let after = log.io_stats().since(&io);
    assert!(after.bytes_read > 0, "replay reads the segments back");
    assert_eq!(after.appends, 0);
    drop(log);
    std::fs::remove_dir_all(&dir).unwrap();
}
