//! The segmented epoch log: append, rotate, retire, recover, restore.
//!
//! A log is a directory of segment files named by the first epoch they
//! contain (`00000000000000000042.seg`). Appends go to the newest
//! segment; a segment that outgrows [`LogConfig::segment_bytes`] is
//! closed and a new one started; a **checkpoint** always starts a fresh
//! segment. Retirement works on *chains* — a checkpoint-opening segment
//! plus the diff segments that follow it — dropping whole chains oldest
//! first while the log exceeds [`LogConfig::max_total_bytes`], and
//! never dropping the newest chain, so the log always retains at least
//! one complete restore path.
//!
//! Recovery ([`EpochLog::open`]) scans every segment, truncates a torn
//! tail in the newest segment (a crash mid-append), and rejects
//! corruption anywhere else. See [`crate::record`] for the record
//! envelope and what counts as a torn tail.

use std::fs::{self, File, OpenOptions};
use std::io;
use std::ops::Bound;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use pathcopy_concurrent::{diff_to_ops, ShardedTreapMap};
use pathcopy_core::{DiffEntry, IoCounters, IoCountersSnapshot};
use pathcopy_server::backend::{ServeBackend, ServeSnapshot};
use pathcopy_server::proto::{Epoch, Response, MAX_FRAME_LEN, SYNC_PAGE_MAX_ENTRIES};

use crate::record::{encode_record, scan_segment, Scan, Tail, Unit, UnitKind};

/// Tunables for [`EpochLog::open`].
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Rotate to a new segment once the current one reaches this many
    /// bytes. A single checkpoint larger than this still lives in one
    /// (oversized) segment — units never span segments.
    pub segment_bytes: u64,
    /// Retire the oldest checkpoint chains while the log's total size
    /// exceeds this. The newest chain is never retired, so the log can
    /// transiently exceed the cap by one chain.
    pub max_total_bytes: u64,
    /// The persister cuts a checkpoint every this many epochs (min 1);
    /// between checkpoints it appends pruned diff records. Smaller
    /// values bound replay work, larger values bound log growth on
    /// write-heavy feeds.
    pub checkpoint_every: u64,
    /// `fsync` after every appended epoch (and on segment create /
    /// retire). Turning this off trades crash durability of the last
    /// few epochs for append latency; the record checksums still keep
    /// recovery safe.
    pub fsync: bool,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            segment_bytes: 4 << 20,
            max_total_bytes: 64 << 20,
            checkpoint_every: 64,
            fsync: true,
        }
    }
}

/// Why a log operation failed.
#[derive(Debug)]
pub enum LogError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// A segment other than the newest has an invalid tail, or the
    /// segment sequence is structurally impossible (a diff with no
    /// preceding checkpoint, an epoch that does not chain). Torn tails
    /// in the *newest* segment are not errors — [`EpochLog::open`]
    /// truncates them.
    Corrupt {
        /// The offending segment file.
        segment: PathBuf,
        /// What the scanner objected to.
        detail: String,
    },
    /// [`EpochLog::append_diff`] was called before any checkpoint: a
    /// diff-only log has no base state to replay from.
    NoCheckpoint,
    /// The epoch does not extend the log: diffs must be exactly
    /// `head + 1`, checkpoints strictly greater than `head`.
    OutOfSequence {
        /// The epoch that was offered.
        epoch: Epoch,
        /// The log's current head.
        head: Epoch,
    },
    /// The requested epoch is not restorable: outside the retained
    /// range, or unreachable across a gap left by a failed append.
    UnknownEpoch {
        /// The epoch that was requested.
        epoch: Epoch,
        /// The retained `(oldest, head)` range, if the log is non-empty.
        retained: Option<(Epoch, Epoch)>,
    },
    /// A single diff record would exceed the proto frame cap
    /// ([`MAX_FRAME_LEN`]); cut a checkpoint instead (the persister
    /// does this automatically).
    RecordTooLarge(u64),
    /// A failed append could not be rolled back, so the tail of the
    /// newest segment is no longer trustworthy; the log refuses further
    /// appends. Reopen to recover (the torn tail is truncated).
    Poisoned,
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "log io error: {e}"),
            LogError::Corrupt { segment, detail } => {
                write!(f, "corrupt segment {}: {detail}", segment.display())
            }
            LogError::NoCheckpoint => {
                write!(f, "diff append on a log with no checkpoint to replay from")
            }
            LogError::OutOfSequence { epoch, head } => {
                write!(f, "epoch {epoch} does not extend log head {head}")
            }
            LogError::UnknownEpoch { epoch, retained } => match retained {
                Some((oldest, head)) => write!(
                    f,
                    "epoch {epoch} is not restorable (retained range {oldest}..={head})"
                ),
                None => write!(f, "epoch {epoch} is not restorable (the log is empty)"),
            },
            LogError::RecordTooLarge(n) => write!(
                f,
                "diff record of {n} bytes exceeds the {MAX_FRAME_LEN}-byte frame cap"
            ),
            LogError::Poisoned => write!(
                f,
                "log poisoned by an unrecoverable append failure; reopen to recover"
            ),
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LogError {
    fn from(e: io::Error) -> Self {
        LogError::Io(e)
    }
}

/// What [`EpochLog::open`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// The last durable epoch (`0` = the log is empty).
    pub head: Epoch,
    /// The newest complete checkpoint's epoch (`0` = none).
    pub last_checkpoint: Epoch,
    /// Segment files retained after recovery.
    pub segments: usize,
    /// Bytes of torn tail truncated from the newest segment (a crash
    /// mid-append; `0` on a clean shutdown).
    pub truncated_bytes: u64,
    /// Leading diff-only segments deleted because their checkpoint was
    /// already retired (a crash mid-retirement; normally `0`).
    pub orphaned_segments: usize,
}

struct SegmentMeta {
    path: PathBuf,
    bytes: u64,
    /// `Some(e)` if the segment opens with a complete checkpoint for
    /// epoch `e` — the start of a retirement chain.
    checkpoint: Option<Epoch>,
}

struct LogState {
    /// Ascending by first epoch; the last entry is the write target.
    segments: Vec<SegmentMeta>,
    /// Append handle for the newest segment.
    writer: Option<File>,
    head: Epoch,
    last_checkpoint: Epoch,
    poisoned: bool,
}

/// A segmented, checksummed, crash-recoverable log of published epochs;
/// see the [module docs](self).
///
/// All methods take `&self`; appends and restores serialize on an
/// internal lock. Restores read segment files back under that lock, so
/// a point-in-time restore briefly blocks appends — acceptable for a
/// recovery/analytics path, and it guarantees the restore sees a
/// consistent prefix.
///
/// # Examples
///
/// ```
/// use pathcopy_core::DiffEntry;
/// use pathcopy_durable::{EpochLog, LogConfig};
/// use pathcopy_server::backend::{ServeBackend, ShardedServe};
///
/// let dir = std::env::temp_dir().join(format!("pc-durable-doc-log-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let (log, recovered) = EpochLog::open(&dir, LogConfig::default()).unwrap();
/// assert_eq!(recovered.head, 0, "fresh log");
///
/// // Epoch 1: a checkpoint of the full state; epoch 2: a pruned diff.
/// let map = ShardedServe::with_shards(2);
/// map.insert(1, 10);
/// log.append_checkpoint(1, map.snapshot().as_ref()).unwrap();
/// map.insert(2, 20);
/// log.append_diff(2, &[DiffEntry::Added(2, 20)]).unwrap();
/// assert_eq!(log.retained(), Some((1, 2)));
///
/// // Replay the head; restore epoch 1 as it was.
/// let (state, head) = log.replay().unwrap();
/// assert_eq!((head, state.get(&2)), (2, Some(20)));
/// let old = log.restore_epoch(1).unwrap();
/// assert_eq!((old.get(&1), old.get(&2)), (Some(10), None));
/// # drop(log);
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub struct EpochLog {
    dir: PathBuf,
    config: LogConfig,
    io: IoCounters,
    state: Mutex<LogState>,
}

fn segment_path(dir: &Path, first_epoch: Epoch) -> PathBuf {
    dir.join(format!("{first_epoch:020}.seg"))
}

fn segment_epoch(path: &Path) -> Option<Epoch> {
    let stem = path.file_name()?.to_str()?.strip_suffix(".seg")?;
    if stem.len() != 20 || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

impl EpochLog {
    /// Opens (creating the directory if needed) and recovers the log.
    ///
    /// Recovery scans every segment in epoch order, validating record
    /// checksums and the epoch chain. A torn tail in the *newest*
    /// segment — a crash mid-append — is truncated away and reported in
    /// [`RecoveryInfo::truncated_bytes`]; damage anywhere else is
    /// [`LogError::Corrupt`].
    ///
    /// # Errors
    ///
    /// [`LogError::Io`] on filesystem failure, [`LogError::Corrupt`] on
    /// mid-log damage (an invalid record that is not the newest
    /// segment's tail, or an epoch sequence that does not chain).
    pub fn open(
        dir: impl AsRef<Path>,
        config: LogConfig,
    ) -> Result<(Self, RecoveryInfo), LogError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let io = IoCounters::new();

        let mut paths: Vec<(Epoch, PathBuf)> = fs::read_dir(&dir)?
            .filter_map(|entry| {
                let path = entry.ok()?.path();
                segment_epoch(&path).map(|e| (e, path))
            })
            .collect();
        paths.sort_by_key(|(e, _)| *e);

        // A crash mid-retirement removes a chain's checkpoint segment
        // before its diff followers: leading diff-only segments are
        // orphans with no base state, deleted here.
        let mut orphaned = 0usize;
        let mut segments = Vec::new();
        let mut truncated = 0u64;
        let mut head = 0u64;
        let mut last_checkpoint = 0u64;
        let mut seen_checkpoint = false;
        let last_index = paths.len().saturating_sub(1);
        for (i, (_, path)) in paths.iter().enumerate() {
            let buf = fs::read(path)?;
            io.add_read(buf.len() as u64);
            let Scan {
                units,
                clean_len,
                tail,
            } = scan_segment(&buf, false);
            if let Tail::Torn(why) = tail {
                if i != last_index {
                    return Err(LogError::Corrupt {
                        segment: path.clone(),
                        detail: why.to_string(),
                    });
                }
                truncated = buf.len() as u64 - clean_len;
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(clean_len)?;
                f.sync_all()?;
                io.record_fsync();
            }
            let mut checkpoint = None;
            for (j, unit) in units.iter().enumerate() {
                match unit.kind {
                    UnitKind::Checkpoint(_) => {
                        if unit.epoch <= head {
                            return Err(LogError::Corrupt {
                                segment: path.clone(),
                                detail: format!(
                                    "checkpoint epoch {} does not advance head {head}",
                                    unit.epoch
                                ),
                            });
                        }
                        if j == 0 {
                            checkpoint = Some(unit.epoch);
                        }
                        seen_checkpoint = true;
                        last_checkpoint = unit.epoch;
                    }
                    UnitKind::Diff(_) => {
                        if !seen_checkpoint {
                            // An orphaned chain remnant: only legal while
                            // no checkpoint has been seen at all, i.e. in
                            // leading segments (handled below).
                            if segments.is_empty() && checkpoint.is_none() {
                                continue;
                            }
                            return Err(LogError::Corrupt {
                                segment: path.clone(),
                                detail: format!(
                                    "diff record for epoch {} precedes any checkpoint",
                                    unit.epoch
                                ),
                            });
                        }
                        if unit.epoch != head + 1 {
                            return Err(LogError::Corrupt {
                                segment: path.clone(),
                                detail: format!(
                                    "diff record for epoch {} does not chain from head {head}",
                                    unit.epoch
                                ),
                            });
                        }
                    }
                }
                head = unit.epoch;
            }
            if !seen_checkpoint {
                // Orphaned leading segment (or an entirely empty log tail
                // before the first checkpoint): delete and move on.
                fs::remove_file(path)?;
                orphaned += 1;
                continue;
            }
            segments.push(SegmentMeta {
                path: path.clone(),
                bytes: clean_len,
                checkpoint,
            });
        }

        let writer = match segments.last() {
            Some(meta) => Some(OpenOptions::new().append(true).open(&meta.path)?),
            None => None,
        };
        let info = RecoveryInfo {
            head,
            last_checkpoint,
            segments: segments.len(),
            truncated_bytes: truncated,
            orphaned_segments: orphaned,
        };
        Ok((
            EpochLog {
                dir,
                config,
                io,
                state: Mutex::new(LogState {
                    segments,
                    writer,
                    head,
                    last_checkpoint,
                    poisoned: false,
                }),
            },
            info,
        ))
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration the log was opened with.
    pub fn config(&self) -> &LogConfig {
        &self.config
    }

    /// The last durable epoch (`0` = empty log).
    pub fn head(&self) -> Epoch {
        self.state.lock().head
    }

    /// The newest complete checkpoint's epoch (`0` = none).
    pub fn last_checkpoint(&self) -> Epoch {
        self.state.lock().last_checkpoint
    }

    /// The restorable `(oldest, head)` epoch range, or `None` while the
    /// log is empty. Epochs below `oldest` have been retired with their
    /// chains.
    pub fn retained(&self) -> Option<(Epoch, Epoch)> {
        let state = self.state.lock();
        retained_locked(&state)
    }

    /// Number of segment files currently on disk.
    pub fn segment_count(&self) -> usize {
        self.state.lock().segments.len()
    }

    /// Total bytes across all segment files.
    pub fn total_bytes(&self) -> u64 {
        self.state.lock().segments.iter().map(|s| s.bytes).sum()
    }

    /// A copy of the log's IO counters (appends, fsyncs, bytes moved).
    pub fn io_stats(&self) -> IoCountersSnapshot {
        self.io.snapshot()
    }

    /// Appends epoch `epoch`'s pruned diff against epoch `epoch - 1`.
    ///
    /// # Errors
    ///
    /// [`LogError::NoCheckpoint`] before the first checkpoint,
    /// [`LogError::OutOfSequence`] unless `epoch` is exactly
    /// `head + 1`, [`LogError::RecordTooLarge`] if the encoded diff
    /// exceeds the frame cap (cut a checkpoint instead),
    /// [`LogError::Poisoned`] after an unrecoverable append failure,
    /// and [`LogError::Io`] on filesystem failure. A failed append is
    /// rolled back — the log's head does not move.
    pub fn append_diff(
        &self,
        epoch: Epoch,
        entries: &[DiffEntry<i64, i64>],
    ) -> Result<(), LogError> {
        let mut state = self.state.lock();
        if state.poisoned {
            return Err(LogError::Poisoned);
        }
        if state.last_checkpoint == 0 {
            return Err(LogError::NoCheckpoint);
        }
        if epoch != state.head + 1 {
            return Err(LogError::OutOfSequence {
                epoch,
                head: state.head,
            });
        }
        let mut body = Vec::new();
        Response::EpochDiff {
            to: epoch,
            entries: entries.to_vec(),
        }
        .encode(&mut body);
        if body.len() as u64 > MAX_FRAME_LEN as u64 {
            return Err(LogError::RecordTooLarge(body.len() as u64));
        }
        let full = state
            .segments
            .last()
            .is_some_and(|s| s.bytes >= self.config.segment_bytes);
        if full {
            self.rotate_to_locked(&mut state, epoch)?;
        }
        self.write_record_locked(&mut state, &body)?;
        state.head = epoch;
        if self.config.fsync {
            self.sync_data_locked(&mut state)?;
        }
        Ok(())
    }

    /// Appends a checkpoint: epoch `epoch`'s *complete* state, read
    /// from `snap` in bounded pages (the same [`SYNC_PAGE_MAX_ENTRIES`]
    /// paging `FullSync` uses on the wire). A checkpoint always starts
    /// a fresh segment, and completing one triggers retirement of the
    /// oldest chains beyond [`LogConfig::max_total_bytes`].
    ///
    /// Unlike a diff, a checkpoint may skip epochs (`epoch` only has to
    /// exceed `head`) — it re-bases the log, which is how the persister
    /// self-heals after a failed append.
    ///
    /// # Errors
    ///
    /// [`LogError::OutOfSequence`] unless `epoch > head`,
    /// [`LogError::Poisoned`] after an unrecoverable append failure,
    /// and [`LogError::Io`] on filesystem failure. A checkpoint that
    /// fails mid-write is rolled back by deleting its fresh segment.
    pub fn append_checkpoint(
        &self,
        epoch: Epoch,
        snap: &dyn ServeSnapshot,
    ) -> Result<(), LogError> {
        let mut state = self.state.lock();
        if state.poisoned {
            return Err(LogError::Poisoned);
        }
        if epoch <= state.head {
            return Err(LogError::OutOfSequence {
                epoch,
                head: state.head,
            });
        }
        self.rotate_to_locked(&mut state, epoch)?;
        if let Err(e) = self.write_checkpoint_pages_locked(&mut state, epoch, snap) {
            self.abort_newest_segment_locked(&mut state);
            return Err(e);
        }
        state
            .segments
            .last_mut()
            .expect("rotate_to_locked pushed a segment")
            .checkpoint = Some(epoch);
        state.head = epoch;
        state.last_checkpoint = epoch;
        if self.config.fsync {
            self.sync_data_locked(&mut state)?;
        }
        self.retire_locked(&mut state)
    }

    /// Flushes the newest segment to the medium (useful with
    /// [`LogConfig::fsync`] off).
    ///
    /// # Errors
    ///
    /// [`LogError::Io`] if the sync fails.
    pub fn sync(&self) -> Result<(), LogError> {
        let mut state = self.state.lock();
        self.sync_data_locked(&mut state)
    }

    /// Rebuilds the head state into a fresh map: recovery in one call.
    /// Returns the map and the head epoch (`0` and an empty map for an
    /// empty log).
    ///
    /// # Errors
    ///
    /// [`LogError::Io`] / [`LogError::Corrupt`] if the segments cannot
    /// be read back, [`LogError::UnknownEpoch`] if the head is
    /// unreachable (should not happen on a log that just opened).
    pub fn replay(&self) -> Result<(ShardedTreapMap<i64, i64>, Epoch), LogError> {
        let map = ShardedTreapMap::with_shards(8);
        let state = self.state.lock();
        if state.head == 0 {
            return Ok((map, 0));
        }
        let head = state.head;
        self.replay_to_locked(&state, head, &mut |unit| apply_to_map(&map, unit))?;
        Ok((map, head))
    }

    /// Replays the head state into an existing (empty) backend — the
    /// replica bootstrap path. Checkpoint pages are applied as inserts
    /// and each diff as one atomic
    /// [`transact`](ServeBackend::transact), so a reader of `store`
    /// never observes a state between epochs. Returns the head epoch
    /// reached (`0` for an empty log).
    ///
    /// # Errors
    ///
    /// [`LogError::Io`] / [`LogError::Corrupt`] if the segments cannot
    /// be read back, [`LogError::UnknownEpoch`] if the head is
    /// unreachable.
    pub fn replay_into(&self, store: &dyn ServeBackend) -> Result<Epoch, LogError> {
        let state = self.state.lock();
        if state.head == 0 {
            return Ok(0);
        }
        let head = state.head;
        self.replay_to_locked(&state, head, &mut |unit| apply_to_backend(store, unit))?;
        Ok(head)
    }

    /// Point-in-time restore: rebuilds the map exactly as it was at
    /// `epoch`, for any epoch still in [`retained`](Self::retained).
    ///
    /// # Errors
    ///
    /// [`LogError::UnknownEpoch`] if `epoch` is outside the retained
    /// range (retired, never published, or lost to a re-basing
    /// checkpoint), [`LogError::Io`] / [`LogError::Corrupt`] if the
    /// segments cannot be read back.
    ///
    /// # Examples
    ///
    /// ```
    /// use pathcopy_durable::{EpochLog, LogConfig, LogError};
    /// use pathcopy_server::backend::{ServeBackend, ShardedServe};
    ///
    /// let dir = std::env::temp_dir().join(format!("pc-durable-doc-pitr-{}", std::process::id()));
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// let (log, _) = EpochLog::open(&dir, LogConfig::default()).unwrap();
    /// let map = ShardedServe::with_shards(2);
    /// for epoch in 1..=5 {
    ///     map.insert(epoch as i64, epoch as i64 * 10);
    ///     log.append_checkpoint(epoch, map.snapshot().as_ref()).unwrap();
    /// }
    /// let at3 = log.restore_epoch(3).unwrap();
    /// assert_eq!(at3.len(), 3);
    /// assert_eq!(at3.get(&3), Some(30));
    /// assert!(matches!(
    ///     log.restore_epoch(9),
    ///     Err(LogError::UnknownEpoch { epoch: 9, retained: Some((1, 5)) })
    /// ));
    /// # drop(log);
    /// # std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn restore_epoch(&self, epoch: Epoch) -> Result<ShardedTreapMap<i64, i64>, LogError> {
        let map = ShardedTreapMap::with_shards(8);
        let state = self.state.lock();
        self.replay_to_locked(&state, epoch, &mut |unit| apply_to_map(&map, unit))?;
        Ok(map)
    }

    // -- internals ---------------------------------------------------------

    /// Streams the units needed to build `target`'s state — the newest
    /// checkpoint at or before `target`, then every diff up to `target`
    /// — into `apply`.
    fn replay_to_locked(
        &self,
        state: &LogState,
        target: Epoch,
        apply: &mut dyn FnMut(Unit),
    ) -> Result<(), LogError> {
        let unknown = || LogError::UnknownEpoch {
            epoch: target,
            retained: retained_locked(state),
        };
        if target == 0 || target > state.head {
            return Err(unknown());
        }
        // The chain to replay starts at the newest checkpoint <= target;
        // checkpoints always open a segment, so segment metadata is
        // enough to find it.
        let start = state
            .segments
            .iter()
            .rposition(|s| s.checkpoint.is_some_and(|c| c <= target))
            .ok_or_else(unknown)?;
        let mut reached = 0u64;
        'segments: for meta in &state.segments[start..] {
            let buf = fs::read(&meta.path)?;
            self.io.add_read(buf.len() as u64);
            let scan = scan_segment(&buf, true);
            if let Tail::Torn(why) = scan.tail {
                return Err(LogError::Corrupt {
                    segment: meta.path.clone(),
                    detail: why.to_string(),
                });
            }
            for unit in scan.units {
                if unit.epoch > target {
                    break 'segments;
                }
                reached = unit.epoch;
                apply(unit);
            }
        }
        if reached == target {
            Ok(())
        } else {
            // A re-basing checkpoint skipped past `target` (an epoch
            // lost to a failed append): the state at `target` is gone.
            Err(unknown())
        }
    }

    /// Starts a fresh segment named after `first_epoch` and makes it
    /// the write target.
    fn rotate_to_locked(&self, state: &mut LogState, first_epoch: Epoch) -> Result<(), LogError> {
        let path = segment_path(&self.dir, first_epoch);
        let file = OpenOptions::new().append(true).create(true).open(&path)?;
        state.segments.push(SegmentMeta {
            path,
            bytes: 0,
            checkpoint: None,
        });
        state.writer = Some(file);
        self.sync_dir()?;
        Ok(())
    }

    /// Appends one framed record to the newest segment, rolling the
    /// file length back if the write fails partway.
    fn write_record_locked(&self, state: &mut LogState, body: &[u8]) -> Result<(), LogError> {
        use std::io::Write as _;
        let rec = encode_record(body);
        let seg = state.segments.last_mut().expect("append targets a segment");
        let file = state.writer.as_mut().expect("writer for newest segment");
        match file.write_all(&rec) {
            Ok(()) => {
                seg.bytes += rec.len() as u64;
                self.io.record_append();
                self.io.add_written(rec.len() as u64);
                Ok(())
            }
            Err(e) => {
                // A short write left a torn tail; cut it off so the next
                // append (O_APPEND) lands on a clean unit boundary.
                if file.set_len(seg.bytes).is_err() {
                    state.poisoned = true;
                }
                Err(e.into())
            }
        }
    }

    /// Writes a complete checkpoint (a run of `SyncPage` records, last
    /// one `done`) into the current — freshly rotated — segment.
    fn write_checkpoint_pages_locked(
        &self,
        state: &mut LogState,
        epoch: Epoch,
        snap: &dyn ServeSnapshot,
    ) -> Result<(), LogError> {
        let mut after: Option<i64> = None;
        loop {
            let lo = after.map_or(Bound::Unbounded, Bound::Excluded);
            let (entries, complete) =
                snap.range(lo, Bound::Unbounded, SYNC_PAGE_MAX_ENTRIES as usize);
            let next_after = entries.last().map(|&(k, _)| k);
            let mut body = Vec::new();
            Response::SyncPage {
                epoch,
                entries,
                done: complete,
            }
            .encode(&mut body);
            self.write_record_locked(state, &body)?;
            if complete {
                return Ok(());
            }
            if next_after.is_none() || next_after == after {
                return Err(LogError::Io(io::Error::other(
                    "snapshot range paging made no progress",
                )));
            }
            after = next_after;
        }
    }

    /// Rolls back a failed checkpoint by deleting its fresh segment and
    /// restoring the previous segment as the write target.
    fn abort_newest_segment_locked(&self, state: &mut LogState) {
        let Some(meta) = state.segments.pop() else {
            return;
        };
        state.writer = None;
        if fs::remove_file(&meta.path).is_err() {
            // The doomed segment stays on disk; it cannot be trusted and
            // cannot be removed, so refuse further appends.
            state.poisoned = true;
            return;
        }
        if let Some(prev) = state.segments.last() {
            match OpenOptions::new().append(true).open(&prev.path) {
                Ok(f) => state.writer = Some(f),
                Err(_) => state.poisoned = true,
            }
        }
    }

    /// Drops whole chains oldest-first while the log exceeds its byte
    /// cap, always keeping the newest chain.
    fn retire_locked(&self, state: &mut LogState) -> Result<(), LogError> {
        loop {
            let total: u64 = state.segments.iter().map(|s| s.bytes).sum();
            if total <= self.config.max_total_bytes {
                return Ok(());
            }
            // The oldest chain spans [0, cut), where `cut` is the next
            // chain's first segment. No second chain: nothing to drop.
            let Some(cut) = state
                .segments
                .iter()
                .skip(1)
                .position(|s| s.checkpoint.is_some())
                .map(|p| p + 1)
            else {
                return Ok(());
            };
            for _ in 0..cut {
                // Remove the file before forgetting it, so an IO error
                // leaves metadata and disk consistent. A crash between
                // removals leaves orphan diff segments, which `open`
                // detects and deletes.
                fs::remove_file(&state.segments[0].path)?;
                state.segments.remove(0);
            }
            self.sync_dir()?;
        }
    }

    fn sync_data_locked(&self, state: &mut LogState) -> Result<(), LogError> {
        if let Some(file) = state.writer.as_mut() {
            file.sync_data()?;
            self.io.record_fsync();
        }
        Ok(())
    }

    /// Makes segment creation/removal durable by syncing the directory.
    fn sync_dir(&self) -> Result<(), LogError> {
        if !self.config.fsync {
            return Ok(());
        }
        File::open(&self.dir)?.sync_all()?;
        self.io.record_fsync();
        Ok(())
    }
}

fn retained_locked(state: &LogState) -> Option<(Epoch, Epoch)> {
    if state.head == 0 {
        return None;
    }
    let oldest = state.segments.iter().find_map(|s| s.checkpoint)?;
    Some((oldest, state.head))
}

fn apply_to_map(map: &ShardedTreapMap<i64, i64>, unit: Unit) {
    match unit.kind {
        UnitKind::Checkpoint(entries) => {
            for (k, v) in entries {
                map.insert(k, v);
            }
        }
        UnitKind::Diff(entries) => {
            for e in entries {
                match e {
                    DiffEntry::Added(k, v) | DiffEntry::Changed(k, _, v) => {
                        map.insert(k, v);
                    }
                    DiffEntry::Removed(k, _) => {
                        map.remove(&k);
                    }
                }
            }
        }
    }
}

fn apply_to_backend(store: &dyn ServeBackend, unit: Unit) {
    match unit.kind {
        UnitKind::Checkpoint(entries) => {
            for (k, v) in entries {
                store.insert(k, v);
            }
        }
        UnitKind::Diff(entries) => {
            store.transact(&diff_to_ops(&entries));
        }
    }
}
