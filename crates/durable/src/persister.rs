//! The glue between the primary's feed and the log: a
//! [`FeedSink`] that appends every published epoch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use pathcopy_metrics::{HistogramSnapshot, LatencyHistogram, Stage};
use pathcopy_server::backend::ServeSnapshot;
use pathcopy_server::metrics::{summarize, MetricsSource};
use pathcopy_server::proto::{Epoch, StageSummary};
use pathcopy_server::FeedSink;
use pathcopy_trace::{Flight, TraceContext};

use crate::log::{EpochLog, LogError};

/// Persists a `VersionFeed` into an [`EpochLog`].
///
/// Install it as
/// [`ServerConfig::feed_sink`](pathcopy_server::ServerConfig) (or pass
/// it to `VersionFeed::configured`) and every published epoch becomes
/// durable before `publish` returns:
///
/// * normally, the epoch's **pruned diff** against its predecessor —
///   the identical `prev.diff(snap)` the server would send a replica,
///   sublinear in map size thanks to path copying;
/// * a full **checkpoint** when one is due
///   ([`LogConfig::checkpoint_every`](crate::LogConfig)), when there is
///   no predecessor snapshot (the first publish after recovery), when
///   the snapshots cannot be diffed, or when a diff append fails —
///   checkpoints re-base the log, so any failure self-heals at the next
///   epoch at the cost of one full-state write.
///
/// Publication cannot be un-announced, so the sink cannot make
/// `publish` fail; log errors are parked for the operator instead
/// ([`take_error`](Self::take_error) / [`error_count`](Self::error_count)).
///
/// Epochs at or below the log's head are skipped, which makes the sink
/// idempotent when a recovered primary replays publishes it already
/// persisted.
pub struct FeedPersister {
    log: Arc<EpochLog>,
    last_error: Mutex<Option<LogError>>,
    errors: AtomicU64,
    append_fsync: LatencyHistogram,
    /// Span sink for traced publishes; `None` until
    /// [`attach_flight`](Self::attach_flight).
    flight: Mutex<Option<Arc<Flight>>>,
}

impl FeedPersister {
    /// Wraps `log` as a feed sink.
    pub fn new(log: Arc<EpochLog>) -> Arc<Self> {
        Arc::new(FeedPersister {
            log,
            last_error: Mutex::new(None),
            errors: AtomicU64::new(0),
            append_fsync: LatencyHistogram::new(),
            flight: Mutex::new(None),
        })
    }

    /// Attaches the node's trace flight recorder: from here on, a
    /// traced publish records its append+fsync as an
    /// [`Stage::AppendFsync`] span under the publish's execute span,
    /// so the durability cost shows up inside the request's timeline.
    pub fn attach_flight(&self, flight: Arc<Flight>) {
        *self.flight.lock() = Some(flight);
    }

    /// Latency distribution of whole-epoch persistence (diff or
    /// checkpoint append, including the fsync), in nanoseconds per
    /// published epoch. Register the persister as a
    /// [`MetricsSource`] on the server
    /// ([`ServerHandle::register_metrics_source`](pathcopy_server::ServerHandle::register_metrics_source))
    /// to expose it over `Request::Metrics`.
    pub fn append_fsync_snapshot(&self) -> HistogramSnapshot {
        self.append_fsync.snapshot()
    }

    /// The log being written.
    pub fn log(&self) -> &Arc<EpochLog> {
        &self.log
    }

    /// Takes (and clears) the most recent append error, if any.
    pub fn take_error(&self) -> Option<LogError> {
        self.last_error.lock().take()
    }

    /// Total appends that failed (each also re-based via a checkpoint
    /// attempt at the next opportunity).
    pub fn error_count(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    fn record_error(&self, e: LogError) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        *self.last_error.lock() = Some(e);
    }
}

impl FeedSink for FeedPersister {
    fn on_publish(
        &self,
        epoch: Epoch,
        prev: Option<&Arc<dyn ServeSnapshot>>,
        snap: &Arc<dyn ServeSnapshot>,
    ) {
        self.on_publish_traced(epoch, prev, snap, None);
    }

    fn on_publish_traced(
        &self,
        epoch: Epoch,
        prev: Option<&Arc<dyn ServeSnapshot>>,
        snap: &Arc<dyn ServeSnapshot>,
        trace: Option<&TraceContext>,
    ) {
        if epoch <= self.log.head() {
            return; // already durable (recovered primary republishing)
        }
        let started = Instant::now();
        let every = self.log.config().checkpoint_every.max(1);
        let last = self.log.last_checkpoint();
        let checkpoint_due = last == 0 || epoch - last >= every;
        let result = match prev {
            Some(prev) if !checkpoint_due => match prev.diff(snap.as_ref()) {
                Some(entries) => self
                    .log
                    .append_diff(epoch, &entries)
                    // Oversized diff, sequence gap after an earlier
                    // failure, …: re-base with a checkpoint.
                    .or_else(|_| self.log.append_checkpoint(epoch, snap.as_ref())),
                None => self.log.append_checkpoint(epoch, snap.as_ref()),
            },
            _ => self.log.append_checkpoint(epoch, snap.as_ref()),
        };
        let finished = Instant::now();
        let ns = (finished - started).as_nanos().min(u64::MAX as u128) as u64;
        // A traced publish pins the fsync cost inside its timeline (a
        // child of the execute span on this node) and becomes the
        // histogram's exemplar candidate.
        self.append_fsync
            .record_tagged(ns, 0, trace.map_or(0, |c| c.trace_id));
        if let Some(ctx) = trace {
            if let Some(flight) = self.flight.lock().as_ref() {
                flight.span(ctx, Stage::AppendFsync, 0, epoch, started, finished);
            }
        }
        if let Err(e) = result {
            self.record_error(e);
        }
    }
}

impl MetricsSource for FeedPersister {
    fn collect(&self) -> Vec<StageSummary> {
        vec![summarize(
            Stage::AppendFsync,
            0,
            &self.append_fsync.snapshot(),
        )]
    }

    fn reset(&self) {
        self.append_fsync.reset();
    }
}
