//! # pathcopy-durable
//!
//! Durability for the replicated path-copying map: a **segmented epoch
//! log** that persists the primary's version feed, plus crash recovery,
//! point-in-time restore, and replica bootstrap-from-log.
//!
//! The feed already materializes exactly what a write-ahead log wants:
//! an ordered sequence of epochs, each with an O(changes) pruned diff
//! against its predecessor (cheap to compute because path-copied
//! versions share all unchanged subtrees). This crate writes that
//! sequence down:
//!
//! * **Records** reuse the proto-v2 message encoding under a
//!   checksummed, length-prefixed envelope — a diff record *is* an
//!   encoded `EpochDiff`, a checkpoint *is* a run of bounded
//!   `SyncPage`s (see [`record::crc32`] and `docs/WIRE_PROTOCOL.md`).
//! * **Segments** rotate at a size threshold and retire oldest-first
//!   under a byte cap, in whole checkpoint-anchored chains, so the log
//!   always keeps at least one complete restore path ([`EpochLog`]).
//! * **Recovery** ([`EpochLog::open`]) truncates a torn tail record
//!   (crash mid-append) instead of failing, then [`EpochLog::replay`]
//!   rebuilds the head state into a fresh `ShardedTreapMap`.
//! * **Point-in-time restore** ([`EpochLog::restore_epoch`]) rebuilds
//!   *any* retained epoch for historical reads.
//! * **The persister** ([`FeedPersister`]) plugs into the server as a
//!   [`FeedSink`](pathcopy_server::FeedSink): every `Publish` becomes
//!   durable before the client sees its epoch number.
//! * **Replica seeding**: [`EpochLog::replay_into`] loads a replica's
//!   store from the log so it can skip the `FullSync` transfer and join
//!   the diff stream immediately (`Replica::seed_from_log` in
//!   `pathcopy-replica`).
//!
//! ```
//! use pathcopy_core::DiffEntry;
//! use pathcopy_durable::{EpochLog, LogConfig};
//! use pathcopy_server::backend::{ServeBackend, ShardedServe};
//!
//! let dir = std::env::temp_dir().join(format!("pc-durable-doc-lib-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! // A session: checkpoint, two diffs, "crash".
//! {
//!     let (log, _) = EpochLog::open(&dir, LogConfig::default()).unwrap();
//!     let map = ShardedServe::with_shards(4);
//!     map.insert(1, 10);
//!     log.append_checkpoint(1, map.snapshot().as_ref()).unwrap();
//!     log.append_diff(2, &[DiffEntry::Added(2, 20)]).unwrap();
//!     log.append_diff(3, &[DiffEntry::Removed(1, 10)]).unwrap();
//! }
//! // Recovery: reopen and replay.
//! let (log, recovered) = EpochLog::open(&dir, LogConfig::default()).unwrap();
//! assert_eq!(recovered.head, 3);
//! let (state, head) = log.replay().unwrap();
//! assert_eq!(head, 3);
//! assert_eq!((state.get(&1), state.get(&2)), (None, Some(20)));
//! // Point-in-time: epoch 2 still had key 1.
//! assert_eq!(log.restore_epoch(2).unwrap().get(&1), Some(10));
//! # drop(log);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod log;
pub mod persister;
pub mod record;

pub use crate::log::{EpochLog, LogConfig, LogError, RecoveryInfo};
pub use crate::persister::FeedPersister;
