//! The on-disk record envelope and the segment scanner.
//!
//! Every record in a segment file is
//!
//! ```text
//! [ body_len: u32 LE ][ crc32(body): u32 LE ][ body: body_len bytes ]
//! ```
//!
//! where `body` is a proto-v2 frame body (version byte, tag byte,
//! payload) produced by [`Response::encode`] — the log stores exactly
//! the messages the replication protocol already knows how to build and
//! parse, so there is no second serialization format to maintain:
//!
//! * [`Response::EpochDiff`] — one published epoch's pruned diff
//!   against its predecessor (a **diff record**);
//! * [`Response::SyncPage`] — one bounded page of a full snapshot; a
//!   run of pages for the same epoch ending in `done = true` is a
//!   **checkpoint**.
//!
//! A *unit* is the recovery atom: a single diff record, or a complete
//! checkpoint run. The scanner only believes whole units — a checkpoint
//! missing its `done` page is as torn as half a record, because
//! replaying it would materialize a state no epoch ever had.

use pathcopy_core::DiffEntry;
use pathcopy_server::proto::{Epoch, Response, MAX_FRAME_LEN};

/// Bytes of the `[len][crc]` record header.
pub(crate) const RECORD_HEADER_LEN: usize = 8;

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

/// CRC-32 (IEEE 802.3 polynomial), the checksum guarding each record
/// body. Hand-rolled because the workspace builds offline.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Frames `body` as one record: header plus body.
pub(crate) fn encode_record(body: &[u8]) -> Vec<u8> {
    debug_assert!(body.len() as u64 <= MAX_FRAME_LEN as u64);
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// What one recovered unit carries.
pub(crate) enum UnitKind {
    /// One epoch's pruned diff against its predecessor.
    Diff(Vec<DiffEntry<i64, i64>>),
    /// A complete checkpoint: the epoch's full entry set, ascending.
    Checkpoint(Vec<(i64, i64)>),
}

/// One recovery atom decoded from a segment.
pub(crate) struct Unit {
    pub(crate) epoch: Epoch,
    pub(crate) kind: UnitKind,
}

/// How a segment's byte stream ended.
pub(crate) enum Tail {
    /// Every byte belongs to a complete unit.
    Clean,
    /// Trailing bytes past the last complete unit do not form one; the
    /// `&'static str` says why (partial header, checksum mismatch,
    /// checkpoint missing its final page, …). Legal only at the tail of
    /// the *last* segment, where it is truncated away.
    Torn(&'static str),
}

/// A scanned segment: its complete units, the byte length they cover,
/// and how the stream ended.
pub(crate) struct Scan {
    pub(crate) units: Vec<Unit>,
    /// Offset just past the last complete unit; bytes beyond this are
    /// the torn tail (if any).
    pub(crate) clean_len: u64,
    pub(crate) tail: Tail,
}

/// Decodes a whole segment buffer into units. With `keep_payloads =
/// false` the entries are dropped as they are decoded (metadata-only
/// scan for `open`), so a scan never holds more than one record's
/// payload at a time.
pub(crate) fn scan_segment(buf: &[u8], keep_payloads: bool) -> Scan {
    let mut units = Vec::new();
    let mut pos = 0usize;
    let mut clean = 0usize;
    // An in-progress checkpoint: `(epoch, entries so far)`.
    let mut open: Option<(Epoch, Vec<(i64, i64)>)> = None;
    let torn = |units: Vec<Unit>, clean: usize, why: &'static str| Scan {
        units,
        clean_len: clean as u64,
        tail: Tail::Torn(why),
    };
    loop {
        if pos == buf.len() {
            return if open.is_some() {
                torn(units, clean, "checkpoint missing its final page")
            } else {
                Scan {
                    units,
                    clean_len: clean as u64,
                    tail: Tail::Clean,
                }
            };
        }
        if buf.len() - pos < RECORD_HEADER_LEN {
            return torn(units, clean, "partial record header");
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len as u64 > MAX_FRAME_LEN as u64 {
            return torn(units, clean, "record length exceeds the frame cap");
        }
        if buf.len() - pos - RECORD_HEADER_LEN < len {
            return torn(units, clean, "partial record body");
        }
        let body = &buf[pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + len];
        if crc32(body) != crc {
            return torn(units, clean, "record checksum mismatch");
        }
        let resp = match Response::decode(body) {
            Ok(r) => r,
            Err(_) => return torn(units, clean, "undecodable record body"),
        };
        pos += RECORD_HEADER_LEN + len;
        match resp {
            Response::EpochDiff { to, mut entries } => {
                if open.is_some() {
                    return torn(units, clean, "diff record inside an open checkpoint");
                }
                if to == 0 {
                    return torn(units, clean, "diff record for epoch zero");
                }
                if !keep_payloads {
                    entries.clear();
                }
                units.push(Unit {
                    epoch: to,
                    kind: UnitKind::Diff(entries),
                });
                clean = pos;
            }
            Response::SyncPage {
                epoch,
                mut entries,
                done,
            } => {
                if epoch == 0 {
                    return torn(units, clean, "checkpoint page for epoch zero");
                }
                if !keep_payloads {
                    entries.clear();
                }
                match &mut open {
                    None => open = Some((epoch, entries)),
                    Some((e, acc)) => {
                        if *e != epoch {
                            return torn(units, clean, "checkpoint page epoch mismatch");
                        }
                        acc.extend(entries);
                    }
                }
                if done {
                    let (epoch, entries) = open.take().expect("just populated");
                    units.push(Unit {
                        epoch,
                        kind: UnitKind::Checkpoint(entries),
                    });
                    clean = pos;
                }
            }
            _ => return torn(units, clean, "unexpected record variant"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn diff_record(epoch: Epoch) -> Vec<u8> {
        let mut body = Vec::new();
        Response::EpochDiff {
            to: epoch,
            entries: vec![DiffEntry::Added(epoch as i64, 1)],
        }
        .encode(&mut body);
        encode_record(&body)
    }

    #[test]
    fn scanner_accepts_whole_units_and_truncates_torn_tails() {
        let mut buf = diff_record(1);
        buf.extend(diff_record(2));
        let clean = buf.len() as u64;
        // A torn third record: header promises more bytes than exist.
        buf.extend(diff_record(3)[..10].iter());
        let scan = scan_segment(&buf, true);
        assert_eq!(scan.units.len(), 2);
        assert_eq!(scan.clean_len, clean);
        assert!(matches!(scan.tail, Tail::Torn(_)));
        // Scanning only the clean prefix is clean.
        let scan = scan_segment(&buf[..clean as usize], true);
        assert!(matches!(scan.tail, Tail::Clean));
        assert_eq!(scan.units[1].epoch, 2);
    }

    #[test]
    fn corrupted_byte_fails_the_checksum() {
        let mut buf = diff_record(1);
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        let scan = scan_segment(&buf, true);
        assert!(scan.units.is_empty());
        assert_eq!(scan.clean_len, 0);
        assert!(matches!(scan.tail, Tail::Torn("record checksum mismatch")));
    }

    #[test]
    fn unfinished_checkpoint_is_torn() {
        let mut body = Vec::new();
        Response::SyncPage {
            epoch: 5,
            entries: vec![(1, 10)],
            done: false,
        }
        .encode(&mut body);
        let buf = encode_record(&body);
        let scan = scan_segment(&buf, true);
        assert!(scan.units.is_empty());
        assert_eq!(scan.clean_len, 0, "open checkpoint contributes nothing");
        assert!(matches!(
            scan.tail,
            Tail::Torn("checkpoint missing its final page")
        ));
    }
}
