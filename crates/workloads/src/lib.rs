//! # pathcopy-workloads
//!
//! Workload generators for the paper's experiments (§4 and Appendix B).
//!
//! * [`batch`] — §4.1 *Batch inserts and batch removes*: a prefilled set
//!   of 10⁶ random keys; each process owns a disjoint block of fresh keys
//!   and repeatedly inserts all of them, then removes all of them. Every
//!   operation successfully modifies the structure.
//! * [`random`] — §4.2 *Random inserts and removes*: prefill by inserting
//!   10⁶ uniform keys from `[-10⁶, 10⁶]`; each process then repeatedly
//!   draws a uniform key and inserts or removes it with probability ½.
//!   Roughly half the operations do not modify the structure.
//! * [`mixed`] — read/write mixes with uniform or Zipfian key choice
//!   (the "more results" style of Appendix B).
//!
//! Generators are deterministic given a seed, and each process gets an
//! independent RNG stream, so runs are reproducible and allocation-free
//! on the hot path.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod zipf;

/// One operation of a generated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Insert the key.
    Insert(i64),
    /// Remove the key.
    Remove(i64),
    /// Membership query for the key.
    Contains(i64),
}

impl Op {
    /// The key this operation touches.
    pub fn key(&self) -> i64 {
        match *self {
            Op::Insert(k) | Op::Remove(k) | Op::Contains(k) => k,
        }
    }

    /// `true` for operations that may modify the structure.
    pub fn is_update(&self) -> bool {
        !matches!(self, Op::Contains(_))
    }

    /// Applies this operation to any
    /// [`ConcurrentSet`](pathcopy_core::ConcurrentSet) backend; returns
    /// `true` if it modified the set (queries return `false`).
    ///
    /// This is how the benchmark harness and oracle tests stay generic:
    /// one op stream drives every backend, including `dyn` ones from the
    /// backend registry.
    pub fn apply_to<S>(&self, set: &S) -> bool
    where
        S: pathcopy_core::ConcurrentSet<i64> + ?Sized,
    {
        match *self {
            Op::Insert(k) => set.insert(k),
            Op::Remove(k) => set.remove(&k),
            Op::Contains(k) => {
                let _ = set.contains(&k);
                false
            }
        }
    }
}

/// An infinite, per-process operation stream.
pub trait OpStream: Send {
    /// Produces the next operation.
    fn next_op(&mut self) -> Op;
}

/// The paper's default scale: 10⁶ prefilled keys.
pub const PAPER_PREFILL: usize = 1_000_000;
/// The paper's key range for the Random workload: `[-10⁶, 10⁶]`.
pub const PAPER_KEY_RANGE: i64 = 1_000_000;

// ---------------------------------------------------------------------------
// Batch workload (§4.1)
// ---------------------------------------------------------------------------

/// The §4.1 workload: prefill keys plus per-process disjoint key blocks.
#[derive(Debug, Clone)]
pub struct BatchWorkload {
    /// Keys inserted before measurement starts.
    pub prefill: Vec<i64>,
    /// One disjoint key block per process; disjoint from `prefill` too,
    /// so every generated operation modifies the structure.
    pub per_process: Vec<Vec<i64>>,
}

impl BatchWorkload {
    /// Generates the workload: `prefill_size` distinct random keys plus
    /// `processes` blocks of `keys_per_process` distinct fresh keys.
    pub fn generate(
        processes: usize,
        prefill_size: usize,
        keys_per_process: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let total = prefill_size + processes * keys_per_process;
        let mut seen = HashSet::with_capacity(total);
        let mut draw_fresh = |rng: &mut StdRng| loop {
            let k: i64 = rng.gen();
            if seen.insert(k) {
                return k;
            }
        };
        let prefill: Vec<i64> = (0..prefill_size).map(|_| draw_fresh(&mut rng)).collect();
        let per_process: Vec<Vec<i64>> = (0..processes)
            .map(|_| {
                (0..keys_per_process)
                    .map(|_| draw_fresh(&mut rng))
                    .collect()
            })
            .collect();
        BatchWorkload {
            prefill,
            per_process,
        }
    }

    /// Builds the per-process operation streams.
    pub fn streams(&self) -> Vec<BatchStream> {
        self.per_process
            .iter()
            .map(|keys| BatchStream::new(keys.clone()))
            .collect()
    }
}

/// Stream for one Batch process: insert all its keys, then remove all of
/// them, forever.
#[derive(Debug, Clone)]
pub struct BatchStream {
    keys: Vec<i64>,
    index: usize,
    removing: bool,
}

impl BatchStream {
    /// Creates a stream over this process's key block.
    pub fn new(keys: Vec<i64>) -> Self {
        assert!(!keys.is_empty(), "a batch stream needs at least one key");
        BatchStream {
            keys,
            index: 0,
            removing: false,
        }
    }
}

impl OpStream for BatchStream {
    fn next_op(&mut self) -> Op {
        let k = self.keys[self.index];
        let op = if self.removing {
            Op::Remove(k)
        } else {
            Op::Insert(k)
        };
        self.index += 1;
        if self.index == self.keys.len() {
            self.index = 0;
            self.removing = !self.removing;
        }
        op
    }
}

/// Convenience: the §4.1 workload at paper scale (10⁶ prefill).
pub fn batch(processes: usize, keys_per_process: usize, seed: u64) -> BatchWorkload {
    BatchWorkload::generate(processes, PAPER_PREFILL, keys_per_process, seed)
}

// ---------------------------------------------------------------------------
// Random workload (§4.2)
// ---------------------------------------------------------------------------

/// The §4.2 workload: the prefill insert sequence plus stream parameters.
#[derive(Debug, Clone)]
pub struct RandomWorkload {
    /// Keys inserted (with duplicates collapsing) before measurement.
    pub prefill: Vec<i64>,
    /// Keys are drawn uniformly from `[-key_range, key_range]`.
    pub key_range: i64,
    seed: u64,
    processes: usize,
}

impl RandomWorkload {
    /// Generates the prefill sequence: `prefill_inserts` uniform draws
    /// from `[-key_range, key_range]` (duplicates allowed, as in the
    /// paper: "we first insert 10⁶ random integers").
    pub fn generate(processes: usize, prefill_inserts: usize, key_range: i64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let prefill = (0..prefill_inserts)
            .map(|_| rng.gen_range(-key_range..=key_range))
            .collect();
        RandomWorkload {
            prefill,
            key_range,
            seed,
            processes,
        }
    }

    /// Builds the per-process operation streams (independent RNGs).
    pub fn streams(&self) -> Vec<RandomStream> {
        (0..self.processes)
            .map(|p| RandomStream::new(self.key_range, self.seed ^ (0x9e37_79b9 + p as u64)))
            .collect()
    }
}

/// Stream for one Random process: uniform key, insert/remove with equal
/// probability.
#[derive(Debug, Clone)]
pub struct RandomStream {
    rng: StdRng,
    key_range: i64,
}

impl RandomStream {
    /// Creates a stream drawing from `[-key_range, key_range]`.
    pub fn new(key_range: i64, seed: u64) -> Self {
        RandomStream {
            rng: StdRng::seed_from_u64(seed),
            key_range,
        }
    }
}

impl OpStream for RandomStream {
    fn next_op(&mut self) -> Op {
        let k = self.rng.gen_range(-self.key_range..=self.key_range);
        if self.rng.gen::<bool>() {
            Op::Insert(k)
        } else {
            Op::Remove(k)
        }
    }
}

/// Convenience: the §4.2 workload at paper scale.
pub fn random(processes: usize, seed: u64) -> RandomWorkload {
    RandomWorkload::generate(processes, PAPER_PREFILL, PAPER_KEY_RANGE, seed)
}

// ---------------------------------------------------------------------------
// Mixed read/write workload (extension)
// ---------------------------------------------------------------------------

/// Key-choice distribution for [`MixedStream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform over `[-range, range]`.
    Uniform {
        /// Key magnitude bound.
        range: i64,
    },
    /// Zipfian over `[0, n)` with exponent `theta` (hot keys are small).
    Zipf {
        /// Number of distinct keys.
        n: u64,
        /// Skew exponent (0 = uniform, 0.99 = YCSB-like).
        theta: f64,
    },
}

/// Stream mixing reads and updates: with probability `read_fraction` a
/// `Contains`, otherwise an `Insert`/`Remove` coin flip.
#[derive(Debug, Clone)]
pub struct MixedStream {
    rng: StdRng,
    dist: KeyDist,
    zipf: Option<zipf::Zipf>,
    read_fraction: f64,
}

impl MixedStream {
    /// Creates a mixed stream.
    pub fn new(dist: KeyDist, read_fraction: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&read_fraction));
        let zipf = match dist {
            KeyDist::Zipf { n, theta } => Some(zipf::Zipf::new(n, theta)),
            KeyDist::Uniform { .. } => None,
        };
        MixedStream {
            rng: StdRng::seed_from_u64(seed),
            dist,
            zipf,
            read_fraction,
        }
    }

    fn draw_key(&mut self) -> i64 {
        match self.dist {
            KeyDist::Uniform { range } => self.rng.gen_range(-range..=range),
            KeyDist::Zipf { .. } => self
                .zipf
                .as_mut()
                .expect("zipf sampler")
                .sample(&mut self.rng) as i64,
        }
    }
}

impl OpStream for MixedStream {
    fn next_op(&mut self) -> Op {
        let read = self.rng.gen::<f64>() < self.read_fraction;
        let k = self.draw_key();
        if read {
            Op::Contains(k)
        } else if self.rng.gen::<bool>() {
            Op::Insert(k)
        } else {
            Op::Remove(k)
        }
    }
}

/// Builds `processes` mixed streams with independent RNGs.
pub fn mixed(processes: usize, dist: KeyDist, read_fraction: f64, seed: u64) -> Vec<MixedStream> {
    (0..processes)
        .map(|p| MixedStream::new(dist, read_fraction, seed ^ (0xc2b2_ae35 + p as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_blocks_are_disjoint_and_fresh() {
        let w = BatchWorkload::generate(4, 1000, 100, 1);
        let mut seen: HashSet<i64> = w.prefill.iter().copied().collect();
        assert_eq!(seen.len(), 1000, "prefill keys must be distinct");
        for block in &w.per_process {
            assert_eq!(block.len(), 100);
            for k in block {
                assert!(seen.insert(*k), "key {k} reused across blocks/prefill");
            }
        }
    }

    #[test]
    fn batch_stream_alternates_phases() {
        let mut s = BatchStream::new(vec![1, 2]);
        assert_eq!(s.next_op(), Op::Insert(1));
        assert_eq!(s.next_op(), Op::Insert(2));
        assert_eq!(s.next_op(), Op::Remove(1));
        assert_eq!(s.next_op(), Op::Remove(2));
        assert_eq!(s.next_op(), Op::Insert(1));
    }

    #[test]
    fn batch_stream_every_op_modifies_when_applied() {
        // Applying the stream to a set: every op must change membership.
        let mut s = BatchStream::new(vec![10, 20, 30]);
        let mut set = HashSet::new();
        for _ in 0..60 {
            match s.next_op() {
                Op::Insert(k) => assert!(set.insert(k), "insert of present key {k}"),
                Op::Remove(k) => assert!(set.remove(&k), "remove of absent key {k}"),
                Op::Contains(_) => unreachable!(),
            }
        }
    }

    #[test]
    fn random_streams_are_deterministic_and_independent() {
        let w = RandomWorkload::generate(2, 100, 1000, 7);
        let mut a1 = w.streams();
        let mut a2 = w.streams();
        let ops1: Vec<Op> = (0..50).map(|_| a1[0].next_op()).collect();
        let ops2: Vec<Op> = (0..50).map(|_| a2[0].next_op()).collect();
        assert_eq!(ops1, ops2, "same seed, same stream");
        let other: Vec<Op> = (0..50).map(|_| a1[1].next_op()).collect();
        assert_ne!(ops1, other, "different processes differ");
    }

    #[test]
    fn random_keys_in_range_and_balanced() {
        let mut s = RandomStream::new(1000, 3);
        let mut inserts = 0;
        for _ in 0..10_000 {
            let op = s.next_op();
            assert!((-1000..=1000).contains(&op.key()));
            if matches!(op, Op::Insert(_)) {
                inserts += 1;
            }
        }
        assert!(
            (4000..6000).contains(&inserts),
            "insert/remove should be ~50/50"
        );
    }

    #[test]
    fn random_prefill_matches_paper_shape() {
        let w = RandomWorkload::generate(1, 10_000, 1_000_000, 5);
        assert_eq!(w.prefill.len(), 10_000);
        assert!(w
            .prefill
            .iter()
            .all(|k| (-1_000_000..=1_000_000).contains(k)));
    }

    #[test]
    fn mixed_respects_read_fraction() {
        let mut s = MixedStream::new(KeyDist::Uniform { range: 100 }, 0.8, 11);
        let reads = (0..10_000)
            .filter(|_| matches!(s.next_op(), Op::Contains(_)))
            .count();
        assert!((7500..8500).contains(&reads), "read fraction off: {reads}");
    }

    #[test]
    fn mixed_zipf_prefers_hot_keys() {
        let mut s = MixedStream::new(
            KeyDist::Zipf {
                n: 1000,
                theta: 0.99,
            },
            0.0,
            13,
        );
        let hot = (0..10_000).filter(|_| s.next_op().key() < 10).count();
        // Under Zipf(0.99) the 10 hottest of 1000 keys draw far more than
        // the uniform 1% of traffic.
        assert!(hot > 1500, "zipf skew too weak: {hot}");
    }

    #[test]
    fn op_accessors() {
        assert_eq!(Op::Insert(3).key(), 3);
        assert!(Op::Insert(3).is_update());
        assert!(Op::Remove(3).is_update());
        assert!(!Op::Contains(3).is_update());
    }
}
