//! Zipfian sampler (Gray et al., "Quickly generating billion-record
//! synthetic databases", SIGMOD 1994 — the YCSB generator).
//!
//! Samples ranks in `[0, n)` where rank `r` has probability proportional
//! to `1 / (r + 1)^theta`. Used by the mixed-workload extension to model
//! skewed key popularity.

use rand::Rng;

/// Zipfian distribution over `[0, n)`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    #[cfg_attr(not(test), allow(dead_code))]
    zeta2: f64,
}

impl Zipf {
    /// Creates a sampler over `n` items with skew `theta` (`0 <= theta <
    /// 1`; `theta = 0` degenerates to uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs at least one item");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// Generalized harmonic number `H_{n,theta}`.
    fn zeta(n: u64, theta: f64) -> f64 {
        // O(n) precomputation; fine for the key-space sizes we use.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Exposes `H_{2,theta}` for tests.
    #[cfg(test)]
    fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let mut z = Zipf::new(100, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_is_hottest() {
        let mut z = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[999]);
        // Rank 0 should take roughly 1/zetan of the mass: for n=1000,
        // theta=.99, that's ~12-15%.
        assert!(counts[0] as f64 / 100_000.0 > 0.08);
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let mut z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (7_000..13_000).contains(&c),
                "uniform bucket out of tolerance: {c}"
            );
        }
    }

    #[test]
    fn zeta_accumulates() {
        let z = Zipf::new(2, 0.5);
        assert!((z.zeta2() - (1.0 + 1.0 / 2f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_rejected() {
        let _ = Zipf::new(0, 0.5);
    }
}
